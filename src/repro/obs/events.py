"""Health events and the per-run health report.

A :class:`HealthEvent` is one detector finding: *what* degraded
(``detector``), *how bad* (``severity``), *where* (``site``, the same
``gen=N|...`` site-string convention the resilience layer uses), and
the *window evidence* that triggered it (``evidence``, a flat mapping
of the numbers the detector compared).  Events are plain data — the
monitor streams them into the trace as zero-duration marker spans, and
the final :class:`HealthReport` collects them under a run verdict.

The determinism contract matters more here than anywhere: a health
report is a **pure function of the sample stream** (no wall clock, no
RNG, no iteration over unordered containers), so replaying a seeded
chaos run — or re-running the doctor over its exported trace — yields
a byte-identical ``health.json``.  :meth:`HealthReport.to_json` pins
the byte layout (sorted keys, fixed indent, trailing newline).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "SEVERITIES",
    "VERDICTS",
    "HEALTH_SCHEMA",
    "HealthEvent",
    "HealthReport",
    "validate_health_report",
]

#: recognised event severities, mildest first
SEVERITIES = ("info", "warning", "critical")
#: recognised run verdicts, healthiest first
VERDICTS = ("healthy", "degraded", "critical")
#: schema tag stamped into every health.json
HEALTH_SCHEMA = "repro.health/v1"


@dataclass(frozen=True)
class HealthEvent:
    """One detector finding at one site."""

    #: registry name of the detector that fired (``fitness.stagnation``)
    detector: str
    #: ``info`` | ``warning`` | ``critical``
    severity: str
    #: where it happened, e.g. ``gen=7`` or ``gen=7|cache=decode``
    site: str
    #: one human-readable sentence
    message: str
    #: the numbers the detector compared (window evidence)
    evidence: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            names = ", ".join(repr(s) for s in SEVERITIES)
            raise ValueError(
                f"unknown severity {self.severity!r}; use one of {names}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "detector": self.detector,
            "severity": self.severity,
            "site": self.site,
            "message": self.message,
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, row: Mapping[str, Any]) -> "HealthEvent":
        return cls(
            detector=str(row["detector"]),
            severity=str(row["severity"]),
            site=str(row["site"]),
            message=str(row.get("message", "")),
            evidence=dict(row.get("evidence", {})),
        )


def _worst_severity(events: list[HealthEvent]) -> str:
    worst = -1
    for event in events:
        worst = max(worst, SEVERITIES.index(event.severity))
    return SEVERITIES[worst] if worst >= 0 else ""


@dataclass
class HealthReport:
    """A run's verdict plus every event that contributed to it."""

    verdict: str
    generations: int
    events: list[HealthEvent] = field(default_factory=list)
    #: registry names of the detectors that ran (sorted)
    detectors: list[str] = field(default_factory=list)
    #: the HealthConfig thresholds the detectors ran with
    config: dict[str, Any] = field(default_factory=dict)
    #: deterministic run attribution (command, env, backend, seed,
    #: git commit/dirty, pipeline config) — never wall-clock fields
    run: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        events: list[HealthEvent],
        generations: int,
        detectors: list[str],
        config: dict[str, Any] | None = None,
        run: dict[str, Any] | None = None,
    ) -> "HealthReport":
        """Derive the verdict from the collected events."""
        worst = _worst_severity(events)
        if worst == "critical":
            verdict = "critical"
        elif worst == "warning":
            verdict = "degraded"
        else:
            verdict = "healthy"
        return cls(
            verdict=verdict,
            generations=generations,
            events=list(events),
            detectors=sorted(detectors),
            config=dict(config or {}),
            run=dict(run or {}),
        )

    def severity_counts(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for event in self.events:
            counts[event.severity] += 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": HEALTH_SCHEMA,
            "verdict": self.verdict,
            "generations": self.generations,
            "severities": self.severity_counts(),
            "detectors": list(self.detectors),
            "config": dict(self.config),
            "events": [event.to_dict() for event in self.events],
            "run": dict(self.run),
        }

    def to_json(self) -> str:
        """Canonical byte layout: sorted keys, indent 2, newline-terminated.

        This is what makes "replayed chaos run => byte-identical
        health.json" a checkable property rather than a hope.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HealthReport":
        return cls(
            verdict=str(payload["verdict"]),
            generations=int(payload["generations"]),
            events=[HealthEvent.from_dict(e) for e in payload.get("events", [])],
            detectors=[str(d) for d in payload.get("detectors", [])],
            config=dict(payload.get("config", {})),
            run=dict(payload.get("run", {})),
        )


def validate_health_report(payload: Mapping[str, Any]) -> list[str]:
    """Schema-check a parsed health.json; returns a list of problems."""
    errors: list[str] = []
    if payload.get("schema") != HEALTH_SCHEMA:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected {HEALTH_SCHEMA!r}"
        )
    if payload.get("verdict") not in VERDICTS:
        errors.append(f"unknown verdict {payload.get('verdict')!r}")
    if not isinstance(payload.get("generations"), int):
        errors.append("generations must be an integer")
    events = payload.get("events")
    if not isinstance(events, list):
        errors.append("events must be a list")
        events = []
    for index, row in enumerate(events):
        if not isinstance(row, dict):
            errors.append(f"event {index} is not an object")
            continue
        for key in ("detector", "severity", "site", "message"):
            if not isinstance(row.get(key), str):
                errors.append(f"event {index} missing {key!r}")
        if row.get("severity") not in SEVERITIES:
            errors.append(
                f"event {index} has unknown severity {row.get('severity')!r}"
            )
        if "evidence" in row and not isinstance(row["evidence"], dict):
            errors.append(f"event {index} evidence must be an object")
    severities = payload.get("severities")
    if isinstance(severities, dict):
        if isinstance(events, list) and all(
            isinstance(row, dict) for row in events
        ):
            actual = {severity: 0 for severity in SEVERITIES}
            for row in events:
                if row.get("severity") in actual:
                    actual[row["severity"]] += 1
            if {k: severities.get(k, 0) for k in SEVERITIES} != actual:
                errors.append("severities counts disagree with events")
    else:
        errors.append("severities must be an object")
    return errors
