"""The post-mortem doctor (the offline half of the watchtower).

``repro doctor <trace.jsonl>`` replays an exported trace through the
same detector registry the live monitor runs, and prints a diagnosis:
the health verdict with every event, plus per-phase / per-PU hot-spot
attribution extending :func:`repro.telemetry.export.summarize_trace`.

Sample recovery prefers the monitor's ``health.sample`` marker spans
(bit-exact round trip: the doctor then reproduces the live run's
``health.json`` byte for byte).  Traces recorded *without* ``--health``
still get a partial diagnosis: per-generation samples are
reconstructed from ``phase.evaluate`` spans (generation, population),
``resilience.*`` marker spans (quarantines, fallback waves, shard
churn, skipped migrations keyed by the ``gen=N`` site convention) and
the fabric backend's ``fabric.gen`` markers (devices up, evictions,
re-admissions, re-packed waves — cumulative snapshots carried as span
attrs) — fitness/cache/INAX detectors simply see ``None`` for the
fields a bare trace cannot recover, and skip.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.obs.detectors import (
    GenerationSample,
    HealthConfig,
    evaluate_samples,
)
from repro.obs.events import HealthReport
from repro.obs.monitor import SAMPLE_SPAN, run_attribution
from repro.telemetry.export import (
    TraceSummary,
    read_trace_jsonl,
    summarize_trace,
)

__all__ = [
    "Diagnosis",
    "samples_from_trace",
    "diagnose",
    "format_diagnosis",
]

_GEN_IN_SITE = re.compile(r"\bgen=(\d+)\b")

#: resilience marker span -> cumulative GenerationSample field
_RESILIENCE_FIELDS = {
    "resilience.quarantine.nonfinite": "quarantined",
    "resilience.fallback.wave": "fallback_waves",
    "resilience.shard.timeout": "shard_retries",
    "resilience.shard.error": "shard_retries",
    "resilience.shard.degraded": "shard_degraded",
    "resilience.fabric.migration_skip": "migrations_skipped",
}

#: ``fabric.gen`` span attrs copied verbatim (already cumulative)
_FABRIC_GEN_FIELDS = (
    "devices_up",
    "device_evictions",
    "device_readmissions",
    "repacked_waves",
)


@dataclass
class Diagnosis:
    """Everything ``repro doctor`` prints, as data."""

    report: HealthReport
    summary: TraceSummary
    #: hot-spot rows: {"kind": "phase"|"pu", "name", "value", "fraction"}
    hotspots: list[dict[str, Any]] = field(default_factory=list)
    #: True when samples were reconstructed from bare spans (no
    #: ``health.sample`` markers in the trace — partial fidelity)
    reconstructed: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "report": self.report.to_dict(),
            "hotspots": [dict(row) for row in self.hotspots],
            "reconstructed": self.reconstructed,
        }


def samples_from_trace(
    rows: Iterable[dict[str, Any]],
) -> tuple[list[GenerationSample], bool]:
    """Recover the per-generation sample stream from trace rows.

    Returns ``(samples, reconstructed)`` — ``reconstructed`` is False
    when the trace carried the monitor's own ``health.sample`` markers
    (exact replay) and True when the stream had to be rebuilt from
    ``phase.evaluate`` / ``resilience.*`` spans (partial replay).
    """
    rows = list(rows)
    exact: list[GenerationSample] = []
    for row in rows:
        if row.get("type") == "span" and row.get("name") == SAMPLE_SPAN:
            exact.append(GenerationSample.from_attrs(row.get("attrs", {})))
    if exact:
        # trace row order is emission order, but sort by generation so
        # a filtered / concatenated trace still replays deterministically
        exact.sort(key=lambda s: s.generation)
        return exact, False

    # ---- partial reconstruction from a bare (pre-watchtower) trace
    generations: dict[int, dict[str, Any]] = {}
    per_gen_counts: dict[int, dict[str, float]] = {}
    for row in rows:
        if row.get("type") != "span":
            continue
        name = row.get("name", "")
        attrs = row.get("attrs", {})
        if name == "phase.evaluate" and "generation" in attrs:
            gen = int(attrs["generation"])
            entry = generations.setdefault(gen, {"generation": gen})
            if "population" in attrs:
                entry["population_size"] = int(attrs["population"])
        elif name == "fabric.gen" and "generation" in attrs:
            gen = int(attrs["generation"])
            entry = generations.setdefault(gen, {"generation": gen})
            for key in _FABRIC_GEN_FIELDS:
                if key in attrs:
                    entry[key] = float(attrs[key])
        elif name in _RESILIENCE_FIELDS:
            match = _GEN_IN_SITE.search(str(attrs.get("site", "")))
            if match is None:
                continue
            gen = int(match.group(1))
            counts = per_gen_counts.setdefault(gen, {})
            key = _RESILIENCE_FIELDS[name]
            counts[key] = counts.get(key, 0.0) + 1.0
    if not generations and not per_gen_counts:
        return [], True
    # resilience fields are cumulative in live samples; accumulate the
    # per-generation marker counts the same way
    running = {"quarantined": 0.0, "fallback_waves": 0.0,
               "shard_retries": 0.0, "shard_degraded": 0.0,
               "migrations_skipped": 0.0}
    samples: list[GenerationSample] = []
    all_gens = sorted(set(generations) | set(per_gen_counts))
    for gen in all_gens:
        entry = generations.get(gen, {"generation": gen})
        counts = per_gen_counts.get(gen, {})
        for key in running:
            running[key] += counts.get(key, 0.0)
            if running[key] > 0:
                entry[key] = running[key]
        samples.append(GenerationSample(**entry))
    return samples, True


def _hotspots(summary: TraceSummary) -> list[dict[str, Any]]:
    """Hot-spot attribution rows, largest share first."""
    rows: list[dict[str, Any]] = []
    fractions = summary.phase_fractions()
    for phase, seconds in sorted(
        summary.phase_seconds.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        rows.append(
            {
                "kind": "phase",
                "name": phase,
                "value": seconds,
                "fraction": fractions[phase],
            }
        )
    total_pu = 0.0
    for pu in summary.pu_cycles.values():
        total_pu += pu["setup"] + pu["compute"] + pu["drain"]
    for track, pu in sorted(
        summary.pu_cycles.items(),
        key=lambda kv: (
            -(kv[1]["setup"] + kv[1]["compute"] + kv[1]["drain"]),
            kv[0],
        ),
    ):
        cycles = pu["setup"] + pu["compute"] + pu["drain"]
        rows.append(
            {
                "kind": "pu",
                "name": track,
                "value": cycles,
                "fraction": cycles / total_pu if total_pu > 0 else 0.0,
                "utilization": summary.pu_utilization(track),
            }
        )
    return rows


def diagnose(
    path_or_rows: str | Path | Iterable[dict[str, Any]],
    config: HealthConfig | None = None,
    names: list[str] | None = None,
) -> Diagnosis:
    """Replay a trace through the detector registry.

    Raises :class:`ValueError` when the trace yields no samples at all
    (nothing to diagnose — not even reconstructable spans).
    """
    if isinstance(path_or_rows, (str, Path)):
        rows = read_trace_jsonl(path_or_rows)
    else:
        rows = list(path_or_rows)
    samples, reconstructed = samples_from_trace(rows)
    if not samples:
        raise ValueError(
            "trace contains no health.sample markers and no "
            "reconstructable phase/resilience spans"
        )
    config = config if config is not None else HealthConfig()
    events, detectors, count = evaluate_samples(samples, config, names)
    summary = summarize_trace(rows)
    report = HealthReport.build(
        events=events,
        generations=count,
        detectors=detectors,
        config=config.to_dict(),
        run=run_attribution(summary.manifest),
    )
    return Diagnosis(
        report=report,
        summary=summary,
        hotspots=_hotspots(summary),
        reconstructed=reconstructed,
    )


_SEVERITY_MARK = {"info": "·", "warning": "!", "critical": "✗"}


def format_diagnosis(diagnosis: Diagnosis) -> str:
    """Render the diagnosis as plain text (what ``repro doctor`` prints)."""
    from repro.core.results import format_table

    report = diagnosis.report
    blocks: list[str] = []
    run = report.run
    if run:
        blocks.append(
            f"run: command={run.get('command') or '?'} "
            f"env={run.get('env') or '?'} "
            f"backend={run.get('backend') or '?'} seed={run.get('seed')}"
        )
    counts = report.severity_counts()
    blocks.append(
        f"verdict: {report.verdict.upper()} over {report.generations} "
        f"generation(s) — {counts['critical']} critical, "
        f"{counts['warning']} warning, {counts['info']} info"
        + ("  [reconstructed from bare trace]" if diagnosis.reconstructed
           else "")
    )
    if report.events:
        rows = [
            [
                _SEVERITY_MARK.get(event.severity, "?"),
                event.severity,
                event.detector,
                event.site,
                event.message,
            ]
            for event in report.events
        ]
        blocks.append(
            format_table(
                ["", "severity", "detector", "site", "finding"],
                rows,
                title="health events",
            )
        )
    else:
        blocks.append("no health events — all detectors quiet")
    phase_rows = [
        [row["name"], f"{row['value']:.4f}", f"{row['fraction'] * 100:.1f}%"]
        for row in diagnosis.hotspots
        if row["kind"] == "phase"
    ]
    if phase_rows:
        blocks.append(
            format_table(
                ["phase", "seconds", "share"],
                phase_rows,
                title="hot spots: host phases",
            )
        )
    pu_rows = [
        [
            row["name"],
            f"{row['value']:,.0f}",
            f"{row['fraction'] * 100:.1f}%",
            f"{row['utilization']:.3f}",
        ]
        for row in diagnosis.hotspots
        if row["kind"] == "pu"
    ]
    if pu_rows:
        blocks.append(
            format_table(
                ["PU", "cycles", "share", "U(PU)"],
                pu_rows,
                title="hot spots: INAX PUs",
            )
        )
    return "\n\n".join(blocks)
