"""The streaming health monitor (the live half of the watchtower).

:class:`HealthMonitor` is a population reporter: every generation it
assembles a :class:`~repro.obs.detectors.GenerationSample` from the
``GenerationStats`` feed plus cheap backend probes (cache counters,
the last cycle report), runs the detector registry over it, and —
when a tracer is installed — streams both the sample and any fired
events into the trace as zero-duration marker spans so the doctor can
replay the exact same inputs offline.

Determinism: the samples and events never touch the wall clock; only
the optional trace markers carry timestamps (like every other span).
``health.json`` is written through :meth:`HealthMonitor.write`, which
uses the canonical byte layout — two identically-seeded runs produce
identical bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

from repro.neat.population import GenerationStats, Population
from repro.obs.detectors import (
    GenerationSample,
    HealthConfig,
    build_detectors,
)
from repro.obs.events import HealthEvent, HealthReport
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import get_tracer

__all__ = [
    "HealthMonitor",
    "build_sample",
    "run_attribution",
    "SAMPLE_SPAN",
    "EVENT_SPAN_PREFIX",
]

#: span name carrying one generation's sample attrs in the trace
SAMPLE_SPAN = "health.sample"
#: event spans are named ``health.<detector>``
EVENT_SPAN_PREFIX = "health."

#: manifest keys copied into the report's ``run`` section — only
#: deterministic attribution, never wall-clock fields like created_unix
_RUN_KEYS = (
    "command",
    "env",
    "backend",
    "workers",
    "population",
    "generations",
    "episodes_per_genome",
    "seed",
    "git_commit",
    "git_dirty",
    "schedule",
    "prefetch",
    "overlap",
    "devices",
    "islands",
    "migration_interval",
    "migration_size",
)

#: cumulative reporter-column extras copied verbatim into samples
_EXTRA_KEYS = (
    "quarantined",
    "shard_retries",
    "shard_degraded",
    "oversize",
    "fallback_waves",
    "devices_up",
    "device_evictions",
    "device_readmissions",
    "repacked_waves",
    "migrations",
    "migrations_skipped",
)


def run_attribution(manifest: Mapping[str, Any] | None) -> dict[str, Any]:
    """The deterministic slice of a manifest dict for ``health.json``."""
    if not manifest:
        return {}
    return {key: manifest[key] for key in _RUN_KEYS if key in manifest}


def build_sample(
    stats: GenerationStats, backend: Any = None
) -> GenerationSample:
    """Assemble one generation's health inputs.

    The ``GenerationStats`` fixed fields and backend-contributed extras
    provide the evolution-side signals; the optional ``backend`` is
    probed (duck-typed, every probe optional) for cache counters and
    the generation's cycle report.  Under evolve/evaluate overlap the
    software backends defer cycle pricing to ``drain()``, so the INAX
    shape fields stay ``None`` there — the INAX backend prices its
    report synchronously, which is the only backend those detectors
    are about anyway.
    """
    extras = stats.extras
    kwargs: dict[str, Any] = {
        "generation": stats.generation,
        "best_fitness": stats.best_fitness,
        "mean_fitness": stats.mean_fitness,
        "num_species": stats.num_species,
        "population_size": stats.population_size,
    }
    for key in _EXTRA_KEYS:
        if key in extras:
            kwargs[key] = float(extras[key])
    if "pack_eff" in extras:  # per-generation wave occupancy (inax)
        kwargs["pack_eff"] = float(extras["pack_eff"])
    if backend is None:
        return GenerationSample(**kwargs)
    if hasattr(backend, "cache_info"):
        info = backend.cache_info()
        kwargs["cache_hits"] = float(info["hits"])
        kwargs["cache_misses"] = float(info["misses"])
    if hasattr(backend, "compile_cache_info"):
        info = backend.compile_cache_info()
        kwargs["compile_hits"] = float(info["hits"])
        kwargs["compile_misses"] = float(info["misses"])
    records = getattr(backend, "records", None)
    if records:
        report = records[-1].cycle_report
        if report is not None:
            kwargs["waves"] = int(report.waves)
            kwargs["setup_cycles"] = float(report.setup_cycles)
            kwargs["prefetch_hidden_cycles"] = float(
                report.prefetch_hidden_cycles
            )
    pipeline = getattr(backend, "pipeline", None)
    if pipeline is not None:
        kwargs["prefetch_enabled"] = bool(pipeline.prefetch)
    return GenerationSample(**kwargs)


class HealthMonitor:
    """Streaming run-health evaluation, wired in as a reporter.

    Usage (the platform does this for you via ``E3(..., health=...)``)::

        monitor = HealthMonitor()
        monitor.attach(population, backend)
        ...            # run as usual; detectors fire per generation
        monitor.write("health.json")
    """

    def __init__(
        self,
        config: HealthConfig | None = None,
        names: list[str] | None = None,
    ) -> None:
        self.config = config if config is not None else HealthConfig()
        self._detectors = build_detectors(self.config, names)
        self.samples: list[GenerationSample] = []
        self.events: list[HealthEvent] = []
        self._backend: Any = None
        self._finalized = False

    # ------------------------------------------------------------ wiring
    def attach(
        self, population: Population, backend: Any = None
    ) -> "HealthMonitor":
        """Register as a reporter and remember the backend to probe.

        Idempotent *and re-arming*: attaching the same monitor again (a
        resumed or re-submitted job) neither double-registers the
        reporter — which would double-emit ``health.sample`` spans and
        double-count ``health.events.*`` — nor leaves a previously
        finalized monitor refusing samples; the finalize latch re-opens
        so the new run's generations are observed normally (and
        :meth:`finalize` stays idempotent *per run*).
        """
        self._backend = backend
        self._finalized = False
        population.reporters.add(self)
        return self

    # -------------------------------------------------------- observation
    def on_generation(self, stats: GenerationStats) -> None:
        """Reporter protocol entry point (fires once per generation)."""
        self.observe(build_sample(stats, self._backend))

    def observe(self, sample: GenerationSample) -> None:
        """Feed one sample through the detectors; stream to telemetry."""
        if self._finalized:
            raise RuntimeError("HealthMonitor already finalized")
        self.samples.append(sample)
        tracer = get_tracer()
        if tracer is not None:
            tracer.add_span(
                SAMPLE_SPAN, tracer.now(), 0.0, **sample.to_attrs()
            )
        fired: list[HealthEvent] = []
        for detector in self._detectors:
            fired.extend(detector.observe(sample))
        self._emit(fired)

    def _emit(self, fired: list[HealthEvent]) -> None:
        if not fired:
            return
        self.events.extend(fired)
        tracer = get_tracer()
        registry = get_metrics()
        for event in fired:
            if tracer is not None:
                tracer.add_span(
                    EVENT_SPAN_PREFIX + event.detector,
                    tracer.now(),
                    0.0,
                    severity=event.severity,
                    site=event.site,
                    message=event.message,
                    **dict(event.evidence),
                )
            if registry is not None:
                registry.counter(f"health.events.{event.severity}").inc()

    # ------------------------------------------------------------ verdict
    def finalize(self) -> None:
        """Run the detectors' end-of-run hooks (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        final: list[HealthEvent] = []
        for detector in self._detectors:
            final.extend(detector.finish())
        self._emit(final)

    def report(
        self, run: Mapping[str, Any] | None = None
    ) -> HealthReport:
        """The run verdict so far (call :meth:`finalize` first for the
        end-of-run hooks to be included)."""
        return HealthReport.build(
            events=self.events,
            generations=len(self.samples),
            detectors=[d.name for d in self._detectors],
            config=self.config.to_dict(),
            run=dict(run or {}),
        )

    def write(
        self, path: str | Path, run: Mapping[str, Any] | None = None
    ) -> HealthReport:
        """Finalize and write the canonical ``health.json``."""
        self.finalize()
        report = self.report(run)
        Path(path).write_text(report.to_json())
        return report
