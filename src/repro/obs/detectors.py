"""The detector registry: deterministic run-health rules.

Each detector consumes the per-generation :class:`GenerationSample`
stream and emits :class:`~repro.obs.events.HealthEvent`\\ s when a
health contract is violated.  Detectors are **pure functions of the
sample stream**: no wall clock, no RNG, no telemetry access — the same
samples always produce the same events, which is what lets the doctor
replay an exported trace through the same registry and reproduce the
live monitor's ``health.json`` byte for byte.

Samples carry *cumulative* counters (quarantined genomes, shard
retries, cache hits) exactly as the backends report them; detectors
difference consecutive samples themselves, so a monitor attached
mid-run (resume) still sees correct per-generation deltas.

Registry
--------

===========================  ====================================================
name                         fires when
===========================  ====================================================
``fitness.stagnation``       best-ever fitness flat for a window of generations
``fitness.regression``       generation best drops far below the running max
``species.collapse``         species count collapses to (or below) the floor
``cache.hit_rate``           decode/compile cache hit rate collapses post-warmup
``quarantine.storm``         NaN/inf quarantines spike in one generation
``fallback.storm``           INAX waves fall back to software in bursts
``shard.instability``        shard retries burst / shards degrade in-process
``inax.occupancy``           wave packing efficiency sinks below the floor
``inax.prefetch``            prefetch stops hiding set-up behind compute
``fabric.instability``       farm devices get evicted / the farm degrades to one
``fabric.eviction_storm``    evictions cluster inside a short window
===========================  ====================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Callable, Iterable, Mapping

from repro.obs.events import HealthEvent

__all__ = [
    "HealthConfig",
    "GenerationSample",
    "Detector",
    "DETECTOR_REGISTRY",
    "register_detector",
    "build_detectors",
    "evaluate_samples",
]


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds for every registered detector (all deterministic)."""

    #: generations without a new best before ``fitness.stagnation``
    stagnation_window: int = 10
    #: generation-best drop (fraction of the running max's magnitude)
    #: tolerated before ``fitness.regression`` warns / goes critical
    regression_tolerance: float = 0.25
    regression_critical: float = 0.6
    #: ``species.collapse`` fires when the count falls below this floor
    species_floor: int = 2
    #: generations of cache traffic ignored before hit rates are judged
    cache_warmup_generations: int = 3
    #: minimum per-generation lookups before a hit rate is meaningful
    cache_min_lookups: int = 10
    #: per-generation hit rate below this is a collapse
    cache_hit_rate_floor: float = 0.2
    #: quarantined fraction of the population per generation
    quarantine_warning_fraction: float = 0.05
    quarantine_critical_fraction: float = 0.25
    #: fraction of a generation's waves that fell back to software
    fallback_warning_fraction: float = 0.25
    #: shard retries in one generation before ``shard.instability``
    shard_retry_burst: int = 2
    #: per-generation wave occupancy below this is an occupancy drop
    occupancy_floor: float = 0.25
    #: fraction of set-up cycles prefetch must hide (later waves)
    prefetch_hiding_floor: float = 0.25
    #: ``fabric.eviction_storm``: this many device evictions inside the
    #: window is a storm (flapping hardware, not isolated failures)
    eviction_storm_window: int = 5
    eviction_storm_count: int = 3

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


@dataclass(frozen=True)
class GenerationSample:
    """One generation's deterministic health inputs.

    Everything optional is ``None`` when the run's backend does not
    produce it (a CPU run has no shard counters, a software run has no
    wave occupancy); detectors skip what is missing.  Counter fields
    are cumulative over the run, matching the backends'
    ``reporter_columns`` contract.
    """

    generation: int
    best_fitness: float | None = None
    mean_fitness: float | None = None
    num_species: int | None = None
    population_size: int | None = None
    #: cumulative quarantined-genome count (all backends)
    quarantined: float | None = None
    #: cumulative shard retry / degraded counts (cpu-fast with workers)
    shard_retries: float | None = None
    shard_degraded: float | None = None
    #: cumulative oversize-genome / software-fallback-wave counts (inax)
    oversize: float | None = None
    fallback_waves: float | None = None
    #: this generation's count-based wave occupancy (inax)
    pack_eff: float | None = None
    #: cumulative decode-cache lookups (cpu-fast / cpu-compiled)
    cache_hits: float | None = None
    cache_misses: float | None = None
    #: cumulative compile-cache lookups (cpu-compiled)
    compile_hits: float | None = None
    compile_misses: float | None = None
    #: this generation's dispatch shape (inax cycle report)
    waves: int | None = None
    setup_cycles: float | None = None
    prefetch_hidden_cycles: float | None = None
    prefetch_enabled: bool | None = None
    #: farm health (fabric backend): alive-device gauge + cumulative
    #: eviction/re-admission/re-pack counters
    devices_up: float | None = None
    device_evictions: float | None = None
    device_readmissions: float | None = None
    repacked_waves: float | None = None
    #: island migration outcomes (cumulative)
    migrations: float | None = None
    migrations_skipped: float | None = None

    def to_attrs(self) -> dict[str, Any]:
        """Flat span-attribute dict; ``None`` fields are omitted."""
        attrs: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if value is not None:
                attrs[spec.name] = value
        return attrs

    @classmethod
    def from_attrs(cls, attrs: Mapping[str, Any]) -> "GenerationSample":
        known = {spec.name for spec in fields(cls)}
        kwargs = {k: v for k, v in attrs.items() if k in known}
        return cls(**kwargs)


class Detector:
    """Base detector: stateful over one run, deterministic throughout."""

    #: registry name; subclasses override
    name = "detector"

    def __init__(self, config: HealthConfig) -> None:
        self.config = config

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        """Consume one generation's sample; return any new events."""
        raise NotImplementedError

    def finish(self) -> list[HealthEvent]:
        """End-of-run hook (stagnation summaries etc.); default none."""
        return []

    # ------------------------------------------------------------ helpers
    def _event(
        self,
        severity: str,
        site: str,
        message: str,
        **evidence: Any,
    ) -> HealthEvent:
        return HealthEvent(
            detector=self.name,
            severity=severity,
            site=site,
            message=message,
            evidence=evidence,
        )


#: registry name -> detector class
DETECTOR_REGISTRY: dict[str, type[Detector]] = {}


def register_detector(cls: type[Detector]) -> type[Detector]:
    if cls.name in DETECTOR_REGISTRY:
        raise ValueError(f"duplicate detector name {cls.name!r}")
    DETECTOR_REGISTRY[cls.name] = cls
    return cls


def build_detectors(
    config: HealthConfig | None = None,
    names: Iterable[str] | None = None,
) -> list[Detector]:
    """Instantiate registered detectors (all by default, sorted by name)."""
    config = config if config is not None else HealthConfig()
    if names is None:
        selected = sorted(DETECTOR_REGISTRY)
    else:
        selected = list(names)
        for name in selected:
            if name not in DETECTOR_REGISTRY:
                known = ", ".join(sorted(DETECTOR_REGISTRY))
                raise ValueError(
                    f"unknown detector {name!r}; registered: {known}"
                )
    return [DETECTOR_REGISTRY[name](config) for name in selected]


def _delta(
    current: float | None, previous: float | None
) -> float | None:
    """Per-generation delta of a cumulative counter (None = unknown)."""
    if current is None:
        return None
    if previous is None:
        return current
    return current - previous


# ----------------------------------------------------------- fitness health
@register_detector
class FitnessStagnationDetector(Detector):
    """Best-ever fitness flat for ``stagnation_window`` generations.

    Warns at one window, goes critical at two — an autonomous edge run
    that stopped improving is burning energy for nothing.
    """

    name = "fitness.stagnation"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._best: float | None = None
        self._since_improved = 0
        self._warned = False
        self._critical = False

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        best = sample.best_fitness
        if best is None:
            return []
        if self._best is None or best > self._best:
            self._best = best
            self._since_improved = 0
            self._warned = False
            self._critical = False
            return []
        self._since_improved += 1
        window = self.config.stagnation_window
        events: list[HealthEvent] = []
        if self._since_improved >= 2 * window and not self._critical:
            self._critical = True
            events.append(
                self._event(
                    "critical",
                    f"gen={sample.generation}",
                    f"best fitness flat for {self._since_improved} "
                    f"generations (2x window)",
                    stagnant_generations=self._since_improved,
                    window=window,
                    best_fitness=self._best,
                )
            )
        elif self._since_improved >= window and not self._warned:
            self._warned = True
            events.append(
                self._event(
                    "warning",
                    f"gen={sample.generation}",
                    f"best fitness flat for {self._since_improved} "
                    f"generations",
                    stagnant_generations=self._since_improved,
                    window=window,
                    best_fitness=self._best,
                )
            )
        return events


@register_detector
class FitnessRegressionDetector(Detector):
    """Generation best collapses relative to the running maximum.

    NEAT's per-generation best naturally wobbles; this fires only when
    the drop exceeds ``regression_tolerance`` of the running max's
    magnitude, and emits once per excursion (on entry) rather than
    every generation the run stays depressed.
    """

    name = "fitness.regression"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._running_max: float | None = None
        self._in_regression = False

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        best = sample.best_fitness
        if best is None:
            return []
        if self._running_max is None or best > self._running_max:
            self._running_max = best
            self._in_regression = False
            return []
        scale = max(abs(self._running_max), 1.0)
        drop = (self._running_max - best) / scale
        if drop <= self.config.regression_tolerance:
            self._in_regression = False
            return []
        if self._in_regression:
            return []
        self._in_regression = True
        severity = (
            "critical" if drop > self.config.regression_critical else "warning"
        )
        return [
            self._event(
                severity,
                f"gen={sample.generation}",
                f"generation best dropped {drop:.0%} below the running max",
                drop_fraction=drop,
                generation_best=best,
                running_max=self._running_max,
            )
        ]


@register_detector
class SpeciesCollapseDetector(Detector):
    """Species count falls below the diversity floor.

    One surviving species means crossover diversity is gone and the
    run is riding a single lineage; fires on the healthy -> collapsed
    transition.
    """

    name = "species.collapse"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._was_healthy = False
        self._peak: int | None = None

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        count = sample.num_species
        if count is None:
            return []
        if self._peak is None or count > self._peak:
            self._peak = count
        floor = self.config.species_floor
        if count >= floor:
            self._was_healthy = True
            return []
        if not self._was_healthy:
            # a run that *starts* under the floor never had diversity
            # to lose; stay quiet until it first clears the bar
            return []
        self._was_healthy = False
        return [
            self._event(
                "warning",
                f"gen={sample.generation}",
                f"species collapsed to {count} (floor {floor}, "
                f"peak {self._peak})",
                num_species=count,
                floor=floor,
                peak=self._peak,
            )
        ]


# ------------------------------------------------------------- cache health
@register_detector
class CacheCollapseDetector(Detector):
    """Decode/compile cache hit rate collapses after warm-up.

    A structural cache that stops hitting means every generation pays
    full decode/compile cost again — the PR 1/PR 6 speedups silently
    evaporate.  Judged per generation on delta traffic, separately for
    the decode and compile caches.
    """

    name = "cache.hit_rate"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._previous: dict[str, tuple[float, float]] = {}
        self._alerted: dict[str, bool] = {}

    def _check(
        self,
        cache: str,
        hits: float | None,
        misses: float | None,
        sample: GenerationSample,
    ) -> list[HealthEvent]:
        if hits is None or misses is None:
            return []
        prev_hits, prev_misses = self._previous.get(cache, (0.0, 0.0))
        self._previous[cache] = (hits, misses)
        if sample.generation < self.config.cache_warmup_generations:
            return []
        delta_hits = hits - prev_hits
        delta_misses = misses - prev_misses
        lookups = delta_hits + delta_misses
        if lookups < self.config.cache_min_lookups:
            return []
        rate = delta_hits / lookups
        floor = self.config.cache_hit_rate_floor
        if rate >= floor:
            self._alerted[cache] = False
            return []
        if self._alerted.get(cache, False):
            return []
        self._alerted[cache] = True
        return [
            self._event(
                "warning",
                f"gen={sample.generation}|cache={cache}",
                f"{cache} cache hit rate collapsed to {rate:.0%} "
                f"(floor {floor:.0%})",
                hit_rate=rate,
                floor=floor,
                lookups=lookups,
            )
        ]

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        events = self._check(
            "decode", sample.cache_hits, sample.cache_misses, sample
        )
        events.extend(
            self._check(
                "compile", sample.compile_hits, sample.compile_misses, sample
            )
        )
        return events


# -------------------------------------------------------- resilience health
@register_detector
class QuarantineStormDetector(Detector):
    """NaN/inf quarantines spike within one generation.

    A lone quarantine is the resilience layer doing its job; a storm
    means a systemic fault source (sensor, corrupted buffer) is
    poisoning a meaningful slice of the population every generation.
    """

    name = "quarantine.storm"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._previous: float | None = None

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        delta = _delta(sample.quarantined, self._previous)
        if sample.quarantined is not None:
            self._previous = sample.quarantined
        if delta is None or delta <= 0:
            return []
        population = sample.population_size
        if not population:
            return []
        fraction = delta / population
        if fraction < self.config.quarantine_warning_fraction:
            return []
        severity = (
            "critical"
            if fraction >= self.config.quarantine_critical_fraction
            else "warning"
        )
        return [
            self._event(
                severity,
                f"gen={sample.generation}",
                f"{int(delta)} genomes quarantined this generation "
                f"({fraction:.0%} of the population)",
                quarantined=delta,
                fraction=fraction,
                population=population,
            )
        ]


@register_detector
class FallbackStormDetector(Detector):
    """INAX waves degrade to the software path in bursts.

    The fallback ladder keeps results bit-identical, but every fallen
    wave runs at software speed — a burst means the device (or its
    DMA) is effectively down while the run pretends to be accelerated.
    """

    name = "fallback.storm"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._previous: float | None = None

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        delta = _delta(sample.fallback_waves, self._previous)
        if sample.fallback_waves is not None:
            self._previous = sample.fallback_waves
        if delta is None or delta <= 0:
            return []
        waves = sample.waves
        evidence: dict[str, Any] = {"fallback_waves": delta}
        if waves:
            fraction = delta / waves
            evidence["waves"] = waves
            evidence["fraction"] = fraction
            if delta >= waves:
                severity = "critical"
                message = (
                    f"every wave ({int(delta)}/{waves}) fell back to "
                    "software — the device is effectively down"
                )
            elif fraction >= self.config.fallback_warning_fraction:
                severity = "warning"
                message = (
                    f"{int(delta)}/{waves} waves fell back to software "
                    f"({fraction:.0%})"
                )
            else:
                severity = "info"
                message = f"{int(delta)} wave(s) fell back to software"
        else:
            severity = "warning"
            message = f"{int(delta)} wave(s) fell back to software"
        return [
            self._event(
                severity,
                f"gen={sample.generation}",
                message,
                **evidence,
            )
        ]


@register_detector
class ShardInstabilityDetector(Detector):
    """cpu-fast shards retry in bursts or degrade in-process.

    Retries are recoverable churn (warn on bursts); a *degraded* shard
    means retries were exhausted and the supervisor pulled work
    in-process — the parallel path is failing.
    """

    name = "shard.instability"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._previous_retries: float | None = None
        self._previous_degraded: float | None = None

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        retries = _delta(sample.shard_retries, self._previous_retries)
        if sample.shard_retries is not None:
            self._previous_retries = sample.shard_retries
        if retries is not None and retries >= self.config.shard_retry_burst:
            events.append(
                self._event(
                    "warning",
                    f"gen={sample.generation}",
                    f"{int(retries)} shard retries in one generation",
                    retries=retries,
                    burst_threshold=self.config.shard_retry_burst,
                )
            )
        degraded = _delta(sample.shard_degraded, self._previous_degraded)
        if sample.shard_degraded is not None:
            self._previous_degraded = sample.shard_degraded
        if degraded is not None and degraded > 0:
            events.append(
                self._event(
                    "critical",
                    f"gen={sample.generation}",
                    f"{int(degraded)} shard(s) exhausted retries and "
                    "degraded in-process",
                    degraded=degraded,
                )
            )
        return events


# ------------------------------------------------------------- INAX health
@register_detector
class OccupancyDropDetector(Detector):
    """Wave occupancy sinks below the floor.

    Occupancy is the §V-B2 idle-PU effect made visible: a low value
    means most PU slots idle while stragglers pin waves open — exactly
    what LPT packing exists to fix.  Fires on the transition into the
    low-occupancy regime.
    """

    name = "inax.occupancy"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._alerted = False

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        occupancy = sample.pack_eff
        if occupancy is None:
            return []
        floor = self.config.occupancy_floor
        if occupancy >= floor:
            self._alerted = False
            return []
        if self._alerted:
            return []
        self._alerted = True
        return [
            self._event(
                "warning",
                f"gen={sample.generation}",
                f"wave occupancy dropped to {occupancy:.0%} "
                f"(floor {floor:.0%})",
                occupancy=occupancy,
                floor=floor,
            )
        ]


@register_detector
class PrefetchHidingDetector(Detector):
    """Prefetch stops hiding set-up cycles behind compute.

    With double-buffering on, later waves should hide most of their
    set-up behind the previous wave's compute; a low hidden fraction
    means compute windows shrank below set-up cost and the DMA channel
    is exposed on the wall clock again.
    """

    name = "inax.prefetch"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._alerted = False

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        if not sample.prefetch_enabled:
            return []
        hidden = sample.prefetch_hidden_cycles
        setup = sample.setup_cycles
        if hidden is None or setup is None:
            return []
        if sample.waves is not None and sample.waves < 2:
            return []  # a single wave has nothing to hide behind
        total_setup = hidden + setup
        if total_setup <= 0:
            return []
        fraction = hidden / total_setup
        floor = self.config.prefetch_hiding_floor
        if fraction >= floor:
            self._alerted = False
            return []
        if self._alerted:
            return []
        self._alerted = True
        return [
            self._event(
                "warning",
                f"gen={sample.generation}",
                f"prefetch hides only {fraction:.0%} of set-up cycles "
                f"(floor {floor:.0%})",
                hidden_fraction=fraction,
                floor=floor,
                hidden_cycles=hidden,
                exposed_setup_cycles=setup,
            )
        ]


# ------------------------------------------------------------ fabric health
@register_detector
class FabricInstabilityDetector(Detector):
    """Farm devices get evicted, or the farm degrades to one device.

    Each evicted device shifts its waves onto the survivors (correct
    but slower — the re-pack is fitness-invisible, the cycles are not);
    warn per eviction burst.  When the alive-device count collapses to
    one from a larger farm, the run has silently become single-device:
    critical, fired on the transition.
    """

    name = "fabric.instability"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._previous_evictions: float | None = None
        self._peak_up: float | None = None
        self._degraded = False

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        events: list[HealthEvent] = []
        evictions = _delta(
            sample.device_evictions, self._previous_evictions
        )
        if sample.device_evictions is not None:
            self._previous_evictions = sample.device_evictions
        if evictions is not None and evictions > 0:
            events.append(
                self._event(
                    "warning",
                    f"gen={sample.generation}",
                    f"{int(evictions)} device(s) evicted this generation",
                    evictions=evictions,
                    devices_up=sample.devices_up,
                )
            )
        up = sample.devices_up
        if up is not None:
            if self._peak_up is None or up > self._peak_up:
                self._peak_up = up
            if up > 1:
                self._degraded = False
            elif self._peak_up > 1 and not self._degraded:
                self._degraded = True
                events.append(
                    self._event(
                        "critical",
                        f"gen={sample.generation}",
                        f"farm degraded to 1 device "
                        f"(peak {int(self._peak_up)})",
                        devices_up=up,
                        peak=self._peak_up,
                    )
                )
        return events


@register_detector
class EvictionStormDetector(Detector):
    """Device evictions cluster inside a short window.

    Isolated evictions are the supervisor doing its job; a storm —
    ``eviction_storm_count`` evictions inside
    ``eviction_storm_window`` generations — means the farm is flapping
    (bad power rail, thermal runaway) and probation keeps re-admitting
    devices that immediately fail again.  Fired on the transition into
    the storm regime.
    """

    name = "fabric.eviction_storm"

    def __init__(self, config: HealthConfig) -> None:
        super().__init__(config)
        self._previous: float | None = None
        self._window: list[float] = []
        self._alerted = False

    def observe(self, sample: GenerationSample) -> list[HealthEvent]:
        delta = _delta(sample.device_evictions, self._previous)
        if sample.device_evictions is not None:
            self._previous = sample.device_evictions
        if delta is None:
            return []
        self._window.append(delta)
        window = self.config.eviction_storm_window
        if len(self._window) > window:
            self._window = self._window[-window:]
        total = sum(self._window)
        if total < self.config.eviction_storm_count:
            self._alerted = False
            return []
        if self._alerted:
            return []
        self._alerted = True
        return [
            self._event(
                "critical",
                f"gen={sample.generation}",
                f"{int(total)} device evictions in the last "
                f"{len(self._window)} generation(s) — the farm is flapping",
                evictions_in_window=total,
                window=window,
                threshold=self.config.eviction_storm_count,
            )
        ]


# --------------------------------------------------------------- evaluation
def evaluate_samples(
    samples: Iterable[GenerationSample],
    config: HealthConfig | None = None,
    names: Iterable[str] | None = None,
    observer: Callable[[GenerationSample, list[HealthEvent]], None]
    | None = None,
) -> tuple[list[HealthEvent], list[str], int]:
    """Run a detector set over a sample stream.

    Returns ``(events, detector_names, sample_count)`` — the shared
    core of the live monitor and the offline doctor, so both *must*
    produce identical events for identical samples.  ``observer`` (if
    given) sees each sample with its newly-fired events, which is how
    the streaming monitor publishes to telemetry without the detectors
    ever knowing telemetry exists.
    """
    detectors = build_detectors(config, names)
    events: list[HealthEvent] = []
    count = 0
    for sample in samples:
        count += 1
        fired: list[HealthEvent] = []
        for detector in detectors:
            fired.extend(detector.observe(sample))
        if observer is not None:
            observer(sample, fired)
        events.extend(fired)
    final: list[HealthEvent] = []
    for detector in detectors:
        final.extend(detector.finish())
    events.extend(final)
    return events, [d.name for d in detectors], count
