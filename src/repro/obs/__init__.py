"""repro.obs — the run-health watchtower.

Three pieces, one determinism contract:

* :mod:`repro.obs.monitor` — the streaming :class:`HealthMonitor`, a
  population reporter evaluating the detector registry every
  generation and writing the per-run ``health.json`` verdict;
* :mod:`repro.obs.doctor` — ``repro doctor``, replaying an exported
  trace offline through the *same* detectors with per-phase / per-PU
  hot-spot attribution;
* :mod:`repro.obs.trajectory` — the ``BENCH_trajectory.json`` store
  and the ``repro bench-diff`` regression gate.

Health evaluation is a pure function of the per-generation sample
stream, so a replayed seeded run (chaos plans included) produces a
byte-identical health report — see ``docs/observability.md``.
"""

from repro.obs.detectors import (
    DETECTOR_REGISTRY,
    Detector,
    GenerationSample,
    HealthConfig,
    build_detectors,
    evaluate_samples,
)
from repro.obs.doctor import Diagnosis, diagnose, format_diagnosis
from repro.obs.events import (
    HEALTH_SCHEMA,
    HealthEvent,
    HealthReport,
    validate_health_report,
)
from repro.obs.monitor import HealthMonitor, build_sample, run_attribution

__all__ = [
    "DETECTOR_REGISTRY",
    "Detector",
    "GenerationSample",
    "HealthConfig",
    "build_detectors",
    "evaluate_samples",
    "Diagnosis",
    "diagnose",
    "format_diagnosis",
    "HEALTH_SCHEMA",
    "HealthEvent",
    "HealthReport",
    "validate_health_report",
    "HealthMonitor",
    "build_sample",
    "run_attribution",
]
