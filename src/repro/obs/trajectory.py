"""Bench-regression tracking: the perf trajectory store.

PRs 1/5/6 emit ``BENCH_*.json`` files that were, until now, write-only
— every CI run overwrote the last, so a silent perf regression would
never be noticed.  This module gives them a trajectory:

* :func:`record` appends each bench result to ``BENCH_trajectory.json``
  keyed by ``(bench, metric, commit)`` (same-key re-runs replace, so a
  rebuilt commit does not duplicate history);
* :func:`bench_diff` compares fresh bench outputs against the most
  recent recorded baseline and flags relative regressions beyond a
  threshold — wall-clock-derived ("noisy") metrics get a wider bar
  than analytic cycle-model metrics, so CI machine jitter does not
  cry wolf while a genuine 20% drop still fails the gate.

``repro bench-diff`` wraps this as a CLI with exit code 3 on
regression (the CI gate), and ``benchmarks/trajectory.py`` binds the
repo's default paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "TRAJECTORY_SCHEMA",
    "MetricSpec",
    "METRIC_SPECS",
    "Comparison",
    "extract_metrics",
    "load_trajectory",
    "save_trajectory",
    "record",
    "latest_baseline",
    "bench_diff",
    "format_comparisons",
]

#: schema tag stamped into every BENCH_trajectory.json
TRAJECTORY_SCHEMA = "repro.bench-trajectory/v1"


@dataclass(frozen=True)
class MetricSpec:
    """How to read and judge one bench metric.

    ``path`` walks the bench payload (dots for nesting).  ``noisy``
    marks wall-clock-derived values whose run-to-run jitter warrants a
    wider regression bar (the threshold is doubled) than analytic
    cycle-model values, which must not move at all between identical
    commits.
    """

    path: str
    higher_is_better: bool = True
    noisy: bool = False


#: curated metrics per bench (bench name = BENCH_<name>.json stem)
METRIC_SPECS: dict[str, dict[str, MetricSpec]] = {
    "pipeline": {
        # analytic cycle model: deterministic, tight bar
        "reduction_vs_arrival": MetricSpec(
            "reduction_vs_arrival", higher_is_better=True, noisy=False
        ),
    },
    "compile": {
        # wall-clock speedups: real but jittery on shared CI runners
        "prep_speedup": MetricSpec(
            "prep_speedup", higher_is_better=True, noisy=True
        ),
        "total_speedup": MetricSpec(
            "total_speedup", higher_is_better=True, noisy=True
        ),
    },
    "telemetry_overhead": {
        "overhead_fraction": MetricSpec(
            "overhead_fraction", higher_is_better=False, noisy=True
        ),
    },
    "health_overhead": {
        "overhead_fraction": MetricSpec(
            "overhead_fraction", higher_is_better=False, noisy=True
        ),
    },
    "serve": {
        # wall-clock tail latency + throughput under a 120-job burst
        "p95_seconds": MetricSpec(
            "p95_seconds", higher_is_better=False, noisy=True
        ),
        "throughput_jobs_per_second": MetricSpec(
            "throughput_jobs_per_second", higher_is_better=True, noisy=True
        ),
    },
    "fabric": {
        # analytic farm pricing (price_farm): deterministic, tight bar
        "speedup_4dev": MetricSpec(
            "speedup_4dev", higher_is_better=True, noisy=False
        ),
    },
}

#: name-substring heuristics for benches without curated specs
_HIGHER_HINTS = ("speedup", "reduction", "efficiency", "hit_rate", "rate")
_LOWER_HINTS = ("seconds", "overhead", "cycles", "misses", "fraction")
_NOISY_HINTS = ("seconds", "speedup", "overhead", "wall")


def _walk(payload: Mapping[str, Any], path: str) -> Any:
    value: Any = payload
    for part in path.split("."):
        if not isinstance(value, Mapping) or part not in value:
            return None
        value = value[part]
    return value


def extract_metrics(
    bench: str, payload: Mapping[str, Any]
) -> dict[str, tuple[float, MetricSpec]]:
    """Pull the tracked metrics out of one bench payload.

    Curated benches use :data:`METRIC_SPECS`; unknown benches fall
    back to a name heuristic over top-level numeric fields so a new
    ``BENCH_*.json`` gets trajectory coverage on day one.
    """
    specs = METRIC_SPECS.get(bench)
    out: dict[str, tuple[float, MetricSpec]] = {}
    if specs is not None:
        for name in sorted(specs):
            spec = specs[name]
            value = _walk(payload, spec.path)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[name] = (float(value), spec)
        return out
    for name in sorted(payload):
        value = payload[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        lowered = name.lower()
        if any(hint in lowered for hint in _HIGHER_HINTS):
            higher = True
        elif any(hint in lowered for hint in _LOWER_HINTS):
            higher = False
        else:
            continue  # no direction hint: not judgeable, skip
        noisy = any(hint in lowered for hint in _NOISY_HINTS)
        out[name] = (
            float(value),
            MetricSpec(name, higher_is_better=higher, noisy=noisy),
        )
    return out


# ----------------------------------------------------------------- store
def load_trajectory(path: str | Path) -> dict[str, Any]:
    """Load (or initialise) a trajectory store."""
    path = Path(path)
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "entries": []}
    payload = json.loads(path.read_text())
    if payload.get("schema") != TRAJECTORY_SCHEMA:
        raise ValueError(
            f"{path} is not a bench trajectory "
            f"(schema={payload.get('schema')!r})"
        )
    return payload


def save_trajectory(path: str | Path, trajectory: Mapping[str, Any]) -> None:
    Path(path).write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    )


def record(
    trajectory: dict[str, Any],
    bench: str,
    payload: Mapping[str, Any],
    commit: str,
    dirty: bool = False,
) -> list[dict[str, Any]]:
    """Append one bench run's metrics; returns the entries written.

    Entries are keyed by ``(bench, metric, commit)`` — re-recording the
    same commit replaces in place, so rebuilt CI runs do not inflate
    history.  Append order is the baseline order (newest last).
    """
    entries = trajectory.setdefault("entries", [])
    written: list[dict[str, Any]] = []
    metrics = extract_metrics(bench, payload)
    for metric in sorted(metrics):
        value, spec = metrics[metric]
        entry = {
            "bench": bench,
            "metric": metric,
            "commit": commit,
            "dirty": bool(dirty),
            "value": value,
            "higher_is_better": spec.higher_is_better,
            "noisy": spec.noisy,
        }
        for existing in entries:
            if (
                existing.get("bench") == bench
                and existing.get("metric") == metric
                and existing.get("commit") == commit
            ):
                existing.update(entry)
                break
        else:
            entries.append(entry)
        written.append(entry)
    return written


def latest_baseline(
    trajectory: Mapping[str, Any],
    bench: str,
    metric: str,
    exclude_commit: str | None = None,
) -> dict[str, Any] | None:
    """The most recently recorded entry for (bench, metric).

    ``exclude_commit`` skips the commit under test so a diff against a
    store that already contains the current run still compares against
    genuine history.
    """
    found: dict[str, Any] | None = None
    for entry in trajectory.get("entries", []):
        if entry.get("bench") != bench or entry.get("metric") != metric:
            continue
        if exclude_commit is not None and entry.get("commit") == exclude_commit:
            continue
        found = entry  # append order: last match is newest
    return found


# ------------------------------------------------------------------ diff
@dataclass
class Comparison:
    """One metric's current value judged against its baseline."""

    bench: str
    metric: str
    current: float
    baseline: float | None
    baseline_commit: str | None
    higher_is_better: bool
    threshold: float
    #: relative change in the *bad* direction (positive = worse)
    regression: float = 0.0
    regressed: bool = False
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "bench": self.bench,
            "metric": self.metric,
            "current": self.current,
            "baseline": self.baseline,
            "baseline_commit": self.baseline_commit,
            "higher_is_better": self.higher_is_better,
            "threshold": self.threshold,
            "regression": self.regression,
            "regressed": self.regressed,
            "notes": list(self.notes),
        }


#: noisy (wall-clock) metrics get double the regression bar
NOISY_THRESHOLD_MULTIPLIER = 2.0


def bench_diff(
    trajectory: Mapping[str, Any],
    results: Mapping[str, Mapping[str, Any]],
    threshold: float = 0.1,
    exclude_commit: str | None = None,
) -> list[Comparison]:
    """Judge fresh bench payloads against the recorded trajectory.

    ``results`` maps bench name -> parsed ``BENCH_<name>.json``
    payload.  Returns one :class:`Comparison` per tracked metric; a
    metric with no recorded baseline compares as not-regressed (first
    run seeds the trajectory instead of failing it).
    """
    comparisons: list[Comparison] = []
    for bench in sorted(results):
        payload = results[bench]
        metrics = extract_metrics(bench, payload)
        for metric in sorted(metrics):
            value, spec = metrics[metric]
            bar = threshold * (
                NOISY_THRESHOLD_MULTIPLIER if spec.noisy else 1.0
            )
            comparison = Comparison(
                bench=bench,
                metric=metric,
                current=value,
                baseline=None,
                baseline_commit=None,
                higher_is_better=spec.higher_is_better,
                threshold=bar,
            )
            base = latest_baseline(
                trajectory, bench, metric, exclude_commit=exclude_commit
            )
            if base is None:
                comparison.notes.append("no baseline recorded yet")
            else:
                baseline = float(base["value"])
                comparison.baseline = baseline
                comparison.baseline_commit = str(base.get("commit", ""))
                scale = max(abs(baseline), 1e-12)
                if spec.higher_is_better:
                    comparison.regression = (baseline - value) / scale
                else:
                    comparison.regression = (value - baseline) / scale
                comparison.regressed = comparison.regression > bar
                if spec.noisy:
                    comparison.notes.append("noisy metric (widened bar)")
            comparisons.append(comparison)
    return comparisons


def format_comparisons(comparisons: Iterable[Comparison]) -> str:
    """Render a bench-diff as plain text (what ``repro bench-diff``
    prints)."""
    from repro.core.results import format_table

    rows = []
    for c in comparisons:
        if c.baseline is None:
            change = "new"
        else:
            # positive = improved, negative = worse, regardless of the
            # metric's direction
            change = f"{-c.regression * 100:+.1f}%"
        rows.append(
            [
                "REGRESSED" if c.regressed else "ok",
                c.bench,
                c.metric,
                f"{c.current:.4g}",
                "-" if c.baseline is None else f"{c.baseline:.4g}",
                change,
                f"{c.threshold * 100:.0f}%",
            ]
        )
    return format_table(
        ["status", "bench", "metric", "current", "baseline", "change",
         "bar"],
        rows,
        title="bench trajectory diff",
    )
