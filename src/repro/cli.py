"""Command-line interface.

Eleven subcommands cover the platform's day-to-day workflows::

    python -m repro envs                       # list benchmark tasks
    python -m repro run --env cartpole ...     # evolve on a backend
    python -m repro resume --checkpoint ...    # continue a saved run
    python -m repro compare --env pendulum ... # 3-platform pricing
    python -m repro sweep --axis pe ...        # SV parallelism sweeps
    python -m repro resources --pus 50 --pes 4 # FPGA sizing
    python -m repro dot --checkpoint ...       # champion topology as DOT
    python -m repro trace-summary out.jsonl    # phase/PU table from a trace
    python -m repro doctor out.jsonl           # replay health detectors
    python -m repro bench-diff ...             # perf-trajectory gate
    python -m repro lint src/repro             # static contract linter

``run``, ``resume``, and ``compare`` accept ``--trace PATH`` /
``--metrics PATH`` to record the run's telemetry: ``--trace`` writes
schema-checked JSONL spans plus a ``chrome://tracing`` trace-event file
alongside it, ``--metrics`` writes the metrics-registry snapshot as
JSON.  ``run`` and ``resume`` also accept ``--health PATH`` to attach
the run-health watchtower (``docs/observability.md``) and write its
deterministic ``health.json`` verdict.  Every command prints plain-text
tables (the same formatters the benchmark harness uses) and exits
non-zero on invalid input.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.results import format_seconds, format_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E3 neuroevolution platform (ISPASS 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # ------------------------------------------------------------- envs
    sub.add_parser("envs", help="list registered environments")

    # -------------------------------------------------------------- run
    run = sub.add_parser("run", help="run NEAT on one environment")
    run.add_argument("--env", required=True, help="environment name")
    run.add_argument(
        "--backend", default="inax",
        choices=("cpu", "cpu-fast", "cpu-compiled", "gpu", "inax", "fabric"),
        help="where the evaluate phase runs",
    )
    run.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the cpu-fast backend (0 = in-process)",
    )
    _add_fabric_args(run)
    run.add_argument("--population", type=int, default=100)
    run.add_argument("--generations", type=int, default=20)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--checkpoint", default=None,
        help="write a resumable checkpoint here after the run",
    )
    run.add_argument(
        "--csv", default=None, help="write the per-generation CSV log here"
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-generation lines"
    )
    _add_pipeline_args(run)
    _add_resilience_args(run)
    _add_telemetry_args(run)

    # ----------------------------------------------------------- resume
    resume = sub.add_parser(
        "resume", help="continue a checkpointed run for more generations"
    )
    resume.add_argument("--checkpoint", required=True)
    resume.add_argument("--env", required=True, help="environment name")
    resume.add_argument(
        "--backend", default="inax",
        choices=("cpu", "cpu-fast", "cpu-compiled", "gpu", "inax", "fabric"),
    )
    resume.add_argument(
        "--devices", type=int, default=1,
        help="fabric backend: number of simulated INAX farm devices",
    )
    resume.add_argument(
        "--workers", type=int, default=0,
        help="worker processes for the cpu-fast backend (0 = in-process)",
    )
    resume.add_argument("--generations", type=int, default=20)
    resume.add_argument("--seed", type=int, default=0)
    resume.add_argument(
        "--csv", default=None,
        help="append per-generation rows to this CSV log (the header is "
        "written only when the file is new or empty)",
    )
    resume.add_argument("--quiet", action="store_true")
    _add_pipeline_args(resume)
    _add_resilience_args(resume)
    _add_telemetry_args(resume)

    # ---------------------------------------------------------- compare
    compare = sub.add_parser(
        "compare", help="price one run on the CPU/GPU/INAX platforms"
    )
    compare.add_argument("--env", required=True)
    compare.add_argument("--population", type=int, default=100)
    compare.add_argument("--generations", type=int, default=10)
    compare.add_argument("--seed", type=int, default=0)
    _add_telemetry_args(compare)

    # ----------------------------------------------------- trace-summary
    trace_summary = sub.add_parser(
        "trace-summary",
        help="print the phase/PU-utilization tables from a trace JSONL",
    )
    trace_summary.add_argument(
        "path", help="JSONL trace file written by --trace"
    )
    trace_summary.add_argument(
        "--json", action="store_true",
        help="machine-readable output instead of the text tables",
    )

    # ----------------------------------------------------------- doctor
    doctor = sub.add_parser(
        "doctor",
        help="post-mortem health diagnosis of an exported trace JSONL",
    )
    doctor.add_argument(
        "path", help="JSONL trace file written by --trace"
    )
    doctor.add_argument(
        "--json", action="store_true",
        help="machine-readable diagnosis instead of the text tables",
    )
    doctor.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="also write the replayed health.json here",
    )

    # ------------------------------------------------------- bench-diff
    bench_diff = sub.add_parser(
        "bench-diff",
        help="judge fresh BENCH_*.json outputs against the recorded "
        "perf trajectory (exit 3 on regression)",
    )
    bench_diff.add_argument(
        "--trajectory", default="benchmarks/BENCH_trajectory.json",
        help="trajectory store (BENCH_trajectory.json)",
    )
    bench_diff.add_argument(
        "--bench-dir", default="benchmarks/output",
        help="directory holding the fresh BENCH_*.json outputs",
    )
    bench_diff.add_argument(
        "--threshold", type=float, default=0.1,
        help="relative regression bar (default 0.10; doubled for "
        "wall-clock-derived metrics)",
    )
    bench_diff.add_argument(
        "--record", action="store_true",
        help="append the fresh results to the trajectory after diffing",
    )
    bench_diff.add_argument(
        "--json", action="store_true",
        help="machine-readable comparisons instead of the text table",
    )

    # ------------------------------------------------------------ sweep
    sweep = sub.add_parser(
        "sweep", help="PE or PU parallelism sweep on synthetic workloads"
    )
    sweep.add_argument("--axis", required=True, choices=("pe", "pu"))
    sweep.add_argument("--individuals", type=int, default=100)
    sweep.add_argument("--outputs", type=int, default=4)
    sweep.add_argument("--hidden", type=int, default=30)
    sweep.add_argument("--steps", type=int, default=20)
    sweep.add_argument("--max", type=int, default=None, dest="max_value",
                       help="largest PE/PU count to sweep")
    sweep.add_argument("--seed", type=int, default=0)

    # -------------------------------------------------------------- dot
    dot = sub.add_parser(
        "dot", help="render a checkpoint's champion network as Graphviz DOT"
    )
    dot.add_argument("--checkpoint", required=True)
    dot.add_argument(
        "--out", default=None, help="write here instead of stdout"
    )

    # ------------------------------------------------------------- lint
    lint = sub.add_parser(
        "lint",
        help="static contract linter (determinism / telemetry / parity)",
    )
    # everything after `lint` is forwarded verbatim to `python -m
    # repro.lint` (main() short-circuits before this parser runs, so
    # option-like tokens such as --list-rules survive)
    lint.add_argument("args", nargs=argparse.REMAINDER)

    # -------------------------------------------------------- resources
    resources = sub.add_parser(
        "resources", help="FPGA resource/power estimate for an INAX config"
    )
    resources.add_argument("--pus", type=int, required=True)
    resources.add_argument("--pes", type=int, required=True)

    # ------------------------------------------------------------ serve
    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant evolution service daemon "
        "(docs/serve.md)",
    )
    serve.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket path to listen on (JSON-lines protocol)",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=4, metavar="N",
        help="run at most N jobs at once (default 4)",
    )
    serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="directory for per-job checkpoints and traces "
        "(omit to disable both)",
    )
    serve.add_argument(
        "--keep-checkpoints", type=int, default=2, metavar="K",
        help="rotated checkpoint copies per job (default 2)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=256,
        help="admission control: total queued-job ceiling",
    )
    serve.add_argument(
        "--max-queued-per-tenant", type=int, default=64,
        help="admission control: queued jobs one tenant may hold",
    )
    serve.add_argument(
        "--max-running-per-tenant", type=int, default=4,
        help="dispatch control: running jobs one tenant may hold",
    )
    serve.add_argument(
        "--max-population", type=int, default=512,
        help="admission control: largest population a spec may ask for",
    )

    return parser


def _add_fabric_args(command) -> None:
    command.add_argument(
        "--devices", type=int, default=1,
        help="fabric backend: number of simulated INAX farm devices "
        "(>1 auto-upgrades --backend inax to fabric; see docs/fabric.md)",
    )
    command.add_argument(
        "--islands", type=int, default=1,
        help="evolve this many independent island sub-populations over "
        "the farm (island i is homed on device i %% devices)",
    )
    command.add_argument(
        "--migration-interval", type=int, default=0, metavar="G",
        help="islands: exchange champions around the ring every G "
        "generations (0 = never)",
    )
    command.add_argument(
        "--migration-size", type=int, default=0, metavar="N",
        help="islands: champions each island sends per migration barrier",
    )


def _add_pipeline_args(command) -> None:
    command.add_argument(
        "--schedule", default="arrival", choices=("arrival", "lpt"),
        help="wave-packing policy: 'arrival' (paper baseline, population "
        "order) or 'lpt' (pack by predicted cost from last-generation "
        "episode lengths, longest first); fitness is bit-identical "
        "either way",
    )
    command.add_argument(
        "--prefetch", default=False,
        action=argparse.BooleanOptionalAction,
        help="double-buffered DMA/decode: hide wave N+1's set-up behind "
        "wave N's compute (--no-prefetch restores the baseline)",
    )
    command.add_argument(
        "--overlap", action="store_true",
        help="run the CPU's evolve phase concurrently with the "
        "backend's generation drain (cycle pricing) instead of "
        "serializing them",
    )


def _pipeline_kwargs(args) -> dict:
    """Translate the pipeline CLI flags into an E3/backend kwarg."""
    from repro.inax.pipeline import PipelineConfig

    pipeline = PipelineConfig(
        schedule=getattr(args, "schedule", "arrival"),
        prefetch=bool(getattr(args, "prefetch", False)),
        overlap=bool(getattr(args, "overlap", False)),
    )
    if pipeline == PipelineConfig():
        return {}
    return {"pipeline": pipeline}


def _add_resilience_args(command) -> None:
    command.add_argument(
        "--faults", default=None, metavar="SPEC|FILE",
        help="arm a seeded fault plan for chaos runs: inline spec "
        "('seed=7,worker.crash@0.25,env.reward_nan@0.05') or a JSON "
        "file written by FaultPlan.to_dict (see docs/resilience.md)",
    )
    command.add_argument(
        "--fallback", default=None, choices=("cpu-fast", "cpu"),
        help="inax backend only: degrade faulted/oversized waves to "
        "this bit-identical software path instead of aborting",
    )
    command.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="cpu-fast backend with --workers: watchdog timeout per "
        "shard attempt before the supervisor retries it",
    )
    command.add_argument(
        "--checkpoint-keep", type=int, default=1, metavar="K",
        help="rotate the last K checkpoints (ckpt, ckpt.1, ...); "
        "resume falls back to the newest intact one",
    )


def _resilience_kwargs(args) -> dict:
    """Translate the resilience CLI flags into E3/backend kwargs."""
    kwargs: dict = {}
    if getattr(args, "faults", None):
        from repro.resilience.faults import FaultPlan

        kwargs["fault_plan"] = FaultPlan.load(args.faults)
    if getattr(args, "fallback", None):
        kwargs["fallback"] = args.fallback
    if getattr(args, "shard_timeout", None) is not None:
        from repro.resilience.supervisor import SupervisorConfig

        kwargs["supervisor"] = SupervisorConfig(
            shard_timeout=args.shard_timeout
        )
    return kwargs


def _add_telemetry_args(command) -> None:
    command.add_argument(
        "--trace", default=None,
        help="record spans to this JSONL file (a chrome://tracing "
        "trace-event file is written alongside as *.chrome.json)",
    )
    command.add_argument(
        "--metrics", default=None,
        help="write the metrics-registry snapshot to this JSON file",
    )
    command.add_argument(
        "--health", default=None, metavar="PATH",
        help="attach the run-health watchtower and write its "
        "deterministic health.json verdict here",
    )


def _run_manifest(args, command: str):
    """Collect a RunManifest from the parsed CLI flags."""
    from repro.telemetry import RunManifest

    return RunManifest.collect(
        command=command,
        env=getattr(args, "env", ""),
        backend=getattr(args, "backend", ""),
        workers=getattr(args, "workers", 0),
        population=getattr(args, "population", 0),
        generations=getattr(args, "generations", 0),
        seed=getattr(args, "seed", 0),
        schedule=getattr(args, "schedule", "arrival"),
        prefetch=bool(getattr(args, "prefetch", False)),
        overlap=bool(getattr(args, "overlap", False)),
        devices=getattr(args, "devices", 1),
        islands=getattr(args, "islands", 1),
        migration_interval=getattr(args, "migration_interval", 0),
        migration_size=getattr(args, "migration_size", 0),
        supervisor=_supervisor_dict(args),
    )


def _supervisor_dict(args) -> dict:
    """The manifest's record of the shared recovery policy."""
    from dataclasses import asdict

    from repro.resilience.supervisor import SupervisorConfig

    if getattr(args, "shard_timeout", None) is not None:
        return asdict(SupervisorConfig(shard_timeout=args.shard_timeout))
    return asdict(SupervisorConfig())


def _telemetry_session(args, command: str):
    """Build a TelemetrySession when --trace/--metrics were given."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return None
    from repro.telemetry import TelemetrySession

    return TelemetrySession(manifest=_run_manifest(args, command))


def _health_monitor(args):
    """Build a HealthMonitor when --health was given."""
    if not getattr(args, "health", None):
        return None
    from repro.obs.monitor import HealthMonitor

    return HealthMonitor()


def _write_health(monitor, args, command: str) -> None:
    """Write health.json (deterministic run attribution) and report."""
    if monitor is None:
        return
    from repro.obs.monitor import run_attribution

    report = monitor.write(
        args.health, run=run_attribution(_run_manifest(args, command).to_dict())
    )
    counts = report.severity_counts()
    print(
        f"health: {report.verdict} over {report.generations} "
        f"generation(s) ({counts['critical']} critical, "
        f"{counts['warning']} warning, {counts['info']} info) "
        f"written to {args.health}"
    )


def _export_telemetry(session, args) -> None:
    """Write the sinks the user asked for and say where they went."""
    if session is None:
        return
    from pathlib import Path

    chrome = (
        str(Path(args.trace).with_suffix(".chrome.json"))
        if args.trace
        else None
    )
    written = session.export(
        trace_path=args.trace or None,
        chrome_path=chrome,
        metrics_path=args.metrics or None,
    )
    for sink, path in sorted(written.items()):
        print(f"{sink} written to {path}")


def _print_resilience_summary(backend) -> None:
    """Surface quarantine/fallback/retry totals in the run summary."""
    parts = []
    if getattr(backend, "quarantine_count", 0):
        parts.append(f"{backend.quarantine_count} genomes quarantined")
    if getattr(backend, "fallback_waves", 0):
        parts.append(f"{backend.fallback_waves} waves fell back to software")
    supervisor = getattr(backend, "_supervisor", None)
    if supervisor is not None and (supervisor.retries or supervisor.respawns):
        parts.append(
            f"{supervisor.retries} shard retries / "
            f"{supervisor.respawns} pool respawns"
        )
    fabric = getattr(backend, "fabric", None)
    if fabric is not None and (
        fabric.device_evictions or fabric.device_readmissions
    ):
        parts.append(
            f"{fabric.device_evictions} device evictions / "
            f"{fabric.device_readmissions} re-admissions "
            f"({len(fabric.alive())}/{fabric.num_devices} devices up, "
            f"{fabric.repacked_waves} waves re-packed)"
        )
    if parts:
        print("resilience: " + ", ".join(parts))


def _print_cache_summary(backend) -> None:
    """Surface the structural-cache statistics in the run summary."""
    for label, getter in (
        ("decode cache", "cache_info"),
        ("compile cache", "compile_cache_info"),
    ):
        if not hasattr(backend, getter):
            continue
        info = getattr(backend, getter)()
        lookups = info["hits"] + info["misses"]
        if not lookups and not info["size"] and not info.get("warmed"):
            continue  # backend never used this cache (e.g. cpu-compiled's
            # decode LRU); don't print a dead row
        rate = 100.0 * info["hits"] / lookups if lookups else 0.0
        warmed = (
            f", {info['warmed']} warmed" if info.get("warmed") else ""
        )
        print(
            f"{label}: {info['hits']} hits / {info['misses']} misses "
            f"({rate:.1f}% hit rate), {info['size']} entries{warmed}"
        )


# ---------------------------------------------------------------- commands
def _cmd_envs(_args) -> int:
    from repro.envs.registry import ENV_SUITE, registered_names, spec

    suite_names = {s.name for s in ENV_SUITE}
    rows = []
    for name in registered_names():
        entry = spec(name)
        env = entry.make()
        rows.append(
            [
                entry.paper_id or "-",
                name,
                env.num_inputs,
                env.num_outputs,
                entry.required_fitness,
                "suite" if name in suite_names else "extra",
            ]
        )
    print(
        format_table(
            ["paper id", "name", "inputs", "outputs", "required fitness", ""],
            rows,
            title="registered environments",
        )
    )
    return 0


def _cmd_run(args) -> int:
    from repro.core.platform import E3
    from repro.neat.checkpoint import save_checkpoint
    from repro.neat.config import NEATConfig
    from repro.neat.reporters import ConsoleReporter, CSVReporter

    backend = args.backend
    if args.devices > 1 and backend == "inax":
        # a farm of one kind of device is still the inax path — just
        # the distributed flavour of it
        backend = args.backend = "fabric"
    if args.devices > 1 and backend != "fabric":
        print(f"error: --devices needs the fabric backend, not {backend!r}")
        return 2
    if args.islands > 1:
        return _cmd_run_islands(args)
    session = _telemetry_session(args, "run")
    monitor = _health_monitor(args)
    platform = E3(
        args.env,
        backend=backend,
        neat_config=NEATConfig(population_size=args.population),
        seed=args.seed,
        workers=args.workers,
        telemetry=session,
        health=monitor,
        devices=args.devices,
        **_pipeline_kwargs(args),
        **_resilience_kwargs(args),
    )
    if not args.quiet:
        platform.population.reporters.add(ConsoleReporter())
    csv_reporter = None
    if args.csv:
        csv_reporter = CSVReporter(args.csv)
        platform.population.reporters.add(csv_reporter)

    result = platform.run(max_generations=args.generations)
    platform.backend.close()
    if csv_reporter is not None:
        csv_reporter.close()
    if args.checkpoint:
        save_checkpoint(
            platform.population, args.checkpoint, keep=args.checkpoint_keep
        )
        print(f"checkpoint written to {args.checkpoint}")

    champion = result.best_network()
    print(
        f"\n{args.env}: solved={result.solved} "
        f"best={result.best_fitness:.1f} "
        f"(required {platform.required_fitness}) "
        f"in {result.generations} generations"
    )
    print(
        f"champion: {champion.num_evaluated_nodes} nodes, "
        f"{champion.num_macs} connections"
    )
    _print_cache_summary(platform.backend)
    _print_resilience_summary(platform.backend)
    _write_health(monitor, args, "run")
    _export_telemetry(session, args)
    return 0 if result.solved else 2


def _cmd_run_islands(args) -> int:
    """The ``run --islands K`` path: island-model NEAT over the farm."""
    from repro.fabric import FarmTopology, IslandModel
    from repro.neat.config import NEATConfig
    from repro.neat.network import FeedForwardNetwork
    from repro.neat.reporters import ConsoleReporter, CSVReporter

    if args.checkpoint:
        # island state is K populations + migration counters; the
        # single-population checkpoint format cannot represent it
        print("error: --checkpoint is not supported with --islands > 1")
        return 2
    topology = FarmTopology(
        devices=max(args.devices, 1),
        islands=args.islands,
        migration_interval=args.migration_interval,
        migration_size=args.migration_size,
    )
    session = _telemetry_session(args, "run")
    monitor = _health_monitor(args)
    model = IslandModel(
        args.env,
        topology,
        neat_config=NEATConfig(population_size=args.population),
        seed=args.seed,
        telemetry=session,
        health=monitor,
        **_pipeline_kwargs(args),
        **_resilience_kwargs(args),
    )
    if not args.quiet:
        model.reporters.add(ConsoleReporter())
    csv_reporter = None
    if args.csv:
        csv_reporter = CSVReporter(args.csv)
        model.reporters.add(csv_reporter)

    result = model.run(max_generations=args.generations)
    model.backend.close()
    if csv_reporter is not None:
        csv_reporter.close()

    champion = FeedForwardNetwork.create(
        result.best_genome, model.neat_config
    )
    print(
        f"\n{args.env}: solved={result.solved} "
        f"best={result.best_fitness:.1f} "
        f"(required {model.required_fitness}) "
        f"in {result.generations} generations "
        f"[island {result.best_island} of {topology.islands}, "
        f"{topology.devices} device(s)]"
    )
    print(
        f"champion: {champion.num_evaluated_nodes} nodes, "
        f"{champion.num_macs} connections"
    )
    if model.migrations or model.migrations_skipped:
        print(
            f"migration: {model.migrations} edges exchanged, "
            f"{model.migrations_skipped} skipped"
        )
    _print_resilience_summary(model.backend)
    _write_health(monitor, args, "run")
    _export_telemetry(session, args)
    return 0 if result.solved else 2


def _cmd_resume(args) -> int:
    from repro.core.backends import BACKENDS, FastCPUBackend
    from repro.envs.registry import spec
    from repro.neat.checkpoint import load_checkpoint, save_checkpoint
    from repro.neat.reporters import ConsoleReporter, CSVReporter

    if args.devices > 1 and args.backend == "inax":
        args.backend = "fabric"
    if args.backend == "fabric":
        import repro.fabric.backend  # noqa: F401  (registers the backend)

    population = load_checkpoint(args.checkpoint)
    env_spec = spec(args.env)
    env = env_spec.make()
    if (
        population.config.num_inputs != env.num_inputs
        or population.config.num_outputs != env.num_outputs
    ):
        print(
            f"error: checkpoint was trained on a "
            f"{population.config.num_inputs}-in/"
            f"{population.config.num_outputs}-out task; {args.env} needs "
            f"{env.num_inputs}-in/{env.num_outputs}-out",
            file=sys.stderr,
        )
        return 2
    backend_cls = BACKENDS[args.backend]
    kwargs = {"base_seed": args.seed}
    kwargs.update(_pipeline_kwargs(args))
    resilience = _resilience_kwargs(args)
    if "fault_plan" in resilience:
        kwargs["fault_plan"] = resilience["fault_plan"]
    if issubclass(backend_cls, FastCPUBackend):
        kwargs["workers"] = args.workers
        if "supervisor" in resilience:
            kwargs["supervisor"] = resilience["supervisor"]
    if args.backend in ("inax", "fabric") and "fallback" in resilience:
        kwargs["fallback"] = resilience["fallback"]
    if args.backend == "fabric":
        kwargs["devices"] = args.devices
        if "supervisor" in resilience:
            kwargs["supervisor"] = resilience["supervisor"]
    backend = backend_cls(args.env, population.config, **kwargs)
    # the checkpoint restores genomes but no cache state; warming the
    # structural caches from the restored population keeps post-resume
    # hit rates (and benchmarks) honest instead of silently re-decoding
    # the whole first generation
    warmed = backend.warm_caches(population.population)
    if warmed and not args.quiet:
        print(f"warmed structural caches from checkpoint: {warmed} entries")
    if hasattr(backend, "reporter_columns"):
        population.stat_sources.append(backend.reporter_columns)
    if not args.quiet:
        population.reporters.add(ConsoleReporter())
    csv_reporter = None
    if args.csv:
        # append so a resumed run extends the original history instead
        # of truncating it
        csv_reporter = CSVReporter(args.csv, append=True)
        population.reporters.add(csv_reporter)
    session = _telemetry_session(args, "resume")
    if session is not None:
        session.manifest.extra["checkpoint"] = args.checkpoint
        # the restored population has a null recorder; route its phase
        # timings into the session's registry
        population.profiler = session.phase_timer
        session.install()
    monitor = _health_monitor(args)
    if monitor is not None:
        monitor.attach(population, backend)

    start_generation = population.generation
    drain = backend.drain if backend.pipeline.overlap else None
    try:
        result = population.run(
            backend.evaluate,
            max_generations=args.generations,
            fitness_threshold=env_spec.required_fitness,
            drain=drain,
        )
    finally:
        if monitor is not None:
            monitor.finalize()
        if session is not None:
            session.uninstall()
    backend.close()
    if csv_reporter is not None:
        csv_reporter.close()
    save_checkpoint(population, args.checkpoint, keep=args.checkpoint_keep)
    print(
        f"\nresumed {args.env} from generation {start_generation}: "
        f"now at {population.generation}, best "
        f"{result.best_genome.fitness:.1f} "
        f"(required {env_spec.required_fitness}); checkpoint updated"
    )
    _print_cache_summary(backend)
    _print_resilience_summary(backend)
    _write_health(monitor, args, "resume")
    _export_telemetry(session, args)
    return 0 if result.solved else 2


def _cmd_compare(args) -> int:
    from repro.core.experiment import run_experiment
    from repro.neat.config import NEATConfig

    session = _telemetry_session(args, "compare")
    if session is not None:
        session.manifest.backend = "cpu"  # the functional run's backend
        session.install()
    try:
        result = run_experiment(
            args.env,
            seed=args.seed,
            neat_config=NEATConfig(population_size=args.population),
            max_generations=args.generations,
        )
    finally:
        if session is not None:
            session.uninstall()
    rows = []
    for name in ("cpu", "gpu", "inax"):
        platform = result.platforms[name]
        rows.append(
            [
                f"E3-{name.upper()}",
                format_seconds(platform.runtime_seconds),
                f"{platform.energy_joules:,.1f}",
            ]
        )
    print(
        format_table(
            ["platform", "runtime (s)", "energy (J)"],
            rows,
            title=f"{args.env}: {result.generations} generations, "
            f"best fitness {result.best_fitness:.1f}",
        )
    )
    print(f"speedup E3-CPU/E3-INAX: {result.speedup():.1f}x")
    print(
        f"energy  E3-INAX vs CPU: {result.energy_ratio('inax') * 100:.1f}%"
    )
    _export_telemetry(session, args)
    return 0


def _cmd_trace_summary(args) -> int:
    import json

    from repro.telemetry.export import (
        format_trace_summary,
        summarize_trace,
        validate_trace_jsonl,
    )

    try:
        errors = validate_trace_jsonl(args.path)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if errors:
        for problem in errors[:10]:
            print(f"error: {problem}", file=sys.stderr)
        if len(errors) > 10:
            print(f"error: ... and {len(errors) - 10} more", file=sys.stderr)
        return 2
    summary = summarize_trace(args.path)
    if args.json:
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_trace_summary(summary))
    return 0


#: doctor exit codes by verdict (0 = healthy; 2 is reserved for bad input)
_VERDICT_EXIT = {"healthy": 0, "degraded": 3, "critical": 4}


def _cmd_doctor(args) -> int:
    import json

    from repro.obs.doctor import diagnose, format_diagnosis

    try:
        diagnosis = diagnose(args.path)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diagnosis.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_diagnosis(diagnosis))
    if args.health_out:
        from pathlib import Path

        Path(args.health_out).write_text(diagnosis.report.to_json())
        if not args.json:
            print(f"\nhealth report written to {args.health_out}")
    return _VERDICT_EXIT.get(diagnosis.report.verdict, 2)


def _cmd_bench_diff(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.trajectory import (
        bench_diff,
        format_comparisons,
        load_trajectory,
        record,
        save_trajectory,
    )
    from repro.telemetry.manifest import git_revision

    bench_dir = Path(args.bench_dir)
    results = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        if name == "trajectory":
            continue
        results[name] = json.loads(path.read_text())
    if not results:
        print(f"error: no BENCH_*.json under {bench_dir}", file=sys.stderr)
        return 2
    try:
        trajectory = load_trajectory(args.trajectory)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    commit, dirty = git_revision()
    comparisons = bench_diff(
        trajectory, results, threshold=args.threshold,
        exclude_commit=commit or None,
    )
    if args.json:
        print(json.dumps(
            [c.to_dict() for c in comparisons], indent=2, sort_keys=True
        ))
    else:
        print(format_comparisons(comparisons))
    if args.record:
        written = 0
        for bench in sorted(results):
            written += len(record(
                trajectory, bench, results[bench], commit or "unknown", dirty
            ))
        save_trajectory(args.trajectory, trajectory)
        print(f"recorded {written} metric(s) into {args.trajectory}")
    return 3 if any(c.regressed for c in comparisons) else 0


def _cmd_sweep(args) -> int:
    from repro.inax.accelerator import INAXConfig, schedule_generation
    from repro.inax.heuristics import pe_candidates, pu_candidates
    from repro.inax.synthetic import synthetic_population

    population = synthetic_population(
        num_individuals=args.individuals,
        num_outputs=args.outputs,
        num_hidden=args.hidden,
        seed=args.seed,
    )
    lengths = [args.steps] * args.individuals

    if args.axis == "pe":
        limit = args.max_value or 2 * args.outputs
        points = list(range(1, limit + 1))
        ladder = pe_candidates(args.outputs, limit)
        configs = [(1, p) for p in points]
        util = "U(PE)"
    else:
        limit = args.max_value or args.individuals
        ladder = pu_candidates(args.individuals, limit)
        points = sorted(
            {q for p in ladder for q in (p - 1, p, p + 1)}
            & set(range(1, limit + 1))
        )
        configs = [(p, 1) for p in points]
        util = "U(PU)"

    rows = []
    for num_pus, num_pes in configs:
        cfg = INAXConfig(num_pus=num_pus, num_pes_per_pu=num_pes)
        report = schedule_generation(cfg, population, lengths)
        value = report.u_pe if args.axis == "pe" else report.u_pu
        point = num_pes if args.axis == "pe" else num_pus
        rows.append(
            [
                point,
                f"{report.total_cycles:,.0f}",
                f"{value:.3f}",
                "*" if point in ladder else "",
            ]
        )
    print(
        format_table(
            [f"#{args.axis.upper()}", "cycles", util, "heuristic"],
            rows,
            title=f"{args.axis.upper()} sweep "
            f"(individuals={args.individuals}, outputs={args.outputs}); "
            f"heuristic ladder {ladder}",
        )
    )
    return 0


def _cmd_dot(args) -> int:
    from repro.analysis.render import to_dot
    from repro.neat.checkpoint import load_checkpoint
    from repro.neat.network import FeedForwardNetwork

    population = load_checkpoint(args.checkpoint)
    champion = population.best_genome
    if champion is None:
        # a fresh checkpoint has no evaluated champion yet; fall back to
        # the first individual so there is always something to draw
        champion = population.population[0]
    net = FeedForwardNetwork.create(champion, population.config)
    dot = to_dot(net, name="champion")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(dot + "\n")
        print(f"wrote {args.out} ({net.num_evaluated_nodes} nodes, "
              f"{net.num_macs} connections)")
    else:
        print(dot)
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(args.args)


def _cmd_resources(args) -> int:
    from repro.hw.fpga_model import (
        ZCU104,
        estimate_fpga_power,
        estimate_inax_resources,
    )

    try:
        estimate = estimate_inax_resources(args.pus, args.pes)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    rows = [
        [name, f"{frac * 100:.1f}%"]
        for name, frac in estimate.utilization(ZCU104).items()
    ]
    fits = estimate.fits(ZCU104)
    print(
        format_table(
            ["resource", f"% of {ZCU104.name}"],
            rows,
            title=f"INAX PU={args.pus} PE={args.pes}: "
            f"{'fits' if fits else 'DOES NOT FIT'}, "
            f"~{estimate_fpga_power(estimate):.2f} W",
        )
    )
    return 0 if fits else 3


def _cmd_serve(args) -> int:
    """Boot the evolution-service daemon and serve until shutdown.

    Runs until a client sends the ``shutdown`` op or the process gets
    SIGINT/SIGTERM (both trigger a draining shutdown: running jobs
    finish and checkpoint, queued jobs are cancelled).
    """
    import asyncio
    import signal

    from repro.serve import EvolutionService, QuotaConfig, SocketServer

    quotas = QuotaConfig(
        max_queue_depth=args.max_queue_depth,
        max_queued_per_tenant=args.max_queued_per_tenant,
        max_running_per_tenant=args.max_running_per_tenant,
        max_population=args.max_population,
    )
    service = EvolutionService(
        max_concurrent=args.max_concurrent,
        quotas=quotas,
        data_dir=args.data_dir,
        keep_checkpoints=args.keep_checkpoints,
    )
    server = SocketServer(service, args.socket)

    async def run() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, server.request_shutdown)
        print(f"serving on {args.socket} "
              f"(max_concurrent={args.max_concurrent})")
        sys.stdout.flush()
        await server.serve_until_shutdown()

    asyncio.run(run())
    print("serve: clean shutdown")
    return 0


_COMMANDS = {
    "envs": _cmd_envs,
    "run": _cmd_run,
    "resume": _cmd_resume,
    "dot": _cmd_dot,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "resources": _cmd_resources,
    "trace-summary": _cmd_trace_summary,
    "doctor": _cmd_doctor,
    "bench-diff": _cmd_bench_diff,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "lint":
        # forward verbatim: argparse.REMAINDER would eat option-like
        # tokens (e.g. `lint --list-rules`) as unrecognized arguments
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
