"""Network-complexity comparison (Table V) and overhead rows (Table IV).

Table V contrasts, per environment, the node/connection counts of the
RL baselines' *Small* and *Large* MLPs against the average size of the
networks NEAT actually evolves — the paper's evidence that "evolve
inherently incorporates a pruning process".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.rl.policies import LARGE_HIDDEN, SMALL_HIDDEN
from repro.rl.profiling import mlp_complexity

__all__ = [
    "ComplexityRow",
    "neat_average_complexity",
    "table5_row",
]


@dataclass(frozen=True)
class ComplexityRow:
    """One environment's Table V column."""

    env_name: str
    small_nodes: int
    small_connections: int
    large_nodes: int
    large_connections: int
    neat_avg_nodes: float
    neat_avg_connections: float

    @property
    def small_to_neat_connection_ratio(self) -> float:
        """How much larger the Small MLP is than the evolved average."""
        return self.small_connections / max(self.neat_avg_connections, 1e-9)


def neat_average_complexity(
    populations: list[list[Genome]], config: NEATConfig
) -> tuple[float, float]:
    """(avg nodes, avg enabled connections) over all generations.

    ``populations`` is one genome list per generation, matching the
    paper's "Ave. nodes / Ave. connections" rows which average over the
    whole evolution run.
    """
    nodes: list[int] = []
    conns: list[int] = []
    for population in populations:
        for genome in population:
            nodes.append(genome.num_nodes(config))
            conns.append(genome.num_enabled_connections)
    if not nodes:
        raise ValueError("no genomes supplied")
    return float(np.mean(nodes)), float(np.mean(conns))


def table5_row(
    env_name: str,
    num_inputs: int,
    num_outputs: int,
    populations: list[list[Genome]],
    config: NEATConfig,
) -> ComplexityRow:
    """Build one Table V column for an environment."""
    small_nodes, small_conns = mlp_complexity(
        num_inputs, SMALL_HIDDEN, num_outputs
    )
    large_nodes, large_conns = mlp_complexity(
        num_inputs, LARGE_HIDDEN, num_outputs
    )
    avg_nodes, avg_conns = neat_average_complexity(populations, config)
    return ComplexityRow(
        env_name=env_name,
        small_nodes=small_nodes,
        small_connections=small_conns,
        large_nodes=large_nodes,
        large_connections=large_conns,
        neat_avg_nodes=avg_nodes,
        neat_avg_connections=avg_conns,
    )
