"""Topology statistics of evolved networks (Fig 4(e)(f)(g)).

The paper motivates INAX with three measurements over evolved
populations:

* **node-degree distribution** (Fig 4(e)) — irregular fan-in/out;
* **layer-size histogram** (Fig 4(f)) — widths vary wildly, so no fixed
  PE provisioning fits all layers;
* **density trace** (Fig 4(g)) — connections relative to the dense MLP
  counterpart, fluctuating across generations and exceeding 100% when
  skip links abound.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork

__all__ = [
    "degree_distribution",
    "layer_size_histogram",
    "population_density",
    "DensityTrace",
    "TopologyStats",
    "population_topology_stats",
]


def degree_distribution(
    genomes: list[Genome], config: NEATConfig
) -> Counter:
    """Histogram of node degrees (in + out) over decoded networks.

    Counts only the nodes and connections that survive CreateNet's
    pruning — the traffic the accelerator actually sees.
    """
    counts: Counter = Counter()
    for genome in genomes:
        net = FeedForwardNetwork.create(genome, config)
        degree: Counter = Counter()
        for plan in net.node_evals.values():
            degree[plan.key] += plan.fan_in
            for src, _ in plan.ingress:
                degree[src] += 1
        counts.update(degree.values())
    return counts


def layer_size_histogram(
    genomes: list[Genome], config: NEATConfig
) -> Counter:
    """Histogram of per-layer node counts across decoded networks."""
    counts: Counter = Counter()
    for genome in genomes:
        net = FeedForwardNetwork.create(genome, config)
        counts.update(len(layer) for layer in net.layers)
    return counts


def population_density(
    genomes: list[Genome], config: NEATConfig
) -> float:
    """Mean density over a population (Fig 4's footnote definition)."""
    if not genomes:
        raise ValueError("need at least one genome")
    densities = [
        FeedForwardNetwork.create(g, config).density() for g in genomes
    ]
    return float(np.mean(densities))


@dataclass
class DensityTrace:
    """Density per generation for one environment (one Fig 4(g) line)."""

    env_name: str
    densities: list[float] = field(default_factory=list)

    def record(self, genomes: list[Genome], config: NEATConfig) -> None:
        self.densities.append(population_density(genomes, config))

    @property
    def generations(self) -> int:
        return len(self.densities)


@dataclass(frozen=True)
class TopologyStats:
    """Summary statistics of one population's decoded networks."""

    mean_nodes: float
    mean_connections: float
    mean_layers: float
    mean_density: float
    max_fan_in: int
    degree_histogram: dict[int, int]
    layer_size_histogram: dict[int, int]


def population_topology_stats(
    genomes: list[Genome], config: NEATConfig
) -> TopologyStats:
    """One-shot computation of every Fig 4 statistic for a population."""
    if not genomes:
        raise ValueError("need at least one genome")
    nodes, conns, layers, densities = [], [], [], []
    max_fan_in = 0
    for genome in genomes:
        net = FeedForwardNetwork.create(genome, config)
        nodes.append(net.num_evaluated_nodes + len(net.input_keys))
        conns.append(net.num_macs)
        layers.append(len(net.layers))
        densities.append(net.density())
        max_fan_in = max(max_fan_in, net.max_fan_in)
    return TopologyStats(
        mean_nodes=float(np.mean(nodes)),
        mean_connections=float(np.mean(conns)),
        mean_layers=float(np.mean(layers)),
        mean_density=float(np.mean(densities)),
        max_fan_in=max_fan_in,
        degree_histogram=dict(degree_distribution(genomes, config)),
        layer_size_histogram=dict(layer_size_histogram(genomes, config)),
    )
