"""Analysis: the profiling and topology statistics of §III and Fig 4."""

from repro.analysis.complexity import (
    ComplexityRow,
    neat_average_complexity,
    table5_row,
)
from repro.analysis.convergence import (
    FitnessTrace,
    normalize_fitness,
    random_policy_baseline,
    solve_summary,
)
from repro.analysis.species_stats import SpeciesHistory, SpeciesSnapshot
from repro.analysis.render import render_histogram, render_network, sparkline
from repro.analysis.timing_profile import (
    neat_profile,
    normalized_platform_breakdown,
    rl_profile,
)
from repro.analysis.topology import (
    DensityTrace,
    TopologyStats,
    degree_distribution,
    layer_size_histogram,
    population_density,
    population_topology_stats,
)

__all__ = [
    "ComplexityRow",
    "DensityTrace",
    "FitnessTrace",
    "TopologyStats",
    "degree_distribution",
    "layer_size_histogram",
    "neat_average_complexity",
    "neat_profile",
    "normalize_fitness",
    "normalized_platform_breakdown",
    "population_density",
    "random_policy_baseline",
    "population_topology_stats",
    "render_histogram",
    "render_network",
    "rl_profile",
    "SpeciesHistory",
    "SpeciesSnapshot",
    "solve_summary",
    "sparkline",
    "table5_row",
]
