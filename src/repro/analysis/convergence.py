"""Convergence analysis: normalized fitness and solve statistics (Fig 2).

The paper normalizes each task's achieved fitness to [0, 1] — "when the
algorithm achieves 1.0, it means it finishes the task" — so traces from
tasks with wildly different reward scales share one plot.  The natural
zero point is what a random policy scores, which this module measures
per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.envs.registry import make, spec
from repro.envs.rollout import evaluate_policy

__all__ = [
    "random_policy_baseline",
    "normalize_fitness",
    "FitnessTrace",
    "solve_summary",
]


def random_policy_baseline(
    env_name: str, episodes: int = 3, seed: int = 0
) -> float:
    """Average fitness of a uniformly random policy on ``env_name``."""
    env = make(env_name, seed=seed)
    rng = np.random.default_rng(seed)

    def random_policy(obs: np.ndarray) -> np.ndarray:
        return rng.standard_normal(env.num_outputs)

    seeds = [seed + 1 + i for i in range(episodes)]
    return evaluate_policy(env, random_policy, episodes=episodes, seeds=seeds)


def normalize_fitness(
    fitness: float, baseline: float, required: float
) -> float:
    """Map ``fitness`` to [0, 1]: baseline -> 0, required -> 1, clipped."""
    if required == baseline:
        return 1.0 if fitness >= required else 0.0
    value = (fitness - baseline) / (required - baseline)
    return float(np.clip(value, 0.0, 1.0))


@dataclass
class FitnessTrace:
    """An achieved-fitness trace for one (algorithm, task) pair."""

    algorithm: str
    env_name: str
    #: (wall-clock seconds or generation index, raw fitness) points
    points: list[tuple[float, float]] = field(default_factory=list)

    def record(self, time_point: float, fitness: float) -> None:
        self.points.append((float(time_point), float(fitness)))

    @property
    def best_fitness(self) -> float:
        if not self.points:
            return float("-inf")
        return max(f for _, f in self.points)

    def best_so_far(self) -> list[float]:
        """The monotone best-so-far envelope of the raw trace."""
        envelope: list[float] = []
        best = float("-inf")
        for _, fitness in self.points:
            best = max(best, fitness)
            envelope.append(best)
        return envelope

    def normalized(self, baseline: float | None = None) -> list[float]:
        """Best-so-far envelope normalized against the task's required
        fitness (the Fig 2 y-axis)."""
        if baseline is None:
            baseline = random_policy_baseline(self.env_name)
        required = spec(self.env_name).required_fitness
        return [
            normalize_fitness(value, baseline, required)
            for value in self.best_so_far()
        ]

    @property
    def achieved(self) -> bool:
        """Did the trace reach the task's required fitness?"""
        return self.best_fitness >= spec(self.env_name).required_fitness


def solve_summary(traces: list[FitnessTrace]) -> dict[str, dict[str, float]]:
    """Per-algorithm completion statistics over a set of traces.

    Returns ``{algorithm: {"tasks": n, "solved": k, "mean_normalized": m}}``
    — the red-box accounting of Fig 2.
    """
    summary: dict[str, dict[str, float]] = {}
    for trace in traces:
        entry = summary.setdefault(
            trace.algorithm,
            {"tasks": 0, "solved": 0, "mean_normalized": 0.0},
        )
        entry["tasks"] += 1
        entry["solved"] += int(trace.achieved)
        normalized = trace.normalized()
        entry["mean_normalized"] += normalized[-1] if normalized else 0.0
    for entry in summary.values():
        if entry["tasks"]:
            entry["mean_normalized"] /= entry["tasks"]
    return summary
