"""Speciation dynamics: how topology niches rise and fall.

The paper's "Speciate" exists so that "diverse evolved traits survive
through generations, even if their genomes do not perform well
initially" (Table III).  This module records how that plays out over a
run — species births, deaths, sizes, and lifetimes — the evidence that
fitness sharing actually protects young structural innovations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.neat.population import Population

__all__ = ["SpeciesSnapshot", "SpeciesHistory"]


@dataclass(frozen=True)
class SpeciesSnapshot:
    """One generation's species partition."""

    generation: int
    #: species key -> member count
    sizes: dict[int, int]
    #: species key -> best member fitness this generation
    best_fitness: dict[int, float]


@dataclass
class SpeciesHistory:
    """Per-generation species records with lifetime accounting."""

    snapshots: list[SpeciesSnapshot] = field(default_factory=list)

    def record(self, population: Population) -> None:
        """Snapshot the population's current species partition."""
        sizes: dict[int, int] = {}
        best: dict[int, float] = {}
        for key, species in population.species_set.species.items():
            sizes[key] = species.size
            fitnesses = [
                g.fitness for g in species.members if g.fitness is not None
            ]
            best[key] = max(fitnesses) if fitnesses else float("-inf")
        self.snapshots.append(
            SpeciesSnapshot(
                generation=population.generation,
                sizes=sizes,
                best_fitness=best,
            )
        )

    # ------------------------------------------------------------- stats
    @property
    def generations(self) -> int:
        return len(self.snapshots)

    def species_seen(self) -> set[int]:
        keys: set[int] = set()
        for snap in self.snapshots:
            keys.update(snap.sizes)
        return keys

    def lifetimes(self) -> dict[int, int]:
        """Generations each species appeared in."""
        out: dict[int, int] = {}
        for snap in self.snapshots:
            for key in snap.sizes:
                out[key] = out.get(key, 0) + 1
        return out

    def births_and_deaths(self) -> tuple[list[int], list[int]]:
        """Per-generation counts of species appearing / disappearing."""
        births, deaths = [], []
        previous: set[int] = set()
        for snap in self.snapshots:
            current = set(snap.sizes)
            births.append(len(current - previous))
            deaths.append(len(previous - current))
            previous = current
        return births, deaths

    def mean_species_count(self) -> float:
        if not self.snapshots:
            return 0.0
        return float(np.mean([len(s.sizes) for s in self.snapshots]))

    def turnover(self) -> float:
        """Fraction of observed species that died before the last
        generation — a measure of how actively niches churn."""
        seen = self.species_seen()
        if not seen or not self.snapshots:
            return 0.0
        alive_at_end = set(self.snapshots[-1].sizes)
        return 1.0 - len(alive_at_end & seen) / len(seen)

    def summary(self) -> dict[str, float]:
        lifetimes = list(self.lifetimes().values())
        return {
            "generations": float(self.generations),
            "species_seen": float(len(self.species_seen())),
            "mean_species_alive": self.mean_species_count(),
            "mean_lifetime": float(np.mean(lifetimes)) if lifetimes else 0.0,
            "max_lifetime": float(max(lifetimes, default=0)),
            "turnover": self.turnover(),
        }
