"""Phase-breakdown profiles (Fig 1(b), Fig 3, Fig 9(c), Fig 9(d)).

Helpers that turn phase-time records into the normalized breakdowns the
paper plots, with the paper's own bucketings:

* Fig 1(b) groups NEAT's time into "evaluate" (inference + env) vs the
  evolve sub-functions;
* Fig 3 groups RL time into "Forward" vs "Training";
* Fig 9(c) normalizes all platforms to the E3-CPU total;
* Fig 9(d) is the E3-INAX per-function profile, which should come out
  *balanced* after acceleration.
"""

from __future__ import annotations

from repro.hw.cpu_model import PhaseTimes
from repro.rl.base import TimeBreakdown

__all__ = [
    "neat_profile",
    "rl_profile",
    "normalized_platform_breakdown",
]


def neat_profile(times: PhaseTimes) -> dict[str, float]:
    """Fig 1(b)-style fractions: evaluate (incl. env) vs evolve parts."""
    total = times.total or 1.0
    return {
        "evaluate": (times.evaluate + times.env) / total,
        "createnet": times.createnet / total,
        "evolve": times.evolve / total,
    }


def rl_profile(times: TimeBreakdown) -> dict[str, float]:
    """Fig 3-style fractions: Forward vs Training (env separate)."""
    total = times.total or 1.0
    return {
        "forward": times.forward / total,
        "training": times.training / total,
        "env": times.env / total,
    }


def normalized_platform_breakdown(
    platform_times: dict[str, PhaseTimes], baseline: str = "cpu"
) -> dict[str, dict[str, float]]:
    """Fig 9(c): per-platform phase times normalized to one baseline.

    Every value is a fraction of the *baseline platform's total*, so the
    baseline's bars sum to 1.0 and an accelerated platform's bars sum to
    1/speedup.
    """
    if baseline not in platform_times:
        raise KeyError(f"baseline platform {baseline!r} not in results")
    base_total = platform_times[baseline].total or 1.0
    out: dict[str, dict[str, float]] = {}
    for name, times in platform_times.items():
        out[name] = {
            "evaluate": times.evaluate / base_total,
            "env": times.env / base_total,
            "createnet": times.createnet / base_total,
            "evolve": times.evolve / base_total,
        }
    return out
