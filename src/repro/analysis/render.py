"""Plain-text rendering of evolved networks and fitness traces.

The platform is terminal-first (an edge device has no display), so the
visual artifacts of the paper — evolved topologies like Fig 4(c),
fitness traces like Fig 2 — render as text:

* :func:`render_network` draws the layered irregular topology with
  per-node fan-in annotations;
* :func:`sparkline` compresses a numeric series into one line of block
  characters;
* :func:`render_histogram` prints a bar-chart of a counter (for the
  Fig 4(e)/(f) distributions).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.neat.network import FeedForwardNetwork

__all__ = ["render_network", "sparkline", "render_histogram", "to_dot"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def render_network(net: FeedForwardNetwork, max_width: int = 72) -> str:
    """One line per layer: node keys with fan-in, inputs first.

    Example output::

        inputs : [-1] [-2] [-3]
        layer 1: 4(<2) 7(<1)
        outputs: 0(<3) 1(<2)
    """
    def clip(line: str) -> str:
        if len(line) > max_width:
            return line[: max_width - 3] + "..."
        return line

    lines = []
    inputs = " ".join(f"[{key}]" for key in net.input_keys)
    lines.append(clip(f"inputs : {inputs}"))
    output_set = set(net.output_keys)
    for depth, layer in enumerate(net.layers, start=1):
        cells = []
        for key in layer:
            plan = net.node_evals[key]
            cells.append(f"{key}(<{plan.fan_in})")
        label = (
            "outputs" if all(k in output_set for k in layer) else f"layer {depth}"
        )
        lines.append(clip(f"{label:7s}: " + " ".join(cells)))
    lines.append(
        clip(
            f"total  : {net.num_evaluated_nodes} nodes, {net.num_macs} "
            f"connections, density {net.density():.2f}"
        )
    )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """Compress a numeric series into one line of block characters.

    ``width`` resamples the series (by bucketing) when it is longer.
    Constant series render as a flat middle band.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        bucket = len(series) / width
        series = [
            max(series[int(i * bucket): max(int((i + 1) * bucket), int(i * bucket) + 1)])
            for i in range(width)
        ]
    lo, hi = min(series), max(series)
    if hi == lo:
        return _BLOCKS[3] * len(series)
    span = hi - lo
    out = []
    for value in series:
        idx = int((value - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def render_histogram(
    counts: Mapping[int, int],
    max_bar: int = 40,
    label: str = "value",
) -> str:
    """A horizontal bar chart of an integer-keyed histogram."""
    if not counts:
        return "(empty histogram)"
    peak = max(counts.values())
    lines = [f"{label:>8s}  count"]
    for key in sorted(counts):
        count = counts[key]
        bar = "#" * max(1, round(count / peak * max_bar)) if count else ""
        lines.append(f"{key:8d}  {count:5d} {bar}")
    return "\n".join(lines)


def to_dot(net: FeedForwardNetwork, name: str = "evolved") -> str:
    """Graphviz DOT source for a decoded network (Fig 4(c)-style).

    Inputs render as boxes on one rank, outputs as doublecircles on
    another; edge labels carry the weights.  Paste into any Graphviz
    viewer — nothing here needs graphviz installed.
    """
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    lines.append("  { rank=source;")
    for key in net.input_keys:
        lines.append(f'    "{key}" [shape=box, label="in {key}"];')
    lines.append("  }")
    lines.append("  { rank=sink;")
    for key in net.output_keys:
        lines.append(f'    "{key}" [shape=doublecircle, label="out {key}"];')
    lines.append("  }")
    output_set = set(net.output_keys)
    for key, plan in sorted(net.node_evals.items()):
        if key not in output_set:
            lines.append(
                f'  "{key}" [shape=circle, label="{key}\\n{plan.activation}"];'
            )
    for key, plan in sorted(net.node_evals.items()):
        for src, weight in plan.ingress:
            lines.append(f'  "{src}" -> "{key}" [label="{weight:.2f}"];')
    lines.append("}")
    return "\n".join(lines)
