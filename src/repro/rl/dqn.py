"""DQN — Deep Q-Network [31], the replay-buffer DRL the paper cites.

Included to make §II-B's memory argument concrete: unlike the on-policy
A2C/PPO2 baselines, DQN carries a large experience-replay buffer and a
second (target) copy of the network, so its resident memory dwarfs
every other algorithm in the Table IV comparison.  Discrete-action
tasks only (the Q-head enumerates actions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.envs.base import Environment
from repro.envs.spaces import Discrete
from repro.rl.base import TimeBreakdown
from repro.rl.nn import MLP, Adam
from repro.rl.replay import ReplayBuffer

__all__ = ["DQN", "DQNReport"]


@dataclass
class DQNReport:
    """Outcome of a DQN training run."""

    timesteps: int
    updates: int
    best_fitness: float
    solved: bool
    fitness_trace: list[tuple[float, float]] = field(default_factory=list)
    times: TimeBreakdown = field(default_factory=TimeBreakdown)


class DQN:
    """Vanilla DQN with target network and epsilon-greedy exploration."""

    def __init__(
        self,
        env: Environment,
        hidden: tuple[int, ...] = (64, 64),
        lr: float = 1e-3,
        gamma: float = 0.99,
        buffer_capacity: int = 50_000,
        batch_size: int = 32,
        learning_starts: int = 500,
        train_every: int = 4,
        target_sync_every: int = 500,
        epsilon_start: float = 1.0,
        epsilon_end: float = 0.05,
        epsilon_decay_steps: int = 5_000,
        seed: int | None = None,
    ):
        if not isinstance(env.action_space, Discrete):
            raise TypeError("DQN supports Discrete action spaces only")
        self.env = env
        self.gamma = gamma
        self.batch_size = batch_size
        self.learning_starts = learning_starts
        self.train_every = train_every
        self.target_sync_every = target_sync_every
        self.epsilon_start = epsilon_start
        self.epsilon_end = epsilon_end
        self.epsilon_decay_steps = epsilon_decay_steps
        self.rng = np.random.default_rng(seed)

        sizes = [env.num_inputs, *hidden, env.action_space.n]
        self.q_net = MLP(sizes, rng=self.rng)
        self.target_net = MLP(sizes, rng=self.rng)
        self.target_net.copy_weights_from(self.q_net)
        self.optimizer = Adam(self.q_net.parameters, lr=lr)
        self.buffer = ReplayBuffer(env.num_inputs, capacity=buffer_capacity)
        self.times = TimeBreakdown()
        self._steps = 0
        self._updates = 0

    # -------------------------------------------------------------- act
    def epsilon(self) -> float:
        frac = min(self._steps / self.epsilon_decay_steps, 1.0)
        return self.epsilon_start + frac * (
            self.epsilon_end - self.epsilon_start
        )

    def act(self, obs: np.ndarray, greedy: bool = False) -> int:
        if not greedy and self.rng.random() < self.epsilon():
            return int(self.rng.integers(self.env.action_space.n))
        q = self.q_net.predict(obs[None, :])
        return int(np.argmax(q[0]))

    # ------------------------------------------------------------ update
    def update(self) -> float:
        """One TD minibatch step; returns the TD loss."""
        obs, actions, rewards, next_obs, dones = self.buffer.sample(
            self.batch_size, self.rng
        )
        next_q = self.target_net.predict(next_obs)
        targets = rewards + self.gamma * next_q.max(axis=1) * (~dones)

        q_values, cache = self.q_net.forward(obs)
        taken = q_values[np.arange(self.batch_size), actions]
        td_error = taken - targets

        grad_out = np.zeros_like(q_values)
        grad_out[np.arange(self.batch_size), actions] = (
            td_error / self.batch_size
        )
        grads, _ = self.q_net.backward(cache, grad_out)
        self.optimizer.step(grads)
        self._updates += 1
        if self._updates % self.target_sync_every == 0:
            self.target_net.copy_weights_from(self.q_net)
        return float(np.mean(td_error**2))

    # ------------------------------------------------------------- learn
    def learn(
        self,
        total_timesteps: int,
        fitness_threshold: float | None = None,
        eval_every_steps: int = 2_000,
        eval_episodes: int = 3,
        time_limit: float | None = None,
    ) -> DQNReport:
        threshold = (
            fitness_threshold
            if fitness_threshold is not None
            else self.env.reward_threshold
        )
        start = time.perf_counter()
        trace: list[tuple[float, float]] = []
        best = float("-inf")
        solved = False
        obs = self.env.reset(seed=int(self.rng.integers(2**31)))

        while self._steps < total_timesteps:
            t0 = time.perf_counter()
            action = self.act(obs)
            self.times.forward += time.perf_counter() - t0

            t0 = time.perf_counter()
            next_obs, reward, done, _ = self.env.step(action)
            self.times.env += time.perf_counter() - t0

            self.buffer.add(obs, action, reward, next_obs, done)
            obs = self.env.reset() if done else next_obs
            self._steps += 1

            if (
                self._steps >= self.learning_starts
                and self._steps % self.train_every == 0
            ):
                t0 = time.perf_counter()
                self.update()
                self.times.training += time.perf_counter() - t0

            elapsed = time.perf_counter() - start
            if self._steps % eval_every_steps == 0:
                fitness = self._evaluate(eval_episodes)
                trace.append((elapsed, fitness))
                best = max(best, fitness)
                if threshold is not None and fitness >= threshold:
                    solved = True
                    break
            if time_limit is not None and elapsed > time_limit:
                break

        if not trace:
            fitness = self._evaluate(eval_episodes)
            trace.append((time.perf_counter() - start, fitness))
            best = max(best, fitness)
        return DQNReport(
            timesteps=self._steps,
            updates=self._updates,
            best_fitness=best,
            solved=solved,
            fitness_trace=trace,
            times=self.times,
        )

    def _evaluate(self, episodes: int) -> float:
        from repro.envs.rollout import evaluate_policy

        eval_env = type(self.env)(seed=54321)

        def greedy(obs: np.ndarray) -> np.ndarray:
            return self.q_net.predict(obs[None, :]).reshape(-1)

        return evaluate_policy(eval_env, greedy, episodes=episodes)

    # ------------------------------------------------------------ memory
    def memory_bytes(self) -> int:
        """Resident algorithm state: Q-net, target net, Adam moments,
        and the replay buffer (the Table IV 'High' memory row)."""
        params = self.q_net.num_parameters
        return params * 8 * 4 + self.buffer.memory_bytes()
