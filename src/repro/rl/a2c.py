"""A2C — Advantage Actor-Critic [28], one of the paper's two RL baselines.

Synchronous single-worker A2C: after each fixed-horizon rollout the
policy gradient ``-E[A * log pi(a|s)]`` plus entropy bonus and the value
MSE are backpropagated once through the actor and critic MLPs.
"""

from __future__ import annotations

import numpy as np

from repro.envs.base import Environment
from repro.rl.base import RLTrainer
from repro.rl.nn import Adam
from repro.rl.policies import ActorCriticPolicy, SMALL_HIDDEN, make_policy

__all__ = ["A2C"]


class A2C(RLTrainer):
    """Advantage Actor-Critic with GAE and entropy regularization."""

    n_steps = 8

    def __init__(
        self,
        env: Environment,
        policy: ActorCriticPolicy | None = None,
        hidden: tuple[int, ...] = SMALL_HIDDEN,
        lr: float = 7e-4,
        gamma: float = 0.99,
        gae_lambda: float = 1.0,
        vf_coef: float = 0.5,
        ent_coef: float = 0.01,
        seed: int | None = None,
    ):
        rng = np.random.default_rng(seed)
        policy = policy or make_policy(env, hidden=hidden, rng=rng)
        super().__init__(
            env,
            policy,
            gamma=gamma,
            gae_lambda=gae_lambda,
            vf_coef=vf_coef,
            ent_coef=ent_coef,
            seed=seed,
        )
        self.optimizer = Adam(policy.parameters, lr=lr)

    def update(self) -> dict[str, float]:
        obs, actions, _, advantages, returns = self.buffer.batch()
        n = len(returns)
        # dLoss/dlogp for L = -mean(A * logp)
        dlogp = -advantages / n
        grads = self._actor_critic_grads(
            obs,
            actions,
            dlogp,
            returns,
            entropy_grad_per_sample=-self.ent_coef / n,
        )
        self.optimizer.step(grads)
        return {
            "policy_loss_grad_norm": float(
                np.sqrt(sum(np.sum(g * g) for g in grads))
            )
        }
