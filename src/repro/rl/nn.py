"""Dense MLP with manual backpropagation.

The paper's RL baselines (A2C, PPO2 from stable-baselines [19]) use MLP
policies — *Small* (two hidden layers of 64) and *Large* (three hidden
layers of 256), §III-A.  This module provides the numerical substrate:
a plain NumPy MLP with hand-written forward/backward passes and an Adam
optimizer.  Keeping backprop explicit (rather than mocking a framework)
is what makes the Fig 3 forward-vs-training time split and the Table IV
forward/backward op counts honest measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MLP", "Adam", "mlp_op_counts"]

_ACTIVATIONS = {
    "tanh": (np.tanh, lambda y: 1.0 - y * y),
    "relu": (
        lambda x: np.maximum(x, 0.0),
        lambda y: (y > 0.0).astype(np.float64),
    ),
    "identity": (lambda x: x, lambda y: np.ones_like(y)),
}


@dataclass
class _Layer:
    weight: np.ndarray  # (fan_in, fan_out)
    bias: np.ndarray  # (fan_out,)


class MLP:
    """A fully connected network ``sizes[0] -> ... -> sizes[-1]``.

    The final layer is linear; hidden layers use ``activation``.
    ``forward`` returns the output and a cache that ``backward`` consumes
    to produce parameter gradients and the gradient w.r.t. the input
    (so heads can be chained onto a shared trunk).
    """

    def __init__(
        self,
        sizes: list[int],
        activation: str = "tanh",
        rng: np.random.Generator | None = None,
    ):
        if len(sizes) < 2:
            raise ValueError("an MLP needs at least input and output sizes")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; "
                f"known: {sorted(_ACTIVATIONS)}"
            )
        # a bare construction must still be reproducible: fall back to a
        # fixed seed, never the OS entropy pool
        rng = rng if rng is not None else np.random.default_rng(0)
        self.sizes = list(sizes)
        self.activation = activation
        self.layers: list[_Layer] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))  # Xavier/Glorot
            self.layers.append(
                _Layer(
                    weight=rng.normal(0.0, scale, size=(fan_in, fan_out)),
                    bias=np.zeros(fan_out),
                )
            )

    # ------------------------------------------------------------ params
    @property
    def parameters(self) -> list[np.ndarray]:
        """Flat list [W0, b0, W1, b1, ...] (views, not copies)."""
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend((layer.weight, layer.bias))
        return out

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters)

    # ----------------------------------------------------------- forward
    def forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Forward pass; returns (output, cache of layer activations)."""
        act_fn, _ = _ACTIVATIONS[self.activation]
        h = np.atleast_2d(np.asarray(x, dtype=np.float64))
        cache = [h]
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            z = h @ layer.weight + layer.bias
            h = z if i == last else act_fn(z)
            cache.append(h)
        return h, cache

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass without keeping the cache."""
        return self.forward(x)[0]

    # ---------------------------------------------------------- backward
    def backward(
        self, cache: list[np.ndarray], grad_out: np.ndarray
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Backprop ``grad_out`` (dL/doutput) through the network.

        Returns (parameter gradients aligned with :attr:`parameters`,
        gradient w.r.t. the network input).
        """
        _, act_grad = _ACTIVATIONS[self.activation]
        grads: list[np.ndarray] = [np.empty(0)] * (2 * len(self.layers))
        delta = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            h_in = cache[i]
            grads[2 * i] = h_in.T @ delta
            grads[2 * i + 1] = delta.sum(axis=0)
            delta = delta @ layer.weight.T
            if i > 0:
                delta = delta * act_grad(cache[i])
        return grads, delta

    # --------------------------------------------------------- utilities
    def copy_weights_from(self, other: "MLP") -> None:
        if self.sizes != other.sizes:
            raise ValueError("cannot copy weights between different shapes")
        for mine, theirs in zip(self.layers, other.layers):
            mine.weight[...] = theirs.weight
            mine.bias[...] = theirs.bias


class Adam:
    """Adam optimizer over a list of parameter arrays (in-place update)."""

    def __init__(
        self,
        parameters: list[np.ndarray],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        max_grad_norm: float | None = 0.5,
    ):
        self.parameters = parameters
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.max_grad_norm = max_grad_norm
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self, grads: list[np.ndarray]) -> None:
        if len(grads) != len(self.parameters):
            raise ValueError(
                f"got {len(grads)} gradients for {len(self.parameters)} params"
            )
        if self.max_grad_norm is not None:
            total = np.sqrt(sum(float(np.sum(g * g)) for g in grads))
            if total > self.max_grad_norm and total > 0:
                scale = self.max_grad_norm / total
                grads = [g * scale for g in grads]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.parameters, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


def mlp_op_counts(sizes: list[int]) -> dict[str, int]:
    """Forward and backward operation counts for one sample.

    Forward: one MAC per weight plus one add per bias.  Backward: the
    standard ~2x forward (dL/dW outer products and delta propagation).
    Used by the Table IV bench.
    """
    macs = sum(a * b for a, b in zip(sizes, sizes[1:]))
    biases = sum(sizes[1:])
    forward = macs + biases
    backward = 2 * macs + biases
    return {"forward": forward, "backward": backward, "parameters": macs + biases}
