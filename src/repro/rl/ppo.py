"""PPO2 — Proximal Policy Optimization [37], the paper's second baseline.

Clipped-ratio surrogate objective with multiple epochs of shuffled
minibatches per rollout, matching the stable-baselines PPO2 the paper
profiled.  The extra epochs are why PPO's *Training* slice in Fig 3 is
even larger than A2C's.
"""

from __future__ import annotations

import numpy as np

from repro.envs.base import Environment
from repro.rl.base import RLTrainer
from repro.rl.nn import Adam
from repro.rl.policies import ActorCriticPolicy, SMALL_HIDDEN, make_policy

__all__ = ["PPO"]


class PPO(RLTrainer):
    """PPO2 with clipping, GAE, and minibatch epochs."""

    n_steps = 128

    def __init__(
        self,
        env: Environment,
        policy: ActorCriticPolicy | None = None,
        hidden: tuple[int, ...] = SMALL_HIDDEN,
        lr: float = 3e-4,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        clip_range: float = 0.2,
        n_epochs: int = 4,
        batch_size: int = 32,
        vf_coef: float = 0.5,
        ent_coef: float = 0.01,
        seed: int | None = None,
    ):
        rng = np.random.default_rng(seed)
        policy = policy or make_policy(env, hidden=hidden, rng=rng)
        super().__init__(
            env,
            policy,
            gamma=gamma,
            gae_lambda=gae_lambda,
            vf_coef=vf_coef,
            ent_coef=ent_coef,
            seed=seed,
        )
        self.clip_range = clip_range
        self.n_epochs = n_epochs
        self.batch_size = batch_size
        self.optimizer = Adam(policy.parameters, lr=lr)

    def update(self) -> dict[str, float]:
        clip = self.clip_range
        clip_fraction = 0.0
        batches = 0
        for _ in range(self.n_epochs):
            for obs, actions, old_logp, adv, ret in self.buffer.minibatches(
                self.batch_size, self.rng
            ):
                n = len(ret)
                logp, _, _, _ = self.policy.log_prob_entropy(obs, actions)
                ratio = np.exp(logp - old_logp)
                unclipped = ratio * adv
                clipped = np.clip(ratio, 1 - clip, 1 + clip) * adv
                # gradient flows through the ratio only where the
                # unclipped branch is the active minimum
                active = unclipped <= clipped
                # dL/dlogp = -A * ratio where active (else 0), averaged
                dlogp = np.where(active, -adv * ratio, 0.0) / n
                clip_fraction += float(np.mean(~active))
                batches += 1
                grads = self._actor_critic_grads(
                    obs,
                    actions,
                    dlogp,
                    ret,
                    entropy_grad_per_sample=-self.ent_coef / n,
                )
                self.optimizer.step(grads)
        return {"clip_fraction": clip_fraction / max(batches, 1)}
