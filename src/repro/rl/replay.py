"""Experience replay buffer.

§II-B: "in many DRLs a large replay buffer, which stores the
experiences along the episodes, are often required.  This intensifies
the memory requirement."  This ring buffer is that object — DQN uses
it, and its :meth:`memory_bytes` feeds the Table IV-class memory
comparisons (a 100K-transition buffer dwarfs every other algorithm's
state).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity ring buffer of (s, a, r, s', done) transitions."""

    def __init__(self, obs_dim: int, capacity: int = 50_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.observations = np.zeros((capacity, obs_dim))
        self.actions = np.zeros(capacity, dtype=np.int64)
        self.rewards = np.zeros(capacity)
        self.next_observations = np.zeros((capacity, obs_dim))
        self.dones = np.zeros(capacity, dtype=bool)
        self._pos = 0
        self._size = 0

    def add(
        self,
        obs: np.ndarray,
        action: int,
        reward: float,
        next_obs: np.ndarray,
        done: bool,
    ) -> None:
        i = self._pos
        self.observations[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_observations[i] = next_obs
        self.dones[i] = done
        self._pos = (self._pos + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def sample(
        self, batch_size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Uniform random minibatch (with replacement)."""
        if self._size == 0:
            raise ValueError("cannot sample from an empty buffer")
        idx = rng.integers(self._size, size=batch_size)
        return (
            self.observations[idx],
            self.actions[idx],
            self.rewards[idx],
            self.next_observations[idx],
            self.dones[idx],
        )

    def memory_bytes(self) -> int:
        """Resident bytes — the Table IV "large replay buffer" term."""
        return int(
            self.observations.nbytes
            + self.actions.nbytes
            + self.rewards.nbytes
            + self.next_observations.nbytes
            + self.dones.nbytes
        )
