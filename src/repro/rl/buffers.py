"""Rollout storage and advantage estimation for the RL baselines.

The paper (§II-B) points out that DRL's "large replay buffer, which
stores the experiences along the episodes" intensifies its memory
requirement — :meth:`RolloutBuffer.memory_bytes` is what the Table IV
bench reports for the RL column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["RolloutBuffer", "compute_gae"]


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    last_value: float,
    gamma: float = 0.99,
    lam: float = 0.95,
) -> tuple[np.ndarray, np.ndarray]:
    """Generalized Advantage Estimation.

    Returns (advantages, returns) where ``returns = advantages + values``.
    ``lam=1.0`` reduces to Monte-Carlo advantages; ``lam=0`` to TD(0).
    """
    n = len(rewards)
    advantages = np.zeros(n)
    gae = 0.0
    for t in range(n - 1, -1, -1):
        next_value = last_value if t == n - 1 else values[t + 1]
        non_terminal = 1.0 - float(dones[t])
        delta = rewards[t] + gamma * next_value * non_terminal - values[t]
        gae = delta + gamma * lam * non_terminal * gae
        advantages[t] = gae
    return advantages, advantages + values


@dataclass
class RolloutBuffer:
    """Fixed-horizon on-policy rollout storage."""

    obs_dim: int
    action_shape: tuple[int, ...]
    capacity: int
    observations: np.ndarray = field(init=False)
    actions: np.ndarray = field(init=False)
    rewards: np.ndarray = field(init=False)
    dones: np.ndarray = field(init=False)
    values: np.ndarray = field(init=False)
    log_probs: np.ndarray = field(init=False)
    advantages: np.ndarray = field(init=False)
    returns: np.ndarray = field(init=False)
    _pos: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        cap = self.capacity
        self.observations = np.zeros((cap, self.obs_dim))
        self.actions = np.zeros((cap, *self.action_shape))
        self.rewards = np.zeros(cap)
        self.dones = np.zeros(cap, dtype=bool)
        self.values = np.zeros(cap)
        self.log_probs = np.zeros(cap)
        self.advantages = np.zeros(cap)
        self.returns = np.zeros(cap)

    # ------------------------------------------------------------- write
    def add(
        self,
        obs: np.ndarray,
        action: np.ndarray,
        reward: float,
        done: bool,
        value: float,
        log_prob: float,
    ) -> None:
        if self.full:
            raise RuntimeError("rollout buffer is full; call reset() first")
        i = self._pos
        self.observations[i] = obs
        self.actions[i] = action
        self.rewards[i] = reward
        self.dones[i] = done
        self.values[i] = value
        self.log_probs[i] = log_prob
        self._pos += 1

    @property
    def full(self) -> bool:
        return self._pos >= self.capacity

    def __len__(self) -> int:
        return self._pos

    def reset(self) -> None:
        self._pos = 0

    # ----------------------------------------------------------- finalize
    def finalize(
        self,
        last_value: float,
        gamma: float = 0.99,
        lam: float = 0.95,
        normalize_advantages: bool = True,
    ) -> None:
        """Compute advantages/returns over the filled portion."""
        n = self._pos
        adv, ret = compute_gae(
            self.rewards[:n],
            self.values[:n],
            self.dones[:n],
            last_value,
            gamma=gamma,
            lam=lam,
        )
        if normalize_advantages and n > 1:
            adv = (adv - adv.mean()) / (adv.std() + 1e-8)
        self.advantages[:n] = adv
        self.returns[:n] = ret

    # -------------------------------------------------------------- read
    def batch(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(obs, actions, old_log_probs, advantages, returns)."""
        n = self._pos
        return (
            self.observations[:n],
            self.actions[:n],
            self.log_probs[:n],
            self.advantages[:n],
            self.returns[:n],
        )

    def minibatches(
        self, batch_size: int, rng: np.random.Generator
    ) -> Iterator[tuple[np.ndarray, ...]]:
        """Shuffled minibatches over the filled portion (PPO epochs)."""
        n = self._pos
        order = rng.permutation(n)
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            yield (
                self.observations[idx],
                self.actions[idx],
                self.log_probs[idx],
                self.advantages[idx],
                self.returns[idx],
            )

    # ------------------------------------------------------------ memory
    def memory_bytes(self) -> int:
        """Resident bytes of the rollout storage (Table IV accounting)."""
        arrays = (
            self.observations,
            self.actions,
            self.rewards,
            self.dones,
            self.values,
            self.log_probs,
            self.advantages,
            self.returns,
        )
        return int(sum(a.nbytes for a in arrays))
