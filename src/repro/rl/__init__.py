"""RL baselines: A2C and PPO2 on a from-scratch NumPy autodiff substrate.

These exist because the paper's motivation (§III) is a head-to-head
profiling of NEAT against gradient-based RL: convergence traces (Fig 2),
forward-vs-training time splits (Fig 3), op/memory overhead (Table IV),
and network complexity (Table V).
"""

from repro.rl.a2c import A2C
from repro.rl.dqn import DQN, DQNReport
from repro.rl.base import RLTrainer, TimeBreakdown, TrainReport
from repro.rl.buffers import RolloutBuffer, compute_gae
from repro.rl.nn import MLP, Adam, mlp_op_counts
from repro.rl.policies import (
    LARGE_HIDDEN,
    SMALL_HIDDEN,
    ActorCriticPolicy,
    CategoricalPolicy,
    GaussianPolicy,
    make_policy,
)
from repro.rl.ppo import PPO
from repro.rl.replay import ReplayBuffer as ExperienceReplayBuffer
from repro.rl.profiling import (
    AlgorithmOverhead,
    ea_overhead,
    genome_memory_bytes,
    mlp_complexity,
    neat_overhead,
    rl_overhead,
)

__all__ = [
    "A2C",
    "Adam",
    "ActorCriticPolicy",
    "AlgorithmOverhead",
    "CategoricalPolicy",
    "DQN",
    "DQNReport",
    "ExperienceReplayBuffer",
    "GaussianPolicy",
    "LARGE_HIDDEN",
    "MLP",
    "PPO",
    "RLTrainer",
    "RolloutBuffer",
    "SMALL_HIDDEN",
    "TimeBreakdown",
    "TrainReport",
    "compute_gae",
    "ea_overhead",
    "genome_memory_bytes",
    "make_policy",
    "mlp_complexity",
    "mlp_op_counts",
    "neat_overhead",
    "rl_overhead",
]
