"""Operation and memory accounting for the algorithm comparison.

Regenerates the quantities behind Table IV ("analysis of overhead in
algorithms": forward ops, backward ops, local memory for RL vs EA vs
NEAT) and the RL rows of Table V (network complexity).  The NEAT rows of
Table V come from :mod:`repro.analysis.complexity`, which averages over
evolved populations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.rl.nn import mlp_op_counts
from repro.rl.policies import ActorCriticPolicy

__all__ = [
    "AlgorithmOverhead",
    "rl_overhead",
    "ea_overhead",
    "neat_overhead",
    "mlp_complexity",
]

#: Compact on-device encodings used for the memory estimate (bytes).
#: A connection gene packs (in id, out id, weight, flags+innovation);
#: a node gene packs (id, bias, activation selector).
CONNECTION_GENE_BYTES = 12
NODE_GENE_BYTES = 8
FLOAT_BYTES = 4


@dataclass(frozen=True)
class AlgorithmOverhead:
    """One Table IV column."""

    algorithm: str
    ops_forward: int
    ops_backward: int
    memory_bytes: int

    def as_row(self) -> dict[str, str]:
        """Formatted the way the paper prints Table IV."""
        return {
            "algorithm": self.algorithm,
            "Op. Forward": _fmt_count(self.ops_forward),
            "Op. Backward": _fmt_count(self.ops_backward),
            "Local Memory": _fmt_count(self.memory_bytes) + " (B)",
        }


def _fmt_count(n: float) -> str:
    if n >= 1000:
        return f"{n / 1000:.1f}K"
    return f"{n:.1f}"


def mlp_complexity(obs_dim: int, hidden: tuple[int, ...], act_dim: int):
    """(nodes, connections) of an MLP policy network — Table V RL rows."""
    sizes = [obs_dim, *hidden, act_dim]
    nodes = sum(sizes)
    connections = sum(a * b for a, b in zip(sizes, sizes[1:]))
    return nodes, connections


def rl_overhead(policy: ActorCriticPolicy, buffer_bytes: int = 0) -> AlgorithmOverhead:
    """Per-environment-step overhead of a gradient-based RL baseline.

    Forward: actor + critic inference.  Backward: backprop through both
    (~2x forward, per :func:`repro.rl.nn.mlp_op_counts`).  Memory:
    parameters + Adam moments (2x) + gradient workspace + the rollout
    buffer (the paper's "large replay buffer" point).
    """
    actor_ops = mlp_op_counts(policy.actor.sizes)
    critic_ops = mlp_op_counts(policy.critic.sizes)
    params = policy.num_parameters
    memory = (
        params * FLOAT_BYTES * 4  # params + 2 Adam moments + grads
        + buffer_bytes
    )
    return AlgorithmOverhead(
        algorithm="RL",
        ops_forward=actor_ops["forward"] + critic_ops["forward"],
        ops_backward=actor_ops["backward"] + critic_ops["backward"],
        memory_bytes=memory,
    )


def ea_overhead(
    obs_dim: int, hidden: tuple[int, ...], act_dim: int
) -> AlgorithmOverhead:
    """Per-step overhead of a fixed-topology ES/GA (OpenAI-ES style).

    Same forward cost as the RL policy network, no backprop; memory is
    the parameter vector plus one perturbation vector (the mirrored
    noise trick keeps ES memory at ~2x params, Table IV's "132K (B)"
    column shape).
    """
    sizes = [obs_dim, *hidden, act_dim]
    ops = mlp_op_counts(sizes)
    return AlgorithmOverhead(
        algorithm="EA",
        ops_forward=ops["forward"],
        ops_backward=0,
        memory_bytes=ops["parameters"] * FLOAT_BYTES * 2,
    )


def genome_memory_bytes(genome: Genome) -> int:
    """Compact encoded size of one genome (weight-channel payload)."""
    return (
        len(genome.connections) * CONNECTION_GENE_BYTES
        + len(genome.nodes) * NODE_GENE_BYTES
    )


def neat_overhead(
    genomes: list[Genome], config: NEATConfig
) -> AlgorithmOverhead:
    """Per-step overhead of NEAT, averaged over a population.

    Forward ops: MACs + bias adds of the decoded network.  No backward
    pass.  Memory: the compact genome encoding — the entire "model
    state" NEAT keeps per individual (Table IV's 0.4K (B))."""
    from repro.neat.network import FeedForwardNetwork

    if not genomes:
        raise ValueError("need at least one genome")
    fwd = 0
    mem = 0
    for genome in genomes:
        net = FeedForwardNetwork.create(genome, config)
        fwd += net.num_macs + net.num_evaluated_nodes  # MACs + bias adds
        mem += genome_memory_bytes(genome)
    n = len(genomes)
    return AlgorithmOverhead(
        algorithm="NEAT",
        ops_forward=fwd // n,
        ops_backward=0,
        memory_bytes=mem // n,
    )
