"""Actor-critic policies for the RL baselines (§III-A).

Two policy families, matching the environments' action spaces:

* :class:`CategoricalPolicy` — softmax over discrete actions;
* :class:`GaussianPolicy` — diagonal Gaussian with state-independent
  log-std, the stable-baselines convention for continuous control.

Each wraps an actor MLP and a critic MLP (paper configs: *Small* = two
hidden layers of 64, *Large* = three hidden layers of 256) and exposes
the analytic log-prob/entropy gradients the A2C and PPO updates need.
"""

from __future__ import annotations

import numpy as np

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete
from repro.rl.nn import MLP

__all__ = [
    "SMALL_HIDDEN",
    "LARGE_HIDDEN",
    "ActorCriticPolicy",
    "CategoricalPolicy",
    "GaussianPolicy",
    "make_policy",
]

#: Paper §III-A: "Small with two layers of MLPs with 64 nodes each".
SMALL_HIDDEN: tuple[int, ...] = (64, 64)
#: Paper §III-A: "Large with three layers of 256 nodes each".
LARGE_HIDDEN: tuple[int, ...] = (256, 256, 256)


class ActorCriticPolicy:
    """Shared base: actor + critic MLPs and value-head plumbing."""

    def __init__(
        self,
        obs_dim: int,
        action_dim: int,
        hidden: tuple[int, ...] = SMALL_HIDDEN,
        rng: np.random.Generator | None = None,
    ):
        # a bare construction must still be reproducible: fall back to a
        # fixed seed, never the OS entropy pool
        rng = rng if rng is not None else np.random.default_rng(0)
        self.obs_dim = obs_dim
        self.action_dim = action_dim
        self.hidden = tuple(hidden)
        self.actor = MLP([obs_dim, *hidden, action_dim], rng=rng)
        self.critic = MLP([obs_dim, *hidden, 1], rng=rng)
        self.rng = rng

    # ------------------------------------------------------------- value
    def value(self, obs: np.ndarray) -> np.ndarray:
        """State value(s) for a batch (or single) observation."""
        return self.critic.predict(obs).reshape(-1)

    @property
    def parameters(self) -> list[np.ndarray]:
        return self.actor.parameters + self.critic.parameters + self._extra_params()

    def _extra_params(self) -> list[np.ndarray]:
        return []

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters)

    # -------------------------------------------------- policy interface
    def sample(self, obs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(actions, log-probs) for a batch of observations."""
        raise NotImplementedError

    def log_prob_entropy(
        self, obs_batch: np.ndarray, actions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, list[np.ndarray], np.ndarray]:
        """Forward the actor on a batch.

        Returns (log_probs, entropies, actor cache, actor raw output);
        the cache feeds :meth:`actor_backward` after the caller computes
        d(loss)/d(log_prob) and the entropy coefficient.
        """
        raise NotImplementedError

    def grad_wrt_actor_output(
        self,
        actor_out: np.ndarray,
        actions: np.ndarray,
        dlogp: np.ndarray,
        entropy_coef_grad: float,
    ) -> np.ndarray:
        """Gradient of the scalar loss w.r.t. the actor's raw output.

        ``dlogp[i]`` is dLoss/dlogp_i; ``entropy_coef_grad`` is
        dLoss/dH scaled per sample (normally ``-ent_coef / batch``).
        """
        raise NotImplementedError

    # --------------------------------------------------- greedy rollout
    def greedy_policy(self):
        """Deterministic policy function (for fitness evaluation)."""
        raise NotImplementedError


class CategoricalPolicy(ActorCriticPolicy):
    """Softmax policy over ``Discrete(n)`` actions."""

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        z = logits - logits.max(axis=-1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=-1, keepdims=True)

    def sample(self, obs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        logits = self.actor.predict(obs)
        probs = self._softmax(logits)
        cum = probs.cumsum(axis=-1)
        draws = self.rng.random(size=(probs.shape[0], 1))
        actions = (draws > cum).sum(axis=-1)
        logp = np.log(
            probs[np.arange(len(actions)), actions] + 1e-12
        )
        return actions.astype(np.int64), logp

    def log_prob_entropy(self, obs_batch, actions):
        logits, cache = self.actor.forward(obs_batch)
        probs = self._softmax(logits)
        idx = np.arange(len(actions))
        logp = np.log(probs[idx, actions.astype(np.int64)] + 1e-12)
        entropy = -(probs * np.log(probs + 1e-12)).sum(axis=-1)
        return logp, entropy, cache, logits

    def grad_wrt_actor_output(self, actor_out, actions, dlogp, entropy_coef_grad):
        probs = self._softmax(actor_out)
        n, k = probs.shape
        onehot = np.zeros((n, k))
        onehot[np.arange(n), actions.astype(np.int64)] = 1.0
        # d logp(a)/d logits = onehot - probs
        grad = dlogp[:, None] * (onehot - probs)
        # exact-zero test is deliberate: ent_coef=0 disables the entropy
        # term entirely, and only a true 0.0 may skip the computation
        if entropy_coef_grad != 0.0:  # repro: noqa[NUM001]
            logp_all = np.log(probs + 1e-12)
            entropy = -(probs * logp_all).sum(axis=-1, keepdims=True)
            # dH/d logits_j = -p_j (log p_j + H)
            grad += entropy_coef_grad * (-probs * (logp_all + entropy))
        return grad

    def greedy_policy(self):
        def policy(obs: np.ndarray) -> np.ndarray:
            return self.actor.predict(obs).reshape(-1)

        return policy


class GaussianPolicy(ActorCriticPolicy):
    """Diagonal Gaussian policy with state-independent log-std."""

    def __init__(self, obs_dim, action_dim, hidden=SMALL_HIDDEN, rng=None):
        super().__init__(obs_dim, action_dim, hidden, rng)
        self.log_std = np.full(action_dim, -0.5)
        self._log_std_grad = np.zeros(action_dim)

    def _extra_params(self) -> list[np.ndarray]:
        return [self.log_std]

    def sample(self, obs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        mean = self.actor.predict(obs)
        std = np.exp(self.log_std)
        noise = self.rng.standard_normal(mean.shape)
        actions = mean + std * noise
        logp = self._log_prob(mean, actions)
        return actions, logp

    def _log_prob(self, mean: np.ndarray, actions: np.ndarray) -> np.ndarray:
        std = np.exp(self.log_std)
        z = (actions - mean) / std
        return (
            -0.5 * (z**2).sum(axis=-1)
            - self.log_std.sum()
            - 0.5 * mean.shape[-1] * np.log(2 * np.pi)
        )

    def log_prob_entropy(self, obs_batch, actions):
        mean, cache = self.actor.forward(obs_batch)
        logp = self._log_prob(mean, actions)
        entropy = np.full(
            mean.shape[0],
            float(
                self.log_std.sum() + 0.5 * self.action_dim * np.log(2 * np.pi * np.e)
            ),
        )
        return logp, entropy, cache, mean

    def grad_wrt_actor_output(self, actor_out, actions, dlogp, entropy_coef_grad):
        std2 = np.exp(2 * self.log_std)
        diff = actions - actor_out
        # d logp / d mean = (a - mu) / sigma^2
        grad = dlogp[:, None] * (diff / std2)
        # side effect: accumulate the log_std gradient for the optimizer
        # d logp / d log_std = z^2 - 1 ;  dH / d log_std = 1
        z2 = diff**2 / std2
        self._log_std_grad = (dlogp[:, None] * (z2 - 1.0)).sum(axis=0)
        self._log_std_grad += entropy_coef_grad * actor_out.shape[0] * np.ones(
            self.action_dim
        )
        return grad

    def consume_log_std_grad(self) -> np.ndarray:
        grad = self._log_std_grad
        self._log_std_grad = np.zeros(self.action_dim)
        return grad

    def greedy_policy(self):
        def policy(obs: np.ndarray) -> np.ndarray:
            # raw mean; rollout.decode_action applies the tanh squash
            return self.actor.predict(obs).reshape(-1)

        return policy


def make_policy(
    env: Environment,
    hidden: tuple[int, ...] = SMALL_HIDDEN,
    rng: np.random.Generator | None = None,
) -> ActorCriticPolicy:
    """Build the policy family matching ``env``'s action space."""
    obs_dim = env.num_inputs
    if isinstance(env.action_space, Discrete):
        return CategoricalPolicy(obs_dim, env.action_space.n, hidden, rng)
    if isinstance(env.action_space, Box):
        return GaussianPolicy(obs_dim, env.action_space.flat_dim, hidden, rng)
    raise TypeError(f"unsupported action space {env.action_space!r}")
