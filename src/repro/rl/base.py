"""Shared training loop for the RL baselines.

The loop structure mirrors stable-baselines: collect a fixed-horizon
rollout (the *Forward*/predict part of Fig 3), then run the algorithm's
update (*Training*: backprop + rule updates).  Both phases are timed
separately, which is exactly the instrumentation behind Fig 3's pies and
the §III observation that Training takes ~60% of RL runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.envs.base import Environment
from repro.envs.rollout import evaluate_policy
from repro.envs.spaces import Box
from repro.rl.buffers import RolloutBuffer
from repro.rl.policies import ActorCriticPolicy, GaussianPolicy

__all__ = ["RLTrainer", "TrainReport", "TimeBreakdown"]


@dataclass
class TimeBreakdown:
    """Seconds spent per phase (Fig 3 instrumentation)."""

    forward: float = 0.0
    env: float = 0.0
    training: float = 0.0

    @property
    def total(self) -> float:
        return self.forward + self.env + self.training

    def fractions(self) -> dict[str, float]:
        total = self.total or 1.0
        return {
            "forward": self.forward / total,
            "env": self.env / total,
            "training": self.training / total,
        }


@dataclass
class TrainReport:
    """Outcome of a training run."""

    timesteps: int
    updates: int
    solved: bool
    best_fitness: float
    #: (wall-clock seconds, greedy fitness) pairs — the Fig 2 trace.
    fitness_trace: list[tuple[float, float]] = field(default_factory=list)
    times: TimeBreakdown = field(default_factory=TimeBreakdown)


class RLTrainer:
    """Base on-policy trainer; subclasses implement :meth:`update`."""

    #: rollout horizon per update
    n_steps: int = 8

    def __init__(
        self,
        env: Environment,
        policy: ActorCriticPolicy,
        gamma: float = 0.99,
        gae_lambda: float = 0.95,
        vf_coef: float = 0.5,
        ent_coef: float = 0.01,
        seed: int | None = None,
    ):
        self.env = env
        self.policy = policy
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self.vf_coef = vf_coef
        self.ent_coef = ent_coef
        self.rng = np.random.default_rng(seed)
        self.times = TimeBreakdown()
        action_shape = (
            (policy.action_dim,)
            if isinstance(policy, GaussianPolicy)
            else ()
        )
        self.buffer = RolloutBuffer(
            obs_dim=env.num_inputs,
            action_shape=action_shape,
            capacity=self.n_steps,
        )
        self._obs = self.env.reset(seed=seed)

    # ------------------------------------------------------------ update
    def update(self) -> dict[str, float]:
        """One algorithm-specific parameter update over the buffer."""
        raise NotImplementedError

    # ------------------------------------------------------------- learn
    def learn(
        self,
        total_timesteps: int,
        fitness_threshold: float | None = None,
        eval_every_updates: int = 20,
        eval_episodes: int = 3,
        time_limit: float | None = None,
    ) -> TrainReport:
        """Train until the timestep budget, threshold, or time limit."""
        threshold = (
            fitness_threshold
            if fitness_threshold is not None
            else self.env.reward_threshold
        )
        trace: list[tuple[float, float]] = []
        best = float("-inf")
        solved = False
        steps_done = 0
        updates = 0
        start = time.perf_counter()

        while steps_done < total_timesteps:
            steps_done += self._collect_rollout()
            t0 = time.perf_counter()
            self.update()
            self.times.training += time.perf_counter() - t0
            updates += 1

            elapsed = time.perf_counter() - start
            if updates % eval_every_updates == 0:
                fitness = self._evaluate(eval_episodes)
                trace.append((elapsed, fitness))
                best = max(best, fitness)
                if threshold is not None and fitness >= threshold:
                    solved = True
                    break
            if time_limit is not None and elapsed > time_limit:
                break

        if not trace:
            fitness = self._evaluate(eval_episodes)
            trace.append((time.perf_counter() - start, fitness))
            best = max(best, fitness)
            solved = solved or (threshold is not None and fitness >= threshold)
        return TrainReport(
            timesteps=steps_done,
            updates=updates,
            solved=solved,
            best_fitness=best,
            fitness_trace=trace,
            times=self.times,
        )

    # ----------------------------------------------------------- rollout
    def _collect_rollout(self) -> int:
        self.buffer.reset()
        policy = self.policy
        while not self.buffer.full:
            t0 = time.perf_counter()
            obs_row = self._obs[None, :]
            action, logp = policy.sample(obs_row)
            value = policy.value(obs_row)
            self.times.forward += time.perf_counter() - t0

            env_action = self._to_env_action(action[0])
            t0 = time.perf_counter()
            obs, reward, done, _ = self.env.step(env_action)
            self.times.env += time.perf_counter() - t0

            self.buffer.add(
                self._obs, action[0], reward, done, float(value[0]), float(logp[0])
            )
            self._obs = self.env.reset() if done else obs

        t0 = time.perf_counter()
        last_value = float(self.policy.value(self._obs[None, :])[0])
        self.times.forward += time.perf_counter() - t0
        self.buffer.finalize(
            last_value, gamma=self.gamma, lam=self.gae_lambda
        )
        return len(self.buffer)

    def _to_env_action(self, action: np.ndarray):
        space = self.env.action_space
        if isinstance(space, Box):
            return space.clip(np.asarray(action).reshape(space.shape))
        return int(action)

    def _evaluate(self, episodes: int) -> float:
        if isinstance(self.policy, GaussianPolicy):
            # greedy mean, squashed by decode_action's tanh; wrap so the
            # evaluation path matches NEAT's for a fair Fig 2 comparison
            actor = self.policy.actor

            def raw_policy(obs: np.ndarray) -> np.ndarray:
                # decode_action tanh-squashes; pre-invert by passing the
                # raw mean (bounded envs clip anyway)
                return actor.predict(obs[None, :]).reshape(-1)

        else:
            raw_policy = self.policy.greedy_policy()
        eval_env = type(self.env)(seed=12345)
        return evaluate_policy(eval_env, raw_policy, episodes=episodes)

    # ------------------------------------------------- gradient plumbing
    def _actor_critic_grads(
        self,
        obs: np.ndarray,
        actions: np.ndarray,
        dlogp: np.ndarray,
        returns: np.ndarray,
        entropy_grad_per_sample: float,
    ) -> list[np.ndarray]:
        """Backprop policy + value losses; returns grads aligned with
        ``policy.parameters``."""
        policy = self.policy
        _, _, cache, actor_out = policy.log_prob_entropy(obs, actions)
        grad_actor_out = policy.grad_wrt_actor_output(
            actor_out, actions, dlogp, entropy_grad_per_sample
        )
        actor_grads, _ = policy.actor.backward(cache, grad_actor_out)

        values, vcache = policy.critic.forward(obs)
        values = values.reshape(-1)
        n = len(returns)
        dvalue = (self.vf_coef * (values - returns) / n)[:, None]
        critic_grads, _ = policy.critic.backward(vcache, dvalue)

        grads = actor_grads + critic_grads
        if isinstance(policy, GaussianPolicy):
            grads = grads + [policy.consume_log_std_grad()]
        return grads
