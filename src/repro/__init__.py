"""repro — a reproduction of *E3: A HW/SW Co-design Neuroevolution
Platform for Autonomous Learning in Edge Device* (ISPASS 2021).

Packages
--------
``repro.core``
    The E3 platform: the evaluate/evolve loop with pluggable backends,
    plus the three-platform (CPU / GPU / INAX) experiment driver.
``repro.neat``
    NEAT from scratch: genomes, innovation tracking, mutation,
    crossover, speciation, and the CreateNet decoder.
``repro.envs``
    The OpenAI-suite environments, reimplemented in NumPy.
``repro.rl``
    The A2C / PPO2 profiling baselines on a NumPy autodiff substrate.
``repro.inax``
    The INAX irregular-network accelerator as a cycle-level simulator,
    with the systolic-array baseline and the §V parallelism heuristics.
``repro.hw``
    Platform cost models (runtime, energy, FPGA resources) and their
    calibration constants.
``repro.analysis``
    Topology statistics and timing-profile helpers behind Fig 1-4.

Quickstart
----------
>>> from repro.core import E3
>>> result = E3("cartpole", backend="inax", seed=0).run(max_generations=10)
>>> result.solved, result.best_fitness  # doctest: +SKIP
(True, 500.0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
