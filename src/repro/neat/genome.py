"""The NEAT genome: a sequence of node and connection genes (Table II).

A genome describes one complete irregular feed-forward network.  This
module owns structural and parametric mutation ("Mutate" in Table III)
and the compatibility distance speciation uses.  Crossover lives in
:mod:`repro.neat.crossover`; decoding to an executable network
("CreateNet") lives in :mod:`repro.neat.network`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.innovation import InnovationTracker

__all__ = ["Genome", "creates_cycle"]


def creates_cycle(
    connections: Iterable[tuple[int, int]], candidate: tuple[int, int]
) -> bool:
    """Would adding ``candidate`` to ``connections`` create a cycle?

    The networks E3 evolves are feed-forward ("Evolution generates
    irregular feed-forward MLP NNs", §IV-E), so every add-connection
    mutation must be rejected if it closes a loop.  Checks reachability
    of the candidate's source from its destination.
    """
    src, dst = candidate
    if src == dst:
        return True
    adjacency: dict[int, list[int]] = {}
    for a, b in connections:
        adjacency.setdefault(a, []).append(b)
    visited = {dst}
    frontier = [dst]
    while frontier:
        node = frontier.pop()
        for nxt in adjacency.get(node, ()):
            if nxt == src:
                return True
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return False


@dataclass
class Genome:
    """One individual: genes describing a complete irregular NN."""

    key: int
    nodes: dict[int, NodeGene] = field(default_factory=dict)
    connections: dict[tuple[int, int], ConnectionGene] = field(default_factory=dict)
    fitness: float | None = None

    # ------------------------------------------------------ construction
    @classmethod
    def initial(
        cls,
        key: int,
        config: NEATConfig,
        tracker: InnovationTracker,
        rng: np.random.Generator,
    ) -> "Genome":
        """A generation-0 genome: inputs wired (fully or partially)
        straight to outputs, no hidden nodes (paper §VI-C: "start with
        no hidden nodes")."""
        genome = cls(key=key)
        for out_key in config.output_keys:
            genome.nodes[out_key] = NodeGene.random(out_key, config, rng)
        for in_key in config.input_keys:
            for out_key in config.output_keys:
                if (
                    config.initial_connection_fraction >= 1.0
                    or rng.random() < config.initial_connection_fraction
                ):
                    conn_key = (in_key, out_key)
                    genome.connections[conn_key] = ConnectionGene.random(
                        conn_key,
                        tracker.connection_innovation(conn_key),
                        config,
                        rng,
                    )
        return genome

    def copy(self, new_key: int | None = None) -> "Genome":
        clone = Genome(key=self.key if new_key is None else new_key)
        clone.nodes = {k: g.copy() for k, g in self.nodes.items()}
        clone.connections = {k: g.copy() for k, g in self.connections.items()}
        clone.fitness = self.fitness
        return clone

    # ------------------------------------------------------------- sizes
    def num_nodes(self, config: NEATConfig) -> int:
        """Total node count including input nodes (Table V convention)."""
        return config.num_inputs + len(self.nodes)

    def num_hidden(self, config: NEATConfig) -> int:
        """Hidden-node count (hidden keys start at ``num_outputs``)."""
        return sum(1 for k in self.nodes if k >= config.num_outputs)

    @property
    def num_connections(self) -> int:
        return len(self.connections)

    @property
    def num_enabled_connections(self) -> int:
        return sum(1 for c in self.connections.values() if c.enabled)

    def size(self, config: NEATConfig) -> tuple[int, int]:
        """(nodes, enabled connections) — the Table V complexity pair."""
        return self.num_nodes(config), self.num_enabled_connections

    # ------------------------------------------------------------ hashing
    def structural_hash(self) -> str:
        """SHA-256 digest of everything that shapes the decoded network.

        Covers every node's (key, bias, activation, aggregation) and
        every connection's (endpoints, weight, enabled) — the full input
        of ``CreateNet`` — but **not** ``key``, ``fitness`` or innovation
        numbers, so an elite copied unchanged across generations hashes
        identically.  Decoded-network caches (the ``cpu-fast`` backend's
        LRU) key on this: equal hashes ⇒ bit-identical decoded networks
        under one config.  Floats hash by exact bit pattern
        (``float.hex``), matching the bit-for-bit evaluation guarantees.
        """
        hasher = hashlib.sha256()
        for key in sorted(self.nodes):
            node = self.nodes[key]
            hasher.update(
                f"n|{key}|{float(node.bias).hex()}|{node.activation}"
                f"|{node.aggregation}\n".encode()
            )
        for key in sorted(self.connections):
            conn = self.connections[key]
            hasher.update(
                f"c|{conn.in_node}|{conn.out_node}|{float(conn.weight).hex()}"
                f"|{int(conn.enabled)}\n".encode()
            )
        return hasher.hexdigest()

    def shape_key(self) -> str:
        """SHA-256 digest of the genome's *topology signature* — the
        weights-excluded companion of :meth:`structural_hash`.

        Covers every node's (key, activation, aggregation) and every
        **enabled** connection's endpoints, but *not* biases, weights,
        or disabled connections.  Those are exactly the inputs that
        determine the decoded network's *structure* under one config:
        ``required_nodes`` pruning walks enabled endpoints, ASAP
        layering depends only on the dependency graph, and each node's
        ingress order (``sorted`` by unique source key) is
        weight-independent.  Hence the contract the structural-batching
        compiler (:mod:`repro.compile`) relies on:

        * equal ``structural_hash()`` ⇒ equal ``shape_key()``;
        * equal ``shape_key()`` ⇒ identical decoded layering, ingress
          slots, activation grouping, and vectorizability — the two
          genomes differ at most in weight/bias *values*, so they can
          share one compiled execution plan with per-member parameter
          tensors.

        Weight-only mutation (by far the most common NEAT mutation)
        preserves the shape key, which is why a shape-keyed compile
        cache keeps hitting where the structural-hash decode cache
        misses.
        """
        nodes = self.nodes
        connections = self.connections
        signature = "".join(
            [
                f"n|{key}|{nodes[key].activation}|{nodes[key].aggregation}\n"
                for key in sorted(nodes)
            ]
            + [
                f"c|{key[0]}|{key[1]}\n"
                for key in sorted(connections)
                if connections[key].enabled
            ]
        )
        return hashlib.sha256(signature.encode()).hexdigest()

    # ---------------------------------------------------------- mutation
    def mutate(
        self,
        config: NEATConfig,
        tracker: InnovationTracker,
        rng: np.random.Generator,
    ) -> None:
        """Apply structural then parametric mutation in place."""
        if rng.random() < config.node_add_rate:
            self.mutate_add_node(config, tracker, rng)
        if rng.random() < config.node_delete_rate:
            self.mutate_delete_node(config, rng)
        if rng.random() < config.conn_add_rate:
            self.mutate_add_connection(config, tracker, rng)
        if rng.random() < config.conn_delete_rate:
            self.mutate_delete_connection(rng)
        for node in self.nodes.values():
            node.mutate(config, rng)
        for conn in self.connections.values():
            conn.mutate(config, rng)
            if not conn.enabled and rng.random() < config.enable_mutate_rate:
                conn.enabled = True

    def mutate_add_connection(
        self,
        config: NEATConfig,
        tracker: InnovationTracker,
        rng: np.random.Generator,
    ) -> bool:
        """Add one new connection; returns True if a connection was added.

        Sources may be inputs, hidden, or output nodes; destinations may
        be hidden or output nodes.  Cycles are rejected so the network
        stays feed-forward, which is what makes the "irregular links
        across layers" of Fig 4(a)(c) — but never recurrence.
        """
        sources = list(config.input_keys) + list(self.nodes)
        destinations = list(self.nodes)
        rng.shuffle(sources)
        rng.shuffle(destinations)
        existing = set(self.connections)
        for src in sources:
            for dst in destinations:
                key = (src, dst)
                if src == dst or key in existing:
                    continue
                if creates_cycle(existing, key):
                    continue
                self.connections[key] = ConnectionGene.random(
                    key, tracker.connection_innovation(key), config, rng
                )
                return True
        return False

    def mutate_delete_connection(self, rng: np.random.Generator) -> bool:
        """Remove a random connection; returns True if one was removed."""
        if not self.connections:
            return False
        keys = sorted(self.connections)
        key = keys[int(rng.integers(len(keys)))]
        del self.connections[key]
        return True

    def mutate_add_node(
        self,
        config: NEATConfig,
        tracker: InnovationTracker,
        rng: np.random.Generator,
    ) -> bool:
        """Split an enabled connection with a new hidden node.

        The classic NEAT split: the old connection is disabled, the
        in-half gets weight 1.0, the out-half inherits the old weight, so
        the network's function is (nearly) preserved at the moment of the
        structural change.
        """
        enabled = [c for c in self.connections.values() if c.enabled]
        if not enabled:
            return False
        enabled.sort(key=lambda c: c.key)
        conn = enabled[int(rng.integers(len(enabled)))]
        new_key = tracker.node_for_split(conn.key)
        if new_key in self.nodes:
            # this genome already split this connection this generation
            return False
        conn.enabled = False
        self.nodes[new_key] = NodeGene.random(new_key, config, rng)
        first = (conn.in_node, new_key)
        second = (new_key, conn.out_node)
        self.connections[first] = ConnectionGene(
            first, 1.0, True, tracker.connection_innovation(first)
        )
        self.connections[second] = ConnectionGene(
            second, conn.weight, True, tracker.connection_innovation(second)
        )
        return True

    def mutate_delete_node(
        self, config: NEATConfig, rng: np.random.Generator
    ) -> bool:
        """Remove a random hidden node and its incident connections."""
        output_keys = set(config.output_keys)
        hidden = sorted(k for k in self.nodes if k not in output_keys)
        if not hidden:
            return False
        victim = hidden[int(rng.integers(len(hidden)))]
        del self.nodes[victim]
        for key in [k for k in self.connections if victim in k]:
            del self.connections[key]
        return True

    # ---------------------------------------------------------- distance
    def distance(self, other: "Genome", config: NEATConfig) -> float:
        """NEAT compatibility distance.

        ``c1*E/N + c2*D/N + c3*W`` with excess/disjoint split by
        innovation number and W the mean attribute distance of matching
        genes (connections and nodes).
        """
        conn_term = self._connection_distance(other, config)
        node_term = self._node_distance(other, config)
        return conn_term + node_term

    def _connection_distance(self, other: "Genome", config: NEATConfig) -> float:
        mine = {c.innovation: c for c in self.connections.values()}
        theirs = {c.innovation: c for c in other.connections.values()}
        if not mine and not theirs:
            return 0.0
        max_mine = max(mine, default=-1)
        max_theirs = max(theirs, default=-1)
        boundary = min(max_mine, max_theirs)
        matching, weight_diff = 0, 0.0
        disjoint, excess = 0, 0
        for innovation in mine.keys() | theirs.keys():
            a, b = mine.get(innovation), theirs.get(innovation)
            if a is not None and b is not None:
                matching += 1
                weight_diff += a.distance(b)
            elif innovation <= boundary:
                disjoint += 1
            else:
                excess += 1
        n = max(len(mine), len(theirs), 1)
        dist = (
            config.excess_coefficient * excess / n
            + config.disjoint_coefficient * disjoint / n
        )
        if matching:
            dist += config.weight_coefficient * weight_diff / matching
        return dist

    def _node_distance(self, other: "Genome", config: NEATConfig) -> float:
        if not self.nodes and not other.nodes:
            return 0.0
        matching, attr_diff = 0, 0.0
        disjoint = 0
        for key in self.nodes.keys() | other.nodes.keys():
            a, b = self.nodes.get(key), other.nodes.get(key)
            if a is not None and b is not None:
                matching += 1
                attr_diff += a.distance(b)
            else:
                disjoint += 1
        n = max(len(self.nodes), len(other.nodes), 1)
        dist = config.disjoint_coefficient * disjoint / n
        if matching:
            dist += config.weight_coefficient * attr_diff / matching
        return dist

    # ------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the genome.

        Genes are emitted in the genome's live insertion order, NOT
        sorted: crossover and mutation iterate the gene dicts in that
        order while consuming the population RNG, so a checkpoint that
        re-sorted genes would silently change every post-resume RNG
        draw and fork the resumed trajectory away from the continuous
        one.  ``from_dict`` preserves file order, making
        live -> dict -> live an exact round trip.
        """
        return {
            "key": self.key,
            "fitness": self.fitness,
            "nodes": [
                {
                    "key": n.key,
                    "bias": n.bias,
                    "activation": n.activation,
                    "aggregation": n.aggregation,
                }
                for n in self.nodes.values()
            ],
            "connections": [
                {
                    "in": c.in_node,
                    "out": c.out_node,
                    "weight": c.weight,
                    "enabled": c.enabled,
                    "innovation": c.innovation,
                }
                for c in self.connections.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Genome":
        genome = cls(key=data["key"], fitness=data.get("fitness"))
        for n in data["nodes"]:
            genome.nodes[n["key"]] = NodeGene(
                n["key"], n["bias"], n["activation"], n["aggregation"]
            )
        for c in data["connections"]:
            key = (c["in"], c["out"])
            genome.connections[key] = ConnectionGene(
                key, c["weight"], c["enabled"], c["innovation"]
            )
        return genome

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Genome(key={self.key}, nodes={len(self.nodes)}, "
            f"connections={len(self.connections)}, fitness={self.fitness})"
        )
