"""CreateNet: decode a genome into an executable feed-forward network.

Table III: "Decode the genes to nodes and connections, solve the
dependency among nodes, and formulate them into NN topology."

The decoder

1. prunes genes that cannot influence any output (dead branches evolve
   constantly and evaluating them would waste both CPU and PE cycles);
2. solves dependencies by assigning every node its ASAP *layer* — inputs
   at layer 0, every other node one past its deepest ingress source;
3. produces per-node evaluation plans (bias, activation, aggregation,
   weighted ingress list).

The same layering drives both the software forward pass
(:meth:`FeedForwardNetwork.activate`) and the INAX compiler
(:mod:`repro.inax.compiler`), which is what lets the tests require the
simulated accelerator to agree with software bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neat.activations import activations, aggregations
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome

__all__ = ["FeedForwardNetwork", "NodeEval", "required_nodes"]


def required_nodes(genome: Genome, config: NEATConfig) -> set[int]:
    """Nodes that can influence an output (outputs always included).

    Computed as backward reachability from the output set over enabled
    connections.  Input keys are never included (they carry no genes).
    """
    reverse: dict[int, list[int]] = {}
    for conn in genome.connections.values():
        if conn.enabled:
            reverse.setdefault(conn.out_node, []).append(conn.in_node)
    required = set(config.output_keys)
    frontier = list(config.output_keys)
    while frontier:
        node = frontier.pop()
        for src in reverse.get(node, ()):
            if src >= 0 and src not in required:
                required.add(src)
                frontier.append(src)
    return required


@dataclass(frozen=True)
class NodeEval:
    """Evaluation plan for one node."""

    key: int
    bias: float
    activation: str
    aggregation: str
    #: (source key, weight) pairs; sources may be inputs or earlier nodes.
    ingress: tuple[tuple[int, float], ...]

    @property
    def fan_in(self) -> int:
        return len(self.ingress)


class FeedForwardNetwork:
    """A decoded irregular feed-forward network.

    Attributes
    ----------
    layers:
        Hidden/output node keys grouped by ASAP depth, in evaluation
        order.  ``layers[0]`` are the nodes depending only on inputs.
    node_evals:
        ``key -> NodeEval`` for every evaluated node.
    """

    def __init__(
        self,
        input_keys: tuple[int, ...],
        output_keys: tuple[int, ...],
        layers: list[list[int]],
        node_evals: dict[int, NodeEval],
    ):
        self.input_keys = input_keys
        self.output_keys = output_keys
        self.layers = layers
        self.node_evals = node_evals
        self._values: dict[int, float] = {}

    # ------------------------------------------------------------ create
    @classmethod
    def create(cls, genome: Genome, config: NEATConfig) -> "FeedForwardNetwork":
        """Decode ``genome`` (the paper's CreateNet)."""
        required = required_nodes(genome, config)
        input_keys = config.input_keys
        input_set = set(input_keys)

        ingress: dict[int, list[tuple[int, float]]] = {k: [] for k in required}
        for conn in genome.connections.values():
            if not conn.enabled or conn.out_node not in required:
                continue
            if conn.in_node in input_set or conn.in_node in required:
                ingress[conn.out_node].append((conn.in_node, conn.weight))

        # --- ASAP layering over the acyclic dependency graph ---
        depth: dict[int, int] = {k: 0 for k in input_keys}
        unassigned = set(required)
        while unassigned:
            progressed = False
            for node in sorted(unassigned):
                sources = [src for src, _ in ingress[node]]
                if all(src in depth for src in sources):
                    depth[node] = (
                        1 + max((depth[src] for src in sources), default=0)
                    )
                    unassigned.discard(node)
                    progressed = True
            if not progressed:
                raise ValueError(
                    f"genome {genome.key} is not feed-forward: cycle among "
                    f"nodes {sorted(unassigned)}"
                )

        max_depth = max((depth[k] for k in required), default=0)
        layers: list[list[int]] = [[] for _ in range(max_depth)]
        for node in sorted(required):
            layers[depth[node] - 1].append(node)

        node_evals = {}
        for node in required:
            gene = genome.nodes[node]
            node_evals[node] = NodeEval(
                key=node,
                bias=gene.bias,
                activation=gene.activation,
                aggregation=gene.aggregation,
                ingress=tuple(sorted(ingress[node])),
            )
        return cls(input_keys, config.output_keys, layers, node_evals)

    # ---------------------------------------------------------- activate
    def activate(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass: inputs vector -> outputs vector."""
        x = np.asarray(inputs, dtype=np.float64).reshape(-1)
        if x.shape[0] != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {x.shape[0]}"
            )
        values = self._values
        values.clear()
        for key, value in zip(self.input_keys, x):
            values[key] = float(value)

        for layer in self.layers:
            for node in layer:
                plan = self.node_evals[node]
                weighted = [values[src] * w for src, w in plan.ingress]
                agg = aggregations.get(plan.aggregation)(weighted)
                act = activations.get(plan.activation)
                values[node] = act(agg + plan.bias)

        return np.array(
            [values.get(k, 0.0) for k in self.output_keys], dtype=np.float64
        )

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.activate(inputs)

    # -------------------------------------------------------- statistics
    @property
    def num_evaluated_nodes(self) -> int:
        return len(self.node_evals)

    @property
    def num_macs(self) -> int:
        """Multiply-accumulate count of one forward pass."""
        return sum(plan.fan_in for plan in self.node_evals.values())

    @property
    def layer_sizes(self) -> list[int]:
        """Node count per layer, input layer included (Fig 4(f) stat)."""
        return [len(self.input_keys)] + [len(layer) for layer in self.layers]

    @property
    def max_fan_in(self) -> int:
        return max(
            (plan.fan_in for plan in self.node_evals.values()), default=0
        )

    def dense_counterpart_connections(self) -> int:
        """Connections of the dense MLP counterpart (Fig 4 footnote).

        The counterpart has the same layer sizes with every adjacent pair
        fully connected; the evolved network's density is its enabled
        connection count divided by this (and can exceed 1.0 when many
        links skip layers, as in Fig 4(c))."""
        sizes = self.layer_sizes
        return sum(a * b for a, b in zip(sizes, sizes[1:]))

    def density(self) -> float:
        """(# evolved connections) / (# dense-counterpart connections)."""
        dense = self.dense_counterpart_connections()
        if dense == 0:
            return 0.0
        return self.num_macs / dense
