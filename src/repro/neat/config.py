"""NEAT hyperparameter configuration.

One dataclass holds every knob the algorithm uses.  Defaults follow the
paper's evaluation setup (§VI-C): population 200, mutation and crossover
rates 0.5, networks start with no hidden nodes; the remaining defaults
follow Stanley & Miikkulainen's NEAT paper and the neat-python
implementation the authors profiled [25].
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.neat.activations import activations, aggregations

__all__ = ["NEATConfig"]


@dataclass
class NEATConfig:
    """All NEAT hyperparameters, validated on construction."""

    # ----------------------------------------------------------- topology
    num_inputs: int = 4
    num_outputs: int = 2
    #: Fraction of input->output connections present in generation 0.
    #: 1.0 = fully connected start (the NEAT-paper default).
    initial_connection_fraction: float = 1.0

    # --------------------------------------------------------- population
    population_size: int = 200
    #: Individuals copied unchanged into the next generation, per species.
    elitism: int = 2
    #: Fraction of each species allowed to reproduce.
    survival_threshold: float = 0.3
    #: Generations without species improvement before it is culled.
    max_stagnation: int = 15
    #: Species protected from stagnation (the best N are always kept).
    species_elitism: int = 2

    # ------------------------------------------------------ reproduction
    #: Probability a child comes from crossover (vs. mutation-only clone).
    #: Paper §VI-C: "mutation and crossover rate=0.5".
    crossover_rate: float = 0.5
    #: Probability a crossover's second parent comes from *another*
    #: species (the classic NEAT interspecies-mating rate, 0.001).
    interspecies_crossover_rate: float = 0.001

    # --------------------------------------------------------- mutation
    #: Probability of perturbing each connection weight.
    weight_mutate_rate: float = 0.8
    #: Std-dev of the weight perturbation.
    weight_mutate_power: float = 0.5
    #: Probability a mutated weight is replaced outright instead.
    weight_replace_rate: float = 0.1
    weight_init_stdev: float = 1.0
    weight_min: float = -30.0
    weight_max: float = 30.0

    bias_mutate_rate: float = 0.7
    bias_mutate_power: float = 0.5
    bias_replace_rate: float = 0.1
    bias_init_stdev: float = 1.0
    bias_min: float = -30.0
    bias_max: float = 30.0

    #: Structural mutation probabilities (per child).
    conn_add_rate: float = 0.5
    conn_delete_rate: float = 0.2
    node_add_rate: float = 0.2
    node_delete_rate: float = 0.1
    #: Probability of re-enabling a disabled connection.
    enable_mutate_rate: float = 0.05

    # -------------------------------------------------------- speciation
    compatibility_threshold: float = 3.0
    #: c1/c2/c3 from the NEAT compatibility distance.
    excess_coefficient: float = 1.0
    disjoint_coefficient: float = 1.0
    weight_coefficient: float = 0.5

    # -------------------------------------------------------- activation
    default_activation: str = "tanh"
    #: Pool of activations "mutate activation" can pick from; a single
    #: entry disables activation mutation in practice.
    activation_options: tuple[str, ...] = ("tanh",)
    activation_mutate_rate: float = 0.0
    default_aggregation: str = "sum"
    aggregation_options: tuple[str, ...] = ("sum",)
    aggregation_mutate_rate: float = 0.0

    # ------------------------------------------------------- termination
    #: Stop when the best fitness reaches this value (None = never).
    fitness_threshold: float | None = None
    max_generations: int = 200

    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_inputs < 1:
            raise ValueError("num_inputs must be >= 1")
        if self.num_outputs < 1:
            raise ValueError("num_outputs must be >= 1")
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= self.initial_connection_fraction <= 1.0:
            raise ValueError("initial_connection_fraction must be in [0, 1]")
        if not 0.0 < self.survival_threshold <= 1.0:
            raise ValueError("survival_threshold must be in (0, 1]")
        if self.elitism < 0:
            raise ValueError("elitism must be >= 0")
        if self.weight_min >= self.weight_max:
            raise ValueError("weight_min must be < weight_max")
        if self.bias_min >= self.bias_max:
            raise ValueError("bias_min must be < bias_max")
        for rate_name in (
            "crossover_rate",
            "interspecies_crossover_rate",
            "weight_mutate_rate",
            "weight_replace_rate",
            "bias_mutate_rate",
            "bias_replace_rate",
            "conn_add_rate",
            "conn_delete_rate",
            "node_add_rate",
            "node_delete_rate",
            "enable_mutate_rate",
            "activation_mutate_rate",
            "aggregation_mutate_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.compatibility_threshold <= 0:
            raise ValueError("compatibility_threshold must be > 0")
        if self.default_activation not in activations:
            raise ValueError(
                f"unknown default_activation {self.default_activation!r}"
            )
        for name in self.activation_options:
            if name not in activations:
                raise ValueError(f"unknown activation option {name!r}")
        if self.default_aggregation not in aggregations:
            raise ValueError(
                f"unknown default_aggregation {self.default_aggregation!r}"
            )
        for name in self.aggregation_options:
            if name not in aggregations:
                raise ValueError(f"unknown aggregation option {name!r}")

    # ------------------------------------------------------------ helpers
    def for_env(self, env) -> "NEATConfig":
        """Return a copy sized for an environment's I/O interface."""
        return replace(
            self,
            num_inputs=env.num_inputs,
            num_outputs=env.num_outputs,
            fitness_threshold=env.reward_threshold,
        )

    @property
    def input_keys(self) -> tuple[int, ...]:
        """Input node keys: -1, -2, ..., -num_inputs (neat-python style)."""
        return tuple(-(i + 1) for i in range(self.num_inputs))

    @property
    def output_keys(self) -> tuple[int, ...]:
        """Output node keys: 0, 1, ..., num_outputs - 1."""
        return tuple(range(self.num_outputs))
