"""Global innovation bookkeeping.

NEAT's historical markings: every structural novelty (a new connection
between a particular node pair, or a node splitting a particular
connection) gets a global number the first time it appears anywhere in
the population, and the *same* number when it reappears.  This is what
lets crossover align genes from different lineages.

The tracker also hands out fresh hidden-node keys so two simultaneous
"add node" mutations that split the same connection in the same
generation produce the same node key — the classic NEAT convention.
"""

from __future__ import annotations

__all__ = ["InnovationTracker"]


class InnovationTracker:
    """Assigns stable innovation numbers and hidden-node keys."""

    def __init__(self, num_outputs: int):
        # hidden node keys start after the output keys (0..num_outputs-1)
        self._next_node_key = num_outputs
        self._next_innovation = 0
        self._connection_innovations: dict[tuple[int, int], int] = {}
        self._split_nodes: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------- connections
    def connection_innovation(self, key: tuple[int, int]) -> int:
        """Innovation number for a connection gene ``(in, out)``.

        Re-queries for the same pair return the same number, within and
        across generations.
        """
        if key not in self._connection_innovations:
            self._connection_innovations[key] = self._next_innovation
            self._next_innovation += 1
        return self._connection_innovations[key]

    # ------------------------------------------------------------- nodes
    def node_for_split(self, connection_key: tuple[int, int]) -> int:
        """Hidden-node key created by splitting ``connection_key``.

        The first split of a given connection mints a fresh key; later
        splits of the same connection (by other genomes) reuse it.
        """
        if connection_key not in self._split_nodes:
            self._split_nodes[connection_key] = self._next_node_key
            self._next_node_key += 1
        return self._split_nodes[connection_key]

    def fresh_node_key(self) -> int:
        """Mint a brand-new hidden-node key (used when cloning genomes
        outside the usual split path, e.g. in tests)."""
        key = self._next_node_key
        self._next_node_key += 1
        return key

    # ----------------------------------------------------------- priming
    def prime_from_genome(self, genome) -> None:
        """Adopt an existing genome's historical markings.

        Used when warm-starting a population from a deployed champion
        (model-tuning, §I): the champion's innovation numbers and node
        keys become part of this tracker's history so new mutations
        never collide with them.
        """
        for conn in genome.connections.values():
            self._connection_innovations[conn.key] = conn.innovation
            self._next_innovation = max(
                self._next_innovation, conn.innovation + 1
            )
        for node_key in genome.nodes:
            self._next_node_key = max(self._next_node_key, node_key + 1)

    # ------------------------------------------------------------ state
    @property
    def innovation_count(self) -> int:
        return self._next_innovation

    @property
    def node_count(self) -> int:
        return self._next_node_key

    def reset_generation(self) -> None:
        """Forget per-generation split reuse.

        Classic NEAT only coalesces identical structural mutations within
        one generation; across generations a new split of the same
        connection is a new innovation.  We keep connection innovations
        global (simpler and strictly more alignable) but refresh the
        split-node table each generation so long runs do not silently
        alias hidden nodes created hundreds of generations apart.
        """
        self._split_nodes.clear()
