"""NEAT substrate: Neuro-Evolution of Augmenting Topologies, from scratch.

Implements the algorithm of Stanley & Miikkulainen [42] as profiled by
the paper (§II-C, §III-B): genomes of node/connection genes with global
innovation numbers, structural and parametric mutation, gene-aligned
crossover, speciation with fitness sharing and stagnation, and the
CreateNet decoder that turns a genome into an executable irregular
feed-forward network.
"""

from repro.neat.activations import activations, aggregations
from repro.neat.checkpoint import (
    load_checkpoint,
    population_from_dict,
    save_checkpoint,
)
from repro.neat.config import NEATConfig
from repro.neat.crossover import crossover
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome, creates_cycle
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork, NodeEval, required_nodes
from repro.neat.population import GenerationStats, Population, RunResult
from repro.neat.reporters import (
    ConsoleReporter,
    CSVReporter,
    Reporter,
    ReporterSet,
)
from repro.neat.reproduction import Reproduction, allocate_offspring
from repro.neat.species import Species, SpeciesSet
from repro.neat.validate import (
    GenomeValidationError,
    iter_violations,
    validate_genome,
)
from repro.neat.vectorized import (
    PopulationEvaluator,
    VectorizedNetwork,
    vectorize,
)

__all__ = [
    "CSVReporter",
    "ConnectionGene",
    "ConsoleReporter",
    "FeedForwardNetwork",
    "GenerationStats",
    "Genome",
    "GenomeValidationError",
    "InnovationTracker",
    "NEATConfig",
    "NodeEval",
    "NodeGene",
    "Population",
    "PopulationEvaluator",
    "Reporter",
    "ReporterSet",
    "Reproduction",
    "RunResult",
    "Species",
    "SpeciesSet",
    "VectorizedNetwork",
    "activations",
    "aggregations",
    "allocate_offspring",
    "creates_cycle",
    "crossover",
    "iter_violations",
    "load_checkpoint",
    "population_from_dict",
    "required_nodes",
    "save_checkpoint",
    "validate_genome",
    "vectorize",
]
