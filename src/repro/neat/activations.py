"""Activation and aggregation function registries for NEAT.

Every node gene carries an activation name and an aggregation name
(Table II: "Node gene: node bias value, node activation").  Keeping the
functions behind string-keyed registries keeps genomes serializable and
lets the INAX simulator's PE activation unit resolve exactly the same
functions the software forward pass uses, so hardware and software
results can be compared bit-for-bit.

Two representation choices exist solely to keep the interpreted
reference, the INAX PE simulator, and the vectorized batch evaluator
(:mod:`repro.neat.vectorized`) bit-identical:

* transcendental functions (``exp``/``tanh``/``sin``) go through NumPy's
  scalar ufuncs rather than :mod:`math` — NumPy's SIMD kernels produce
  slightly different last-ulp results than libm, and they are value-pure
  (the same input gives the same bits whether evaluated as a scalar or
  as an element of any array), so scalar and batched paths agree exactly;
* the ``sum`` aggregation accumulates left-to-right in ingress order —
  the same order a MAC-accumulator PE sums in hardware and the order the
  batched evaluator replays — instead of an order-insensitive
  ``math.fsum``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "ActivationRegistry",
    "AggregationRegistry",
    "activations",
    "aggregations",
]

ScalarFn = Callable[[float], float]
AggregateFn = Callable[[Iterable[float]], float]


def _sigmoid(x: float) -> float:
    # NEAT's steepened sigmoid (Stanley & Miikkulainen use 4.9x); clamp the
    # argument so exp never overflows for extreme evolved weights.
    z = max(-60.0, min(60.0, 4.9 * x))
    return float(1.0 / (1.0 + np.exp(-z)))


def _tanh(x: float) -> float:
    z = max(-60.0, min(60.0, 2.5 * x))
    return float(np.tanh(z))


def _relu(x: float) -> float:
    return x if x > 0.0 else 0.0


def _leaky_relu(x: float) -> float:
    return x if x > 0.0 else 0.005 * x


def _identity(x: float) -> float:
    return x


def _mlp_tanh(x: float) -> float:
    """Plain tanh, no NEAT steepening — matches :class:`repro.rl.nn.MLP`
    so dense policies lowered via ``compile_mlp`` run bit-compatibly."""
    return float(np.tanh(x))


def _clamped(x: float) -> float:
    return max(-1.0, min(1.0, x))


def _gauss(x: float) -> float:
    z = max(-3.4, min(3.4, x))
    return float(np.exp(-5.0 * z * z))


def _sin(x: float) -> float:
    z = max(-60.0, min(60.0, 5.0 * x))
    return float(np.sin(z))


def _abs(x: float) -> float:
    return abs(x)


def _step(x: float) -> float:
    return 1.0 if x > 0.0 else 0.0


class _Registry:
    """Name -> function registry with validation."""

    def __init__(self, kind: str, initial: dict[str, Callable]):
        self._kind = kind
        self._functions: dict[str, Callable] = dict(initial)

    def get(self, name: str) -> Callable:
        try:
            return self._functions[name]
        except KeyError:
            known = ", ".join(sorted(self._functions))
            raise KeyError(
                f"unknown {self._kind} function {name!r}; known: {known}"
            ) from None

    def add(self, name: str, fn: Callable) -> None:
        """Register a custom function (used by tests and extensions)."""
        if not callable(fn):
            raise TypeError(f"{self._kind} function {name!r} is not callable")
        self._functions[name] = fn

    def names(self) -> list[str]:
        return sorted(self._functions)

    def __contains__(self, name: str) -> bool:
        return name in self._functions


class ActivationRegistry(_Registry):
    """Registry of scalar activation functions."""


class AggregationRegistry(_Registry):
    """Registry of ingress-aggregation functions (how a node combines
    its weighted inputs before activation)."""


activations = ActivationRegistry(
    "activation",
    {
        "sigmoid": _sigmoid,
        "tanh": _tanh,
        "relu": _relu,
        "leaky_relu": _leaky_relu,
        "identity": _identity,
        "mlp_tanh": _mlp_tanh,
        "clamped": _clamped,
        "gauss": _gauss,
        "sin": _sin,
        "abs": _abs,
        "step": _step,
    },
)

def _sum(values: Iterable[float]) -> float:
    # Left-to-right accumulation, matching both a hardware MAC
    # accumulator and the batched evaluator's term-by-term replay.
    total = 0.0
    for v in values:
        total = total + v
    return total


aggregations = AggregationRegistry(
    "aggregation",
    {
        "sum": _sum,
        "mean": lambda values: _mean(values),
        "max": lambda values: max(values, default=0.0),
        "min": lambda values: min(values, default=0.0),
        "product": lambda values: _product(values),
    },
)


def _mean(values: Iterable[float]) -> float:
    vals = list(values)
    return math.fsum(vals) / len(vals) if vals else 0.0


def _product(values: Iterable[float]) -> float:
    out = 1.0
    for v in values:
        out *= v
    return out
