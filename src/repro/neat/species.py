"""Speciation ("Speciate" in Table III).

Individuals are grouped by topological similarity (the compatibility
distance) so that "diverse evolved traits survive through generations,
even if their genomes do not perform well initially" — young structural
innovations compete only within their own species, via fitness sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome

__all__ = ["Species", "SpeciesSet"]


@dataclass
class Species:
    """One species: a representative genome plus its current members."""

    key: int
    created_generation: int
    representative: Genome
    members: list[Genome] = field(default_factory=list)
    #: Best raw fitness the species has ever reached (stagnation tracking).
    best_fitness: float = float("-inf")
    last_improved_generation: int = 0
    #: Sum of members' adjusted (shared) fitnesses this generation.
    adjusted_fitness_sum: float = 0.0

    def update_fitness(self, generation: int) -> None:
        """Refresh best-fitness/stagnation counters from current members."""
        best = max(
            (g.fitness for g in self.members if g.fitness is not None),
            default=float("-inf"),
        )
        if best > self.best_fitness:
            self.best_fitness = best
            self.last_improved_generation = generation
        shared = [
            (g.fitness if g.fitness is not None else 0.0) / max(len(self.members), 1)
            for g in self.members
        ]
        self.adjusted_fitness_sum = float(sum(shared))

    def stagnant_for(self, generation: int) -> int:
        return generation - self.last_improved_generation

    @property
    def size(self) -> int:
        return len(self.members)


class SpeciesSet:
    """Partitions a population into species each generation."""

    def __init__(self, config: NEATConfig):
        self._config = config
        self._species: dict[int, Species] = {}
        self._next_key = 0

    # -------------------------------------------------------------- views
    @property
    def species(self) -> dict[int, Species]:
        return self._species

    def __len__(self) -> int:
        return len(self._species)

    # ----------------------------------------------------------- speciate
    def speciate(
        self,
        population: list[Genome],
        generation: int,
        rng: np.random.Generator,
    ) -> None:
        """Assign every genome in ``population`` to a species.

        Each existing species first picks the member closest to last
        generation's representative as its new representative; remaining
        genomes join the first species within the compatibility
        threshold, or found a new one.
        """
        config = self._config
        unassigned = list(population)

        for species in self._species.values():
            species.members = []

        # re-anchor each surviving species on its closest new member
        for species in self._species.values():
            if not unassigned:
                break
            distances = [
                species.representative.distance(g, config) for g in unassigned
            ]
            idx = int(np.argmin(distances))
            if distances[idx] <= config.compatibility_threshold:
                species.representative = unassigned[idx]
                species.members.append(unassigned.pop(idx))

        for genome in unassigned:
            placed = False
            for species in self._species.values():
                if (
                    genome.distance(species.representative, config)
                    <= config.compatibility_threshold
                ):
                    species.members.append(genome)
                    placed = True
                    break
            if not placed:
                key = self._next_key
                self._next_key += 1
                self._species[key] = Species(
                    key=key,
                    created_generation=generation,
                    representative=genome,
                    members=[genome],
                )

        # drop species that attracted no members
        self._species = {
            k: s for k, s in self._species.items() if s.members
        }

    # ---------------------------------------------------------- stagnation
    def remove_stagnant(self, generation: int) -> list[int]:
        """Cull species stagnant beyond ``max_stagnation``.

        The top ``species_elitism`` species by best fitness are always
        protected so the population can never go extinct.  Returns the
        keys of the removed species.
        """
        config = self._config
        ranked = sorted(
            self._species.values(), key=lambda s: s.best_fitness, reverse=True
        )
        protected = {s.key for s in ranked[: config.species_elitism]}
        removed = []
        for species in list(self._species.values()):
            if species.key in protected:
                continue
            if species.stagnant_for(generation) > config.max_stagnation:
                removed.append(species.key)
                del self._species[species.key]
        return removed

    def update_fitnesses(self, generation: int) -> None:
        for species in self._species.values():
            species.update_fitness(generation)

    def total_adjusted_fitness(self) -> float:
        return float(
            sum(s.adjusted_fitness_sum for s in self._species.values())
        )
