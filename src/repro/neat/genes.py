"""Node and connection genes (paper Table II).

A *node gene* carries a bias, an activation name, and an aggregation
name.  A *connection gene* carries the linkage (input key, output key),
a weight, an enabled flag, and the historical innovation number NEAT
uses to align genes during crossover and distance computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.neat.config import NEATConfig

__all__ = ["NodeGene", "ConnectionGene"]


@dataclass
class NodeGene:
    """One neuron: bias + activation + aggregation."""

    key: int
    bias: float
    activation: str
    aggregation: str

    def copy(self) -> "NodeGene":
        return NodeGene(self.key, self.bias, self.activation, self.aggregation)

    def distance(self, other: "NodeGene") -> float:
        """Attribute distance used in genome compatibility (c3 term)."""
        d = abs(self.bias - other.bias)
        if self.activation != other.activation:
            d += 1.0
        if self.aggregation != other.aggregation:
            d += 1.0
        return d

    def mutate(self, config: NEATConfig, rng: np.random.Generator) -> None:
        """Perturb or replace the bias; optionally swap activation."""
        if rng.random() < config.bias_mutate_rate:
            if rng.random() < config.bias_replace_rate:
                self.bias = float(rng.normal(0.0, config.bias_init_stdev))
            else:
                self.bias += float(rng.normal(0.0, config.bias_mutate_power))
            self.bias = float(np.clip(self.bias, config.bias_min, config.bias_max))
        if (
            config.activation_mutate_rate > 0
            and len(config.activation_options) > 1
            and rng.random() < config.activation_mutate_rate
        ):
            self.activation = str(rng.choice(config.activation_options))
        if (
            config.aggregation_mutate_rate > 0
            and len(config.aggregation_options) > 1
            and rng.random() < config.aggregation_mutate_rate
        ):
            self.aggregation = str(rng.choice(config.aggregation_options))

    @classmethod
    def random(
        cls, key: int, config: NEATConfig, rng: np.random.Generator
    ) -> "NodeGene":
        return cls(
            key=key,
            bias=float(rng.normal(0.0, config.bias_init_stdev)),
            activation=config.default_activation,
            aggregation=config.default_aggregation,
        )


@dataclass
class ConnectionGene:
    """One weighted link between two nodes.

    ``key`` is the ``(in_node, out_node)`` pair; ``innovation`` is the
    global historical marking assigned when this structural gene first
    appeared anywhere in the population.
    """

    key: tuple[int, int]
    weight: float
    enabled: bool
    innovation: int

    @property
    def in_node(self) -> int:
        return self.key[0]

    @property
    def out_node(self) -> int:
        return self.key[1]

    def copy(self) -> "ConnectionGene":
        return ConnectionGene(self.key, self.weight, self.enabled, self.innovation)

    def distance(self, other: "ConnectionGene") -> float:
        """Attribute distance used in genome compatibility (c3 term)."""
        d = abs(self.weight - other.weight)
        if self.enabled != other.enabled:
            d += 1.0
        return d

    def mutate(self, config: NEATConfig, rng: np.random.Generator) -> None:
        """Perturb or replace the weight."""
        if rng.random() < config.weight_mutate_rate:
            if rng.random() < config.weight_replace_rate:
                self.weight = float(rng.normal(0.0, config.weight_init_stdev))
            else:
                self.weight += float(rng.normal(0.0, config.weight_mutate_power))
            self.weight = float(
                np.clip(self.weight, config.weight_min, config.weight_max)
            )

    @classmethod
    def random(
        cls,
        key: tuple[int, int],
        innovation: int,
        config: NEATConfig,
        rng: np.random.Generator,
    ) -> "ConnectionGene":
        return cls(
            key=key,
            weight=float(rng.normal(0.0, config.weight_init_stdev)),
            enabled=True,
            innovation=innovation,
        )
