"""Reproduction: elitism + offspring allocation ("Evolve" in Table III).

Each species receives a share of the next generation proportional to its
fitness-shared (adjusted) fitness.  Within a species, elites are copied
unchanged, the bottom of the ranking is culled by the survival
threshold, and the remainder of the quota is filled with children made
by crossover (probability ``crossover_rate``) or mutation-only cloning.
"""

from __future__ import annotations

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.crossover import crossover
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.species import SpeciesSet

__all__ = ["Reproduction", "allocate_offspring"]


def allocate_offspring(
    adjusted_fitnesses: list[float],
    min_sizes: list[int],
    total: int,
) -> list[int]:
    """Split ``total`` offspring across species.

    Allocation is proportional to each species' adjusted fitness (shifted
    to be non-negative), then clamped below by ``min_sizes`` and adjusted
    to sum exactly to ``total``.  Pure bookkeeping — kept separate so the
    arithmetic is property-testable.
    """
    if len(adjusted_fitnesses) != len(min_sizes):
        raise ValueError("adjusted_fitnesses and min_sizes must align")
    if not adjusted_fitnesses:
        return []
    if total < sum(min_sizes):
        raise ValueError(
            f"cannot allocate {total} offspring with minimum sizes {min_sizes}"
        )
    lo = min(adjusted_fitnesses)
    shifted = [f - lo + 1e-9 for f in adjusted_fitnesses]
    norm = sum(shifted)
    raw = [total * s / norm for s in shifted]
    sizes = [max(m, int(round(r))) for m, r in zip(min_sizes, raw)]

    # repair rounding drift while respecting the minimums
    diff = total - sum(sizes)
    order = sorted(range(len(sizes)), key=lambda i: raw[i], reverse=True)
    idx = 0
    while diff != 0:
        i = order[idx % len(order)]
        if diff > 0:
            sizes[i] += 1
            diff -= 1
        elif sizes[i] > min_sizes[i]:
            sizes[i] -= 1
            diff += 1
        idx += 1
        if idx > 10 * total + 100:  # pragma: no cover - defensive
            raise RuntimeError("offspring allocation failed to converge")
    return sizes


class Reproduction:
    """Produces the next generation from the current species partition."""

    def __init__(self, config: NEATConfig, tracker: InnovationTracker):
        self._config = config
        self._tracker = tracker
        self._next_genome_key = 0

    def fresh_key(self) -> int:
        key = self._next_genome_key
        self._next_genome_key += 1
        return key

    # --------------------------------------------------------- initial pop
    def create_initial_population(
        self, rng: np.random.Generator
    ) -> list[Genome]:
        return [
            Genome.initial(self.fresh_key(), self._config, self._tracker, rng)
            for _ in range(self._config.population_size)
        ]

    def create_population_from_seed(
        self, seed_genome: Genome, rng: np.random.Generator
    ) -> list[Genome]:
        """Warm-start population for the model-tuning scenario (§I).

        The deployed champion enters unchanged; the rest of the
        population are mutated copies, so adaptation to the new
        environment starts from the trained structure instead of from
        scratch (the paper's "adequate model trained on a generic
        environment, continuously trained on the target environment").
        """
        population = [seed_genome.copy(new_key=self.fresh_key())]
        population[0].fitness = None
        for _ in range(self._config.population_size - 1):
            clone = seed_genome.copy(new_key=self.fresh_key())
            clone.fitness = None
            clone.mutate(self._config, self._tracker, rng)
            population.append(clone)
        return population

    # ---------------------------------------------------------- reproduce
    def reproduce(
        self,
        species_set: SpeciesSet,
        generation: int,
        rng: np.random.Generator,
    ) -> list[Genome]:
        """Build the next generation's population."""
        config = self._config
        species_list = sorted(species_set.species.values(), key=lambda s: s.key)
        if not species_list:
            # total extinction: restart from scratch (NEAT's reset rule)
            return self.create_initial_population(rng)

        min_size = max(config.elitism, 1)
        sizes = allocate_offspring(
            [s.adjusted_fitness_sum for s in species_list],
            [min_size] * len(species_list),
            max(config.population_size, min_size * len(species_list)),
        )

        # survivors per species, plus the cross-species parent pool for
        # interspecies mating (the classic NEAT 0.1% event)
        survivor_pools: list[list[Genome]] = []
        for species in species_list:
            ranked = sorted(
                species.members,
                key=lambda g: g.fitness if g.fitness is not None else float("-inf"),
                reverse=True,
            )
            cutoff = max(1, int(np.ceil(config.survival_threshold * len(ranked))))
            survivor_pools.append(ranked[:cutoff])
        all_survivors = [g for pool in survivor_pools for g in pool]

        next_population: list[Genome] = []
        for species, quota, parents in zip(
            species_list, sizes, survivor_pools
        ):
            ranked = sorted(
                species.members,
                key=lambda g: g.fitness if g.fitness is not None else float("-inf"),
                reverse=True,
            )
            # elites survive unchanged
            for elite in ranked[: min(config.elitism, quota)]:
                next_population.append(elite.copy(new_key=self.fresh_key()))
            remaining = quota - min(config.elitism, quota)
            if remaining <= 0:
                continue
            for _ in range(remaining):
                next_population.append(
                    self._make_child(parents, all_survivors, rng)
                )
        return next_population

    def _make_child(
        self,
        parents: list[Genome],
        all_survivors: list[Genome],
        rng: np.random.Generator,
    ) -> Genome:
        config = self._config
        can_cross = len(parents) >= 2 or (
            len(parents) >= 1 and len(all_survivors) >= 2
        )
        if can_cross and rng.random() < config.crossover_rate:
            first = parents[int(rng.integers(len(parents)))]
            if (
                len(all_survivors) > len(parents)
                and rng.random() < config.interspecies_crossover_rate
            ):
                # interspecies mating: second parent from anywhere
                pool = [g for g in all_survivors if g is not first]
            else:
                pool = [g for g in parents if g is not first]
            if pool:
                second = pool[int(rng.integers(len(pool)))]
                child = crossover(
                    first, second, self.fresh_key(), config, rng
                )
            else:
                child = first.copy(new_key=self.fresh_key())
        else:
            parent = parents[int(rng.integers(len(parents)))]
            child = parent.copy(new_key=self.fresh_key())
        child.fitness = None
        child.mutate(config, self._tracker, rng)
        return child
