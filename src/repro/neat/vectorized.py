"""Vectorized batch evaluation of decoded networks.

The interpreted per-node forward pass (:class:`FeedForwardNetwork`) is
the *reference* — INAX's PEs match it bit-for-bit.  For software-side
throughput (the ``cpu-fast`` backend, batch inference, Monte-Carlo
fitness over many rollouts), this module compiles the same layered plan
into padded per-layer index/weight matrices and replays the reference
computation with NumPy:

* each layer becomes ``(fan_out, max_fan_in)`` source-slot and weight
  matrices over a flat value buffer (inputs first, then every node in
  layer order — the value-buffer view, so skip connections cost nothing
  extra);
* pre-activations accumulate **term by term in ingress order** — the
  same left-to-right order the interpreted path and a hardware MAC
  accumulator use — rather than via a BLAS dot whose summation order is
  opaque, so results are bit-identical to the reference;
* activation functions apply via NumPy's value-pure ufunc kernels, the
  exact functions :mod:`repro.neat.activations` evaluates for scalars.

Two evaluators share that compiled plan:

* :class:`VectorizedNetwork` — one network over a batch of observations;
* :class:`PopulationEvaluator` — many networks in lock-step, one
  observation each, flattened into a single value buffer so a whole
  population's forward pass costs a handful of NumPy ops per layer.
  This is the inference engine behind ``FastCPUBackend``.

Only ``sum`` aggregation is supported (the default and the only one
NEAT's evolved networks use here); anything else falls back to the
reference implementation.

Known (theoretical) bit-equality caveat: padded fan-in entries append
``value * 0.0`` terms to a node's accumulation, which is an exact no-op
for every sum except one that is exactly ``-0.0``; NEAT's continuous
weights make that case unobservable in practice, and ``-0.0 == 0.0``
anyway under IEEE comparison.
"""

from __future__ import annotations

import numpy as np

from repro.neat.network import FeedForwardNetwork

__all__ = ["VectorizedNetwork", "PopulationEvaluator", "vectorize"]


def _vec_sigmoid(x):
    return 1.0 / (1.0 + np.exp(-np.clip(4.9 * x, -60.0, 60.0)))


def _vec_tanh(x):
    return np.tanh(np.clip(2.5 * x, -60.0, 60.0))


def _vec_gauss(x):
    z = np.clip(x, -3.4, 3.4)
    # ((-5.0 * z) * z), matching the scalar registry's evaluation order
    return np.exp(-5.0 * z * z)


# NumPy twins of repro.neat.activations: same constants, same clamping,
# and crucially the same operation *order* (clamp before scale, multiply
# chains associated identically), so each is bit-identical to its scalar
# counterpart elementwise.
_VECTOR_ACTIVATIONS = {
    "sigmoid": _vec_sigmoid,
    "tanh": _vec_tanh,
    "relu": lambda x: np.where(x > 0.0, x, 0.0),
    "leaky_relu": lambda x: np.where(x > 0.0, x, 0.005 * x),
    "identity": lambda x: x,
    "mlp_tanh": np.tanh,
    "clamped": lambda x: np.clip(x, -1.0, 1.0),
    "gauss": _vec_gauss,
    "sin": lambda x: np.sin(np.clip(5.0 * x, -60.0, 60.0)),
    "abs": np.abs,
    "step": lambda x: (x > 0.0).astype(np.float64),
}


class _LayerPlan:
    """One layer's padded execution plan over the flat value buffer.

    ``sources``/``weights`` are ``(rows, max_fan_in)``; rows with fewer
    ingress terms are padded with ``(slot 0, weight 0.0)`` entries so a
    layer evaluates with dense array ops.  ``act_groups`` maps each
    distinct activation to the row indices using it.
    """

    __slots__ = ("sources", "weights", "biases", "act_groups", "slots")

    def __init__(self, sources, weights, biases, act_groups, slots):
        self.sources = sources
        self.weights = weights
        self.biases = biases
        self.act_groups = act_groups
        self.slots = slots


class _NetPlan:
    """A full network compiled to layered padded matrices."""

    __slots__ = ("num_inputs", "num_outputs", "num_slots", "layers",
                 "output_slots")

    def __init__(self, net: FeedForwardNetwork):
        for plan in net.node_evals.values():
            if plan.aggregation != "sum":
                raise ValueError(
                    f"vectorization supports 'sum' aggregation only; node "
                    f"{plan.key} uses {plan.aggregation!r}"
                )
            if plan.activation not in _VECTOR_ACTIVATIONS:
                raise ValueError(
                    f"no vectorized activation {plan.activation!r}"
                )
        self.num_inputs = len(net.input_keys)
        self.num_outputs = len(net.output_keys)

        # value-buffer slot index for every key, inputs first
        index: dict[int, int] = {
            key: i for i, key in enumerate(net.input_keys)
        }
        self.layers: list[_LayerPlan] = []
        for layer in net.layers:
            rows = len(layer)
            fan_in = max(
                (net.node_evals[key].fan_in for key in layer), default=0
            )
            sources = np.zeros((rows, fan_in), dtype=np.intp)
            weights = np.zeros((rows, fan_in))
            biases = np.empty(rows)
            act_rows: dict[str, list[int]] = {}
            for row, key in enumerate(layer):
                plan = net.node_evals[key]
                biases[row] = plan.bias
                act_rows.setdefault(plan.activation, []).append(row)
                for term, (src, w) in enumerate(plan.ingress):
                    sources[row, term] = index[src]
                    weights[row, term] = w
            slots = np.empty(rows, dtype=np.intp)
            for row, key in enumerate(layer):
                index[key] = len(index)
                slots[row] = index[key]
            act_groups = [
                (_VECTOR_ACTIVATIONS[name], np.array(r, dtype=np.intp))
                for name, r in act_rows.items()
            ]
            self.layers.append(
                _LayerPlan(sources, weights, biases, act_groups, slots)
            )
        self.num_slots = len(index)
        self.output_slots = np.array(
            [index.get(k, -1) for k in net.output_keys], dtype=np.intp
        )


def _apply_activations(layer: _LayerPlan, pre: np.ndarray) -> np.ndarray:
    """Apply per-row activations along the last axis of ``pre``."""
    if len(layer.act_groups) == 1:
        return layer.act_groups[0][0](pre)
    out = np.empty_like(pre)
    for fn, rows in layer.act_groups:
        out[..., rows] = fn(pre[..., rows])
    return out


class VectorizedNetwork:
    """A compiled batch evaluator for one decoded network."""

    def __init__(self, net: FeedForwardNetwork):
        self._reference = net
        self.input_keys = net.input_keys
        self.output_keys = net.output_keys
        self.plan = _NetPlan(net)

    # ---------------------------------------------------------- evaluate
    def activate_batch(self, inputs: np.ndarray) -> np.ndarray:
        """(batch, num_inputs) -> (batch, num_outputs)."""
        plan = self.plan
        x = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if x.shape[1] != plan.num_inputs:
            raise ValueError(
                f"expected {plan.num_inputs} inputs, got {x.shape[1]}"
            )
        batch = x.shape[0]
        values = np.zeros((batch, plan.num_slots))
        values[:, : plan.num_inputs] = x
        for layer in plan.layers:
            gathered = values[:, layer.sources]  # (batch, rows, fan_in)
            products = gathered * layer.weights
            acc = np.zeros((batch, layer.sources.shape[0]))
            for term in range(products.shape[2]):
                acc += products[:, :, term]
            pre = acc + layer.biases
            values[:, layer.slots] = _apply_activations(layer, pre)
        out = np.zeros((batch, plan.num_outputs))
        visible = plan.output_slots >= 0
        out[:, visible] = values[:, plan.output_slots[visible]]
        return out

    def activate(self, inputs: np.ndarray) -> np.ndarray:
        """Single-observation convenience, matching the reference API."""
        return self.activate_batch(np.asarray(inputs).reshape(1, -1))[0]

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.activate(inputs)


class PopulationEvaluator:
    """Lock-step inference over many compiled networks at once.

    All member networks' value buffers concatenate into one flat vector;
    each "layer" of the population (every member's nodes at that depth)
    evaluates with a handful of NumPy ops regardless of population size.
    This is what makes software evaluation of a NEAT generation cheap:
    the per-step cost is a few microseconds per *population*, not per
    individual.

    The interface mirrors the INAX device's scatter/infer/gather step:
    :meth:`infer` takes ``{slot: observation}`` for the still-alive
    subset and returns ``{slot: raw_output}``.  When episodes terminate
    and the alive set shrinks past a threshold, the flat tensors are
    rebuilt for the survivors so dead individuals stop costing inference
    work (the software analogue of the paper's idle-PU effect).
    """

    #: rebuild the flattened tensors once the alive set falls below this
    #: fraction of the currently built set
    REBUILD_FRACTION = 0.6

    def __init__(self, nets: list[VectorizedNetwork]):
        self._init_from_plans([net.plan for net in nets])

    @classmethod
    def from_plans(cls, plans: "list[_NetPlan]") -> "PopulationEvaluator":
        """Build directly from compiled plans (no network wrappers).

        The structural-batching compiler (:mod:`repro.compile`) produces
        per-member plans that *share* structure arrays and carry only
        per-member weight/bias views; this constructor lets it reuse the
        flattened lock-step engine without fabricating
        :class:`VectorizedNetwork` objects.
        """
        evaluator = cls.__new__(cls)
        evaluator._init_from_plans(list(plans))
        return evaluator

    def _init_from_plans(self, plans: "list[_NetPlan]") -> None:
        if not plans:
            raise ValueError("PopulationEvaluator needs at least one network")
        num_inputs = {p.num_inputs for p in plans}
        num_outputs = {p.num_outputs for p in plans}
        if len(num_inputs) != 1 or len(num_outputs) != 1:
            raise ValueError(
                "all member networks must share input/output arity; got "
                f"inputs {sorted(num_inputs)}, outputs {sorted(num_outputs)}"
            )
        self.num_inputs = num_inputs.pop()
        self.num_outputs = num_outputs.pop()
        self._plans = plans
        self.rebuilds = 0
        self._build(list(range(len(plans))))

    # ------------------------------------------------------------- build
    def _build(self, members: list[int]) -> None:
        """Flatten ``members``' plans into shared per-depth tensors."""
        plans = [self._plans[m] for m in members]
        offsets = np.zeros(len(plans), dtype=np.intp)
        total = 0
        for i, plan in enumerate(plans):
            offsets[i] = total
            total += plan.num_slots
        zero_slot = total  # always-zero scratch, used for absent outputs

        depth = max(len(plan.layers) for plan in plans)
        layers: list[_LayerPlan] = []
        for level in range(depth):
            live = [
                (i, plan.layers[level])
                for i, plan in enumerate(plans)
                if len(plan.layers) > level
            ]
            fan_in = max(
                (layer.sources.shape[1] for _, layer in live), default=0
            )
            total_rows = sum(layer.sources.shape[0] for _, layer in live)
            # one preallocated tensor per level, filled by slice — not a
            # concatenate over hundreds of per-member scratch arrays,
            # which dominated build time for large populations.  Padding
            # columns read slot 0 with weight 0, contributing exactly 0.
            sources = np.zeros((total_rows, fan_in), dtype=np.intp)
            weights = np.zeros((total_rows, fan_in))
            biases = np.empty(total_rows)
            slots = np.empty(total_rows, dtype=np.intp)
            act_rows: dict[int, tuple] = {}
            row = 0
            for i, layer in live:
                rows, terms = layer.sources.shape
                block = slice(row, row + rows)
                sources[block, :terms] = layer.sources + offsets[i]
                weights[block, :terms] = layer.weights
                biases[block] = layer.biases
                slots[block] = layer.slots + offsets[i]
                for fn, local_rows in layer.act_groups:
                    bucket = act_rows.setdefault(id(fn), (fn, []))
                    bucket[1].extend(local_rows + row)
                row += rows
            act_groups = [
                (fn, np.array(r, dtype=np.intp))
                for fn, r in act_rows.values()
            ]
            layers.append(
                _LayerPlan(sources, weights, biases, act_groups, slots)
            )

        self._built = list(members)
        self._position = {m: i for i, m in enumerate(members)}
        self._total = total
        self._layers = layers
        self._input_index = (
            offsets[:, None] + np.arange(self.num_inputs)
        ).ravel()
        out_index = np.empty((len(plans), self.num_outputs), dtype=np.intp)
        for i, plan in enumerate(plans):
            out_index[i] = np.where(
                plan.output_slots >= 0,
                plan.output_slots + offsets[i],
                zero_slot,
            )
        self._output_index = out_index
        self._obs = np.zeros((len(plans), self.num_inputs))
        self._values = np.zeros(total + 1)
        self.rebuilds += 1

    # ------------------------------------------------------------- infer
    def infer(
        self, observations: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """One lock-step tick: ``{slot: obs}`` -> ``{slot: raw output}``."""
        alive = sorted(observations)
        if alive != self._built:
            if not all(m in self._position for m in alive):
                raise KeyError(
                    "infer() saw a slot outside the built population"
                )
            if len(alive) < self.REBUILD_FRACTION * len(self._built):
                self._build(alive)
        position = self._position
        obs = self._obs
        for member, observation in observations.items():
            obs[position[member]] = observation
        # _values persists across ticks: stale non-input slots are always
        # rewritten before being read (every built member's every node
        # recomputes each tick), and the trailing zero_slot is never
        # written, so it stays 0.0 for absent outputs.
        values = self._values
        values[self._input_index] = obs.ravel()
        for layer in self._layers:
            gathered = values[layer.sources]  # (rows, fan_in)
            # one elementwise product, then in-place column accumulation:
            # identical term order (and bits) to the scalar sum loop
            products = gathered * layer.weights
            acc = np.zeros(products.shape[0])
            for term in range(products.shape[1]):
                acc += products[:, term]
            pre = acc + layer.biases
            values[layer.slots] = _apply_activations(layer, pre)
        out = values[self._output_index]
        return {m: out[position[m]] for m in alive}


def vectorize(net: FeedForwardNetwork) -> VectorizedNetwork:
    """Compile a decoded network for batch evaluation."""
    return VectorizedNetwork(net)
