"""Vectorized batch evaluation of decoded networks.

The interpreted per-node forward pass (:class:`FeedForwardNetwork`) is
the *reference* — INAX's PEs match it bit-for-bit.  For software-side
throughput (e.g. evaluating one network on a batch of observations, or
Monte-Carlo fitness over many rollouts), this module compiles the same
layered plan into per-layer NumPy matrices:

* each layer becomes a dense ``(fan_out, num_sources)`` weight matrix
  over the *currently known values* (inputs + all earlier nodes — the
  value-buffer view, so skip connections cost nothing extra);
* activation functions apply vectorized via a NumPy registry mirroring
  :mod:`repro.neat.activations`.

Only ``sum`` aggregation is supported (the default and the only one
NEAT's evolved networks use here); anything else falls back to the
reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.neat.network import FeedForwardNetwork

__all__ = ["VectorizedNetwork", "vectorize"]

# NumPy twins of repro.neat.activations (same clamping, same constants)
_VECTOR_ACTIVATIONS = {
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-np.clip(4.9 * x, -60, 60))),
    "tanh": lambda x: np.tanh(np.clip(2.5 * x, -60, 60)),
    "relu": lambda x: np.maximum(x, 0.0),
    "leaky_relu": lambda x: np.where(x > 0, x, 0.005 * x),
    "identity": lambda x: x,
    "mlp_tanh": np.tanh,
    "clamped": lambda x: np.clip(x, -1.0, 1.0),
    "gauss": lambda x: np.exp(-5.0 * np.clip(x, -3.4, 3.4) ** 2),
    "sin": lambda x: np.sin(np.clip(5.0 * x, -60, 60)),
    "abs": np.abs,
    "step": lambda x: (x > 0).astype(np.float64),
}


class VectorizedNetwork:
    """A compiled batch evaluator for one decoded network."""

    def __init__(self, net: FeedForwardNetwork):
        for plan in net.node_evals.values():
            if plan.aggregation != "sum":
                raise ValueError(
                    f"vectorization supports 'sum' aggregation only; node "
                    f"{plan.key} uses {plan.aggregation!r}"
                )
            if plan.activation not in _VECTOR_ACTIVATIONS:
                raise ValueError(
                    f"no vectorized activation {plan.activation!r}"
                )
        self._reference = net
        self.input_keys = net.input_keys
        self.output_keys = net.output_keys

        # value-buffer slot index for every key, inputs first
        index: dict[int, int] = {
            key: i for i, key in enumerate(net.input_keys)
        }
        self._layers: list[tuple[np.ndarray, np.ndarray, list, list[int]]] = []
        for layer in net.layers:
            num_known = len(index)
            weights = np.zeros((len(layer), num_known))
            biases = np.empty(len(layer))
            activations: list = []
            for row, key in enumerate(layer):
                plan = net.node_evals[key]
                biases[row] = plan.bias
                activations.append(_VECTOR_ACTIVATIONS[plan.activation])
                for src, w in plan.ingress:
                    weights[row, index[src]] = w
            slots = []
            for key in layer:
                index[key] = len(index)
                slots.append(index[key])
            self._layers.append((weights, biases, activations, slots))
        self._num_slots = len(index)
        self._output_slots = [index.get(k, -1) for k in net.output_keys]

    # ---------------------------------------------------------- evaluate
    def activate_batch(self, inputs: np.ndarray) -> np.ndarray:
        """(batch, num_inputs) -> (batch, num_outputs)."""
        x = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if x.shape[1] != len(self.input_keys):
            raise ValueError(
                f"expected {len(self.input_keys)} inputs, got {x.shape[1]}"
            )
        batch = x.shape[0]
        values = np.zeros((batch, self._num_slots))
        values[:, : x.shape[1]] = x
        for weights, biases, activations, slots in self._layers:
            pre = values[:, : weights.shape[1]] @ weights.T + biases
            for column, activation in enumerate(activations):
                values[:, slots[column]] = activation(pre[:, column])
        out = np.zeros((batch, len(self.output_keys)))
        for column, slot in enumerate(self._output_slots):
            if slot >= 0:
                out[:, column] = values[:, slot]
        return out

    def activate(self, inputs: np.ndarray) -> np.ndarray:
        """Single-observation convenience, matching the reference API."""
        return self.activate_batch(np.asarray(inputs).reshape(1, -1))[0]

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        return self.activate(inputs)


def vectorize(net: FeedForwardNetwork) -> VectorizedNetwork:
    """Compile a decoded network for batch evaluation."""
    return VectorizedNetwork(net)
