"""Genome validation: the structural invariants every genome must hold.

Used defensively where genomes cross trust boundaries — checkpoint
loads, hand-built genomes in tests, external tooling — and as the
executable statement of what "a valid NEAT genome" means here:

1. all output nodes exist (keys ``0..num_outputs-1``);
2. every connection endpoint resolves (inputs by key range, others by
   node gene);
3. the enabled-connection graph is acyclic (feed-forward);
4. innovation numbers are unique within the genome;
5. weights and biases are finite and within the configured bounds.
"""

from __future__ import annotations

import math

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome

__all__ = ["GenomeValidationError", "validate_genome"]


class GenomeValidationError(ValueError):
    """A genome violates a structural invariant."""


def validate_genome(genome: Genome, config: NEATConfig) -> None:
    """Raise :class:`GenomeValidationError` on the first violation."""
    problems = list(iter_violations(genome, config))
    if problems:
        raise GenomeValidationError(
            f"genome {genome.key}: " + "; ".join(problems[:5])
        )


def iter_violations(genome: Genome, config: NEATConfig):
    """Yield human-readable descriptions of every violated invariant."""
    # 1. outputs present
    for key in config.output_keys:
        if key not in genome.nodes:
            yield f"missing output node {key}"

    input_set = set(config.input_keys)

    # 2. endpoints resolve; no connection *into* an input
    for (src, dst), conn in genome.connections.items():
        if conn.key != (src, dst):
            yield f"connection stored under wrong key {(src, dst)}"
        if src < 0 and src not in input_set:
            yield f"connection {conn.key} reads unknown input {src}"
        if src >= 0 and src not in genome.nodes:
            yield f"connection {conn.key} reads missing node {src}"
        if dst < 0:
            yield f"connection {conn.key} writes into input {dst}"
        elif dst not in genome.nodes:
            yield f"connection {conn.key} writes missing node {dst}"

    # 3. acyclicity over enabled connections
    adjacency: dict[int, list[int]] = {}
    for (src, dst), conn in genome.connections.items():
        if conn.enabled:
            adjacency.setdefault(src, []).append(dst)
    state: dict[int, int] = {}  # 1 = visiting, 2 = done

    def has_cycle(node: int) -> bool:
        state[node] = 1
        for nxt in adjacency.get(node, ()):
            mark = state.get(nxt)
            if mark == 1:
                return True
            if mark is None and has_cycle(nxt):
                return True
        state[node] = 2
        return False

    for start in list(adjacency):
        if state.get(start) is None and has_cycle(start):
            yield "enabled-connection graph contains a cycle"
            break

    # 4. innovation uniqueness
    innovations = [c.innovation for c in genome.connections.values()]
    if len(innovations) != len(set(innovations)):
        yield "duplicate innovation numbers"

    # 5. finite, bounded parameters
    for key, node in genome.nodes.items():
        if not math.isfinite(node.bias):
            yield f"node {key} has non-finite bias"
        elif not config.bias_min <= node.bias <= config.bias_max:
            yield f"node {key} bias {node.bias} outside configured bounds"
    for conn in genome.connections.values():
        if not math.isfinite(conn.weight):
            yield f"connection {conn.key} has non-finite weight"
        elif not config.weight_min <= conn.weight <= config.weight_max:
            yield (
                f"connection {conn.key} weight {conn.weight} outside "
                "configured bounds"
            )
