"""Checkpointing: save and restore a NEAT run.

An edge deployment of E3 is long-lived — the model-tuning use-case (§I)
continuously adapts a deployed population, and a power cycle must not
lose the evolved state.  A checkpoint captures everything needed to
resume: config, population genomes, innovation bookkeeping, species
structure, RNG state, and the generation counter.

The format is plain JSON so checkpoints are diffable and portable
across hosts (the genome payload reuses :meth:`Genome.to_dict`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, fields
from pathlib import Path

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.population import Population
from repro.neat.species import Species

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_to_dict"]

_FORMAT_VERSION = 1


def checkpoint_to_dict(population: Population) -> dict:
    """Snapshot a population into a JSON-serializable dict."""
    config_dict = asdict(population.config)
    # tuples serialize as lists; restore handles the round trip
    species_payload = []
    for species in population.species_set.species.values():
        species_payload.append(
            {
                "key": species.key,
                "created_generation": species.created_generation,
                "representative": species.representative.to_dict(),
                "member_keys": [g.key for g in species.members],
                "best_fitness": _encode_float(species.best_fitness),
                "last_improved_generation": species.last_improved_generation,
            }
        )
    tracker = population.tracker
    return {
        "format_version": _FORMAT_VERSION,
        "generation": population.generation,
        "config": config_dict,
        "population": [g.to_dict() for g in population.population],
        "best_genome": (
            population.best_genome.to_dict()
            if population.best_genome is not None
            else None
        ),
        "species": species_payload,
        "next_species_key": population.species_set._next_key,
        "innovation": {
            "next_node_key": tracker._next_node_key,
            "next_innovation": tracker._next_innovation,
            "connections": [
                [list(key), value]
                for key, value in tracker._connection_innovations.items()
            ],
        },
        "next_genome_key": population.reproduction._next_genome_key,
        "rng_state": _encode_rng(population.rng),
    }


def save_checkpoint(population: Population, path: str | Path) -> None:
    """Write a checkpoint file."""
    payload = checkpoint_to_dict(population)
    Path(path).write_text(json.dumps(payload))


def load_checkpoint(path: str | Path, validate: bool = True) -> Population:
    """Restore a population from a checkpoint file.

    The restored population resumes exactly: same genomes, same species
    partition, same innovation counters, and the same RNG stream.  With
    ``validate`` (default) every restored genome is checked against the
    structural invariants (:mod:`repro.neat.validate`) — checkpoints
    cross a trust boundary and a corrupted one should fail loudly here,
    not deep inside a later decode.
    """
    payload = json.loads(Path(path).read_text())
    population = population_from_dict(payload)
    if validate:
        from repro.neat.validate import validate_genome

        for genome in population.population:
            validate_genome(genome, population.config)
    return population


def population_from_dict(payload: dict) -> Population:
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('format_version')}"
        )
    config_dict = dict(payload["config"])
    # dataclass fields that were tuples arrive as lists
    for name in ("activation_options", "aggregation_options"):
        config_dict[name] = tuple(config_dict[name])
    valid = {f.name for f in fields(NEATConfig)}
    config = NEATConfig(**{k: v for k, v in config_dict.items() if k in valid})

    population = Population(config, seed=0)
    population.generation = payload["generation"]
    population.population = [
        Genome.from_dict(g) for g in payload["population"]
    ]
    by_key = {g.key: g for g in population.population}
    if payload["best_genome"] is not None:
        population.best_genome = Genome.from_dict(payload["best_genome"])

    # --- species ---
    population.species_set._species = {}
    for entry in payload["species"]:
        species = Species(
            key=entry["key"],
            created_generation=entry["created_generation"],
            representative=Genome.from_dict(entry["representative"]),
            members=[by_key[k] for k in entry["member_keys"] if k in by_key],
            best_fitness=_decode_float(entry["best_fitness"]),
            last_improved_generation=entry["last_improved_generation"],
        )
        population.species_set._species[species.key] = species
    population.species_set._next_key = payload["next_species_key"]

    # --- innovation bookkeeping ---
    tracker = population.tracker
    tracker._next_node_key = payload["innovation"]["next_node_key"]
    tracker._next_innovation = payload["innovation"]["next_innovation"]
    tracker._connection_innovations = {
        tuple(key): value for key, value in payload["innovation"]["connections"]
    }
    population.reproduction._next_genome_key = payload["next_genome_key"]

    population.rng = _decode_rng(payload["rng_state"])
    return population


def _encode_rng(rng: np.random.Generator) -> dict:
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=int))


def _decode_rng(state: dict) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


def _encode_float(value: float):
    if value == float("-inf"):
        return "-inf"
    if value == float("inf"):
        return "inf"
    return value


def _decode_float(value) -> float:
    if value in ("-inf", "inf"):
        return float(value)
    return float(value)
