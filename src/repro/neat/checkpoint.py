"""Checkpointing: save and restore a NEAT run.

An edge deployment of E3 is long-lived — the model-tuning use-case (§I)
continuously adapts a deployed population, and a power cycle must not
lose the evolved state.  A checkpoint captures everything needed to
resume: config, population genomes, innovation bookkeeping, species
structure, RNG state, and the generation counter.

The format is plain JSON so checkpoints are diffable and portable
across hosts (the genome payload reuses :meth:`Genome.to_dict`).

Crash safety
------------

A power cycle can land *during* a checkpoint write, and a truncated
checkpoint is worse than none — it silently breaks the next resume.
:func:`save_checkpoint` is therefore atomic: the payload (with an
embedded SHA-256 ``checksum``) is written to a temp file in the same
directory, fsync'd, and renamed over the target, so the target path
always holds either the old complete checkpoint or the new complete
one.  ``keep > 1`` rotates predecessors to ``<path>.1``, ``<path>.2``,
... and :func:`load_checkpoint` falls back to the newest intact rotated
file when the primary is corrupt (:class:`ChecksumMismatchError`,
truncation, bad version), warning about what it skipped.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, fields
from pathlib import Path

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.population import Population
from repro.neat.species import Species

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_to_dict",
    "checkpoint_candidates",
    "rotated_path",
    "CheckpointError",
    "ChecksumMismatchError",
]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file could not be used."""


class ChecksumMismatchError(CheckpointError):
    """The checkpoint's embedded SHA-256 does not match its payload."""


def checkpoint_to_dict(population: Population) -> dict:
    """Snapshot a population into a JSON-serializable dict."""
    config_dict = asdict(population.config)
    # tuples serialize as lists; restore handles the round trip
    species_payload = []
    for species in population.species_set.species.values():
        species_payload.append(
            {
                "key": species.key,
                "created_generation": species.created_generation,
                "representative": species.representative.to_dict(),
                "member_keys": [g.key for g in species.members],
                "best_fitness": _encode_float(species.best_fitness),
                "last_improved_generation": species.last_improved_generation,
            }
        )
    tracker = population.tracker
    return {
        "format_version": _FORMAT_VERSION,
        "generation": population.generation,
        "config": config_dict,
        "population": [g.to_dict() for g in population.population],
        "best_genome": (
            population.best_genome.to_dict()
            if population.best_genome is not None
            else None
        ),
        "species": species_payload,
        "next_species_key": population.species_set._next_key,
        "innovation": {
            "next_node_key": tracker._next_node_key,
            "next_innovation": tracker._next_innovation,
            "connections": [
                [list(key), value]
                for key, value in tracker._connection_innovations.items()
            ],
        },
        "next_genome_key": population.reproduction._next_genome_key,
        "rng_state": _encode_rng(population.rng),
    }


def _payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON of everything but ``checksum``."""
    body = {k: v for k, v in payload.items() if k != "checksum"}
    return hashlib.sha256(
        json.dumps(body, sort_keys=True).encode()
    ).hexdigest()


def rotated_path(path: str | Path, index: int) -> Path:
    """The ``index``-generations-old rotated sibling of ``path``."""
    target = Path(path)
    if index == 0:
        return target
    return target.with_name(f"{target.name}.{index}")


def _rotate(target: Path, keep: int) -> None:
    """Shift ``target`` and its rotated siblings one slot older."""
    if keep <= 1 or not target.exists():
        return
    oldest = rotated_path(target, keep - 1)
    if oldest.exists():
        oldest.unlink()
    for index in range(keep - 2, 0, -1):
        source = rotated_path(target, index)
        if source.exists():
            os.replace(source, rotated_path(target, index + 1))
    os.replace(target, rotated_path(target, 1))


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that refuse O_RDONLY on directories
    try:
        os.fsync(fd)
    except OSError:
        pass  # durability is best-effort; atomicity already holds
    finally:
        os.close(fd)


def save_checkpoint(
    population: Population, path: str | Path, keep: int = 1
) -> None:
    """Atomically write a checkpoint file, rotating ``keep`` total copies.

    The payload carries an embedded SHA-256 ``checksum``.  The write
    goes to a same-directory temp file (write + flush + fsync) and is
    renamed over ``path``, so a crash at any byte offset leaves either
    the previous complete checkpoint or the new complete one — never a
    truncated hybrid.  With ``keep > 1`` the previous checkpoint is
    first rotated to ``<path>.1`` (and so on up to ``<path>.{keep-1}``),
    giving :func:`load_checkpoint` intact fallbacks.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    target = Path(path)
    payload = checkpoint_to_dict(population)
    payload["checksum"] = _payload_checksum(payload)
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "w") as handle:
        handle.write(json.dumps(payload))
        handle.flush()
        os.fsync(handle.fileno())
    _rotate(target, keep)
    os.replace(tmp, target)
    _fsync_dir(target.parent)


def checkpoint_candidates(path: str | Path) -> list[Path]:
    """``path`` plus its existing rotated siblings, newest first."""
    target = Path(path)
    candidates = [target]
    index = 1
    while True:
        rotated = rotated_path(target, index)
        if not rotated.exists():
            break
        candidates.append(rotated)
        index += 1
    return candidates


def _load_one(path: Path, validate: bool) -> Population:
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    stored = payload.pop("checksum", None)
    if stored is not None:  # legacy checkpoints predate the checksum
        computed = _payload_checksum(payload)
        if computed != stored:
            raise ChecksumMismatchError(
                f"checkpoint {path} is corrupt: stored checksum "
                f"{stored[:12]}... != computed {computed[:12]}..."
            )
    population = population_from_dict(payload)
    if validate:
        from repro.neat.validate import validate_genome

        for genome in population.population:
            validate_genome(genome, population.config)
    return population


def load_checkpoint(
    path: str | Path, validate: bool = True, fallback: bool = True
) -> Population:
    """Restore a population from a checkpoint file.

    The restored population resumes exactly: same genomes, same species
    partition, same innovation counters, and the same RNG stream.  With
    ``validate`` (default) every restored genome is checked against the
    structural invariants (:mod:`repro.neat.validate`) — checkpoints
    cross a trust boundary and a corrupted one should fail loudly here,
    not deep inside a later decode.

    With ``fallback`` (default), a primary file that fails to load —
    truncated JSON, :class:`ChecksumMismatchError`, bad
    ``format_version``, failed validation — falls back to the newest
    intact rotated sibling (``<path>.1``, ``<path>.2``, ...), emitting a
    :class:`RuntimeWarning` per skipped file.  When every candidate
    fails, the *primary* file's error is raised.
    """
    candidates = checkpoint_candidates(path) if fallback else [Path(path)]
    failures: list[tuple[Path, Exception]] = []
    for candidate in candidates:
        try:
            population = _load_one(candidate, validate=validate)
        except (OSError, ValueError, KeyError, TypeError, CheckpointError) as error:
            failures.append((candidate, error))
            continue
        for failed_path, error in failures:
            warnings.warn(
                f"skipped corrupt checkpoint {failed_path} "
                f"({type(error).__name__}: {error}); "
                f"restored from {candidate}",
                RuntimeWarning,
                stacklevel=2,
            )
        return population
    raise failures[0][1]


def population_from_dict(payload: dict) -> Population:
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {payload.get('format_version')}"
        )
    config_dict = dict(payload["config"])
    # dataclass fields that were tuples arrive as lists
    for name in ("activation_options", "aggregation_options"):
        config_dict[name] = tuple(config_dict[name])
    valid = {f.name for f in fields(NEATConfig)}
    config = NEATConfig(**{k: v for k, v in config_dict.items() if k in valid})

    population = Population(config, seed=0)
    population.generation = payload["generation"]
    population.population = [
        Genome.from_dict(g) for g in payload["population"]
    ]
    by_key = {g.key: g for g in population.population}
    if payload["best_genome"] is not None:
        population.best_genome = Genome.from_dict(payload["best_genome"])

    # --- species ---
    population.species_set._species = {}
    for entry in payload["species"]:
        species = Species(
            key=entry["key"],
            created_generation=entry["created_generation"],
            representative=Genome.from_dict(entry["representative"]),
            members=[by_key[k] for k in entry["member_keys"] if k in by_key],
            best_fitness=_decode_float(entry["best_fitness"]),
            last_improved_generation=entry["last_improved_generation"],
        )
        population.species_set._species[species.key] = species
    population.species_set._next_key = payload["next_species_key"]

    # --- innovation bookkeeping ---
    tracker = population.tracker
    tracker._next_node_key = payload["innovation"]["next_node_key"]
    tracker._next_innovation = payload["innovation"]["next_innovation"]
    tracker._connection_innovations = {
        tuple(key): value for key, value in payload["innovation"]["connections"]
    }
    population.reproduction._next_genome_key = payload["next_genome_key"]

    population.rng = _decode_rng(payload["rng_state"])
    return population


def _encode_rng(rng: np.random.Generator) -> dict:
    state = rng.bit_generator.state
    return json.loads(json.dumps(state, default=int))


def _decode_rng(state: dict) -> np.random.Generator:
    rng = np.random.default_rng(0)
    rng.bit_generator.state = state
    return rng


def _encode_float(value: float):
    if value == float("-inf"):
        return "-inf"
    if value == float("inf"):
        return "inf"
    return value


def _decode_float(value) -> float:
    if value in ("-inf", "inf"):
        return float(value)
    return float(value)
