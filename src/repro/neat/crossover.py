"""NEAT crossover ("Crossover" in Table III).

Connection genes from the two parents are aligned by innovation number.
Matching genes are inherited from a random parent; disjoint and excess
genes come from the fitter parent.  A gene disabled in either parent has
a 75% chance of staying disabled in the child — the classic NEAT rule
that keeps topology exploration from being instantly re-enabled.
"""

from __future__ import annotations

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome

__all__ = ["crossover"]

#: Probability a gene disabled in either parent stays disabled.
DISABLE_INHERIT_PROB = 0.75


def crossover(
    parent_a: Genome,
    parent_b: Genome,
    child_key: int,
    config: NEATConfig,
    rng: np.random.Generator,
) -> Genome:
    """Blend two parents' genes into a child genome.

    ``parent_a`` and ``parent_b`` must both have been evaluated (their
    ``fitness`` set); the fitter one donates the disjoint/excess genes.
    """
    if parent_a.fitness is None or parent_b.fitness is None:
        raise ValueError("both parents must have a fitness before crossover")
    if parent_a.fitness < parent_b.fitness:
        parent_a, parent_b = parent_b, parent_a
    # parent_a is now the (weakly) fitter parent
    equal_fitness = parent_a.fitness == parent_b.fitness

    child = Genome(key=child_key)

    a_by_innovation = {c.innovation: c for c in parent_a.connections.values()}
    b_by_innovation = {c.innovation: c for c in parent_b.connections.values()}

    for innovation, gene_a in a_by_innovation.items():
        gene_b = b_by_innovation.get(innovation)
        if gene_b is not None:
            chosen = gene_a if rng.random() < 0.5 else gene_b
            gene = chosen.copy()
            if (not gene_a.enabled or not gene_b.enabled) and (
                rng.random() < DISABLE_INHERIT_PROB
            ):
                gene.enabled = False
            else:
                gene.enabled = True
        else:
            gene = gene_a.copy()
        child.connections[gene.key] = gene

    if equal_fitness:
        # with equal parents, the weaker side's disjoint/excess genes are
        # inherited too (NEAT-paper behaviour), provided they do not
        # conflict with an already-chosen key or close a cycle.
        from repro.neat.genome import creates_cycle

        for innovation, gene_b in b_by_innovation.items():
            if innovation in a_by_innovation or gene_b.key in child.connections:
                continue
            if creates_cycle(child.connections.keys(), gene_b.key):
                continue
            child.connections[gene_b.key] = gene_b.copy()

    # --- nodes: union of what the chosen connections touch, plus outputs
    needed = set(config.output_keys)
    for in_node, out_node in child.connections:
        if in_node >= 0:
            needed.add(in_node)
        needed.add(out_node)
    for key in needed:
        gene_a = parent_a.nodes.get(key)
        gene_b = parent_b.nodes.get(key)
        if gene_a is not None and gene_b is not None:
            child.nodes[key] = (gene_a if rng.random() < 0.5 else gene_b).copy()
        elif gene_a is not None:
            child.nodes[key] = gene_a.copy()
        elif gene_b is not None:
            child.nodes[key] = gene_b.copy()
        else:  # pragma: no cover - defensive; outputs always exist in parents
            raise RuntimeError(f"node {key} missing from both parents")

    # prune connections that reference nodes neither parent could supply
    for conn_key in [k for k in child.connections]:
        in_node, out_node = conn_key
        if in_node >= 0 and in_node not in child.nodes:
            del child.connections[conn_key]
        elif out_node not in child.nodes:
            del child.connections[conn_key]

    return child
