"""Run reporters: observability for long evolution runs.

A reporter receives a callback after every completed generation.  The
platform attaches whichever reporters the deployment wants — a console
line per generation for interactive runs, a CSV log for later analysis
(the Fig 2/4 trace machinery uses the same records).
"""

from __future__ import annotations

import csv
import io
import os
import warnings
from typing import Protocol

from repro.neat.population import GenerationStats

__all__ = ["Reporter", "ConsoleReporter", "CSVReporter", "ReporterSet"]


class Reporter(Protocol):
    """Anything that wants per-generation notifications."""

    def on_generation(self, stats: GenerationStats) -> None: ...


class ConsoleReporter:
    """One status line per generation, neat-python style."""

    def __init__(self, stream=None, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self._stream = stream
        self._every = every

    def on_generation(self, stats: GenerationStats) -> None:
        if stats.generation % self._every:
            return
        line = (
            f"gen {stats.generation:4d}  "
            f"best {stats.best_fitness:10.2f}  "
            f"mean {stats.mean_fitness:10.2f}  "
            f"species {stats.num_species:3d}  "
            f"size {stats.mean_nodes:5.1f}n/{stats.mean_connections:5.1f}c"
        )
        for key in sorted(stats.extras):
            line += f"  {key} {stats.extras[key]:g}"
        print(line, file=self._stream)


class CSVReporter:
    """Appends one CSV row per generation to a stream or path."""

    FIELDS = (
        "generation",
        "best_fitness",
        "mean_fitness",
        "num_species",
        "mean_nodes",
        "mean_connections",
        "population_size",
    )

    def __init__(self, target, append: bool = False):
        """``target`` is a file path (str/Path) or a text stream.

        With ``append`` the file is opened in append mode and the
        header row is skipped when the target already has content —
        the resume flow uses this so continuing a checkpointed run
        extends its CSV history instead of truncating it.  The existing
        file's *own* header defines the column order appended rows
        follow, so a resumed run can never misalign columns; when the
        resumed run contributes columns the original header lacks (a
        backend now reporting ``fallback_waves``, new packing columns,
        ...), the file is migrated in place — header extended, old rows
        padded with 0 — instead of silently dropping the new data.
        """
        has_content = False
        existing_fields: tuple[str, ...] | None = None
        self._path: str | None = None
        if isinstance(target, (str,)) or hasattr(target, "__fspath__"):
            self._path = os.fspath(target)
            if append:
                try:
                    has_content = os.path.getsize(target) > 0
                except OSError:
                    has_content = False
                if has_content:
                    existing_fields = self._read_header(self._path)
            self._stream = open(target, "a" if append else "w", newline="")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
            if append:
                try:
                    has_content = self._stream.tell() > 0
                except (OSError, ValueError):
                    has_content = False
        # the header is written lazily at the first row so backend
        # extras (sorted, after the fixed fields) can extend it
        self._has_content = has_content
        self._fieldnames = existing_fields
        self._writer: csv.DictWriter | None = None
        self._warned_columns: set[str] = set()

    @staticmethod
    def _read_header(path: str) -> tuple[str, ...] | None:
        """The existing file's column order (None if unreadable)."""
        try:
            with open(path, newline="") as handle:
                header = next(csv.reader(handle), None)
        except OSError:
            return None
        return tuple(header) if header else None

    def _ensure_columns(self, desired: tuple[str, ...]) -> None:
        """Make every ``desired`` column land in the output.

        Columns missing from the committed header are added by
        rewriting the file in place when this reporter owns a path
        (old rows get ``0`` for the new columns); for a caller-owned
        stream the header cannot be rewritten, so a loud warning names
        each dropped column once instead of losing it silently.
        """
        assert self._fieldnames is not None
        missing = [f for f in desired if f not in self._fieldnames]
        if not missing:
            return
        if self._path is not None:
            self._migrate(missing)
            return
        new = [f for f in missing if f not in self._warned_columns]
        if new:
            self._warned_columns.update(new)
            warnings.warn(
                "CSVReporter: column(s) "
                + ", ".join(repr(f) for f in new)
                + " appeared after the CSV header was fixed and will be "
                "dropped (stream targets cannot be migrated; write to a "
                "file path to keep them)",
                RuntimeWarning,
                stacklevel=3,
            )

    def _migrate(self, missing: list[str]) -> None:
        """Extend an owned file's header in place (old rows pad to 0)."""
        assert self._path is not None
        self._stream.close()
        with open(self._path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        self._fieldnames = tuple(self._fieldnames or ()) + tuple(missing)
        with open(self._path, "w", newline="") as handle:
            writer = csv.DictWriter(
                handle,
                fieldnames=self._fieldnames,
                restval=0,
                extrasaction="ignore",
            )
            writer.writeheader()
            writer.writerows(rows)
        self._stream = open(self._path, "a", newline="")
        self._has_content = True
        self._writer = None

    def on_generation(self, stats: GenerationStats) -> None:
        desired = self.FIELDS + tuple(sorted(stats.extras))
        if self._fieldnames is None:
            self._fieldnames = desired
        self._ensure_columns(desired)
        if self._writer is None:
            self._writer = csv.DictWriter(
                self._stream,
                fieldnames=self._fieldnames,
                restval=0,
                extrasaction="ignore",
            )
            if not self._has_content:
                self._writer.writeheader()
                self._has_content = True
        row = {field: getattr(stats, field) for field in self.FIELDS}
        row.update(stats.extras)
        self._writer.writerow(row)
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "CSVReporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReporterSet:
    """Fans one generation event out to many reporters."""

    def __init__(self, reporters: list[Reporter] | None = None):
        self._reporters: list[Reporter] = list(reporters or [])

    def add(self, reporter: Reporter) -> None:
        """Register a reporter; re-adding the same object is a no-op
        (a re-attached monitor must not receive every event twice)."""
        if not any(existing is reporter for existing in self._reporters):
            self._reporters.append(reporter)

    def remove(self, reporter: Reporter) -> None:
        self._reporters.remove(reporter)

    def on_generation(self, stats: GenerationStats) -> None:
        for reporter in self._reporters:
            reporter.on_generation(stats)

    def __len__(self) -> int:
        return len(self._reporters)


def render_csv(history: list[GenerationStats]) -> str:
    """Render a finished run's history as a CSV string."""
    buffer = io.StringIO()
    reporter = CSVReporter(buffer)
    for stats in history:
        reporter.on_generation(stats)
    return buffer.getvalue()
