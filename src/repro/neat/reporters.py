"""Run reporters: observability for long evolution runs.

A reporter receives a callback after every completed generation.  The
platform attaches whichever reporters the deployment wants — a console
line per generation for interactive runs, a CSV log for later analysis
(the Fig 2/4 trace machinery uses the same records).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Protocol

from repro.neat.population import GenerationStats

__all__ = ["Reporter", "ConsoleReporter", "CSVReporter", "ReporterSet"]


class Reporter(Protocol):
    """Anything that wants per-generation notifications."""

    def on_generation(self, stats: GenerationStats) -> None: ...


class ConsoleReporter:
    """One status line per generation, neat-python style."""

    def __init__(self, stream=None, every: int = 1):
        if every < 1:
            raise ValueError("every must be >= 1")
        self._stream = stream
        self._every = every

    def on_generation(self, stats: GenerationStats) -> None:
        if stats.generation % self._every:
            return
        line = (
            f"gen {stats.generation:4d}  "
            f"best {stats.best_fitness:10.2f}  "
            f"mean {stats.mean_fitness:10.2f}  "
            f"species {stats.num_species:3d}  "
            f"size {stats.mean_nodes:5.1f}n/{stats.mean_connections:5.1f}c"
        )
        for key in sorted(stats.extras):
            line += f"  {key} {stats.extras[key]:g}"
        print(line, file=self._stream)


class CSVReporter:
    """Appends one CSV row per generation to a stream or path."""

    FIELDS = (
        "generation",
        "best_fitness",
        "mean_fitness",
        "num_species",
        "mean_nodes",
        "mean_connections",
        "population_size",
    )

    def __init__(self, target, append: bool = False):
        """``target`` is a file path (str/Path) or a text stream.

        With ``append`` the file is opened in append mode and the
        header row is skipped when the target already has content —
        the resume flow uses this so continuing a checkpointed run
        extends its CSV history instead of truncating it.
        """
        has_content = False
        if isinstance(target, (str,)) or hasattr(target, "__fspath__"):
            if append:
                try:
                    has_content = os.path.getsize(target) > 0
                except OSError:
                    has_content = False
            self._stream = open(target, "a" if append else "w", newline="")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
            if append:
                try:
                    has_content = self._stream.tell() > 0
                except (OSError, ValueError):
                    has_content = False
        # the header is written lazily at the first row so backend
        # extras (sorted, after the fixed fields) can extend it; extras
        # appearing only in later generations are dropped from the CSV
        # (a file's column set is fixed by its header)
        self._has_content = has_content
        self._writer: csv.DictWriter | None = None

    def on_generation(self, stats: GenerationStats) -> None:
        if self._writer is None:
            fieldnames = self.FIELDS + tuple(sorted(stats.extras))
            self._writer = csv.DictWriter(
                self._stream,
                fieldnames=fieldnames,
                restval=0,
                extrasaction="ignore",
            )
            if not self._has_content:
                self._writer.writeheader()
        row = {field: getattr(stats, field) for field in self.FIELDS}
        row.update(stats.extras)
        self._writer.writerow(row)
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "CSVReporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReporterSet:
    """Fans one generation event out to many reporters."""

    def __init__(self, reporters: list[Reporter] | None = None):
        self._reporters: list[Reporter] = list(reporters or [])

    def add(self, reporter: Reporter) -> None:
        self._reporters.append(reporter)

    def remove(self, reporter: Reporter) -> None:
        self._reporters.remove(reporter)

    def on_generation(self, stats: GenerationStats) -> None:
        for reporter in self._reporters:
            reporter.on_generation(stats)

    def __len__(self) -> int:
        return len(self._reporters)


def render_csv(history: list[GenerationStats]) -> str:
    """Render a finished run's history as a CSV string."""
    buffer = io.StringIO()
    reporter = CSVReporter(buffer)
    for stats in history:
        reporter.on_generation(stats)
    return buffer.getvalue()
