"""The NEAT generation loop (Fig 1(a)).

``Population.run`` alternates the paper's two phases:

* **Evaluate** — delegated to a caller-supplied function over the whole
  population at once.  This is deliberate: E3 offloads exactly this
  call to the INAX backend, while the SW-only baseline evaluates on the
  CPU.  The population itself never knows which backend ran.
* **Evolve** — speciate, cull stagnation, reproduce (elitism, crossover,
  mutation); all on the "CPU" side of the co-design split.

An optional profiler (anything with ``record(phase, seconds)``) receives
the per-phase wall-clock times that regenerate Fig 1(b) and Fig 9(d).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker
from repro.neat.reproduction import Reproduction
from repro.neat.species import SpeciesSet
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import span as _span

__all__ = ["Population", "GenerationStats", "PhaseRecorder"]

EvaluateFn = Callable[[list[Genome]], None]


class PhaseRecorder(Protocol):
    """Minimal profiler interface the population reports into."""

    def record(self, phase: str, seconds: float) -> None: ...


class _NullRecorder:
    def record(self, phase: str, seconds: float) -> None:
        pass


@dataclass
class GenerationStats:
    """Summary of one completed generation.

    ``extras`` carries backend-contributed columns (quarantine counts,
    shard retries, oversize totals, ...) gathered from
    :attr:`Population.stat_sources` — reporters render them after the
    fixed fields.
    """

    generation: int
    best_fitness: float
    mean_fitness: float
    num_species: int
    best_genome_key: int
    mean_nodes: float
    mean_connections: float
    population_size: int
    extras: dict[str, float] = field(default_factory=dict)


@dataclass
class RunResult:
    """Outcome of a :meth:`Population.run` call."""

    best_genome: Genome
    generations: int
    solved: bool
    history: list[GenerationStats] = field(default_factory=list)


class Population:
    """A NEAT population evolving against a fitness function."""

    def __init__(
        self,
        config: NEATConfig,
        seed: int | None = None,
        profiler: PhaseRecorder | None = None,
        seed_genome: Genome | None = None,
        key_offset: int = 0,
    ):
        """``seed_genome`` warm-starts the population from a deployed
        champion (the model-tuning use-case, §I) instead of from the
        minimal two-layer topology.

        ``key_offset`` shifts this population's genome key space — the
        island model gives each island a disjoint stride so genome keys
        (and therefore per-(genome, episode) evaluation seeds) never
        collide across islands."""
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.tracker = InnovationTracker(config.num_outputs)
        self.reproduction = Reproduction(config, self.tracker)
        if key_offset:
            self.reproduction._next_genome_key = key_offset
        self.species_set = SpeciesSet(config)
        self.generation = 0
        self.profiler: PhaseRecorder = profiler or _NullRecorder()
        self.best_genome: Genome | None = None
        self.history: list[GenerationStats] = []
        #: callables returning ``dict[str, float]`` merged into each
        #: generation's :attr:`GenerationStats.extras` (the platform
        #: registers the backend's ``reporter_columns`` here)
        self.stat_sources: list[Callable[[], dict[str, float]]] = []
        # filled lazily to avoid a circular import at module load
        from repro.neat.reporters import ReporterSet

        self.reporters = ReporterSet()

        if seed_genome is not None:
            self.tracker.prime_from_genome(seed_genome)
            self.population = self.reproduction.create_population_from_seed(
                seed_genome, self.rng
            )
        else:
            self.population = self.reproduction.create_initial_population(
                self.rng
            )
        self.species_set.speciate(self.population, self.generation, self.rng)

    # ----------------------------------------------------------- running
    def run(
        self,
        evaluate: EvaluateFn,
        max_generations: int | None = None,
        fitness_threshold: float | None = None,
        drain: Callable[[], None] | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> RunResult:
        """Run evaluate/evolve loops until solved or out of generations.

        ``drain`` (optional) is the backend's deferred-bookkeeping hook:
        when given, each generation's evolve phase runs concurrently
        with it (the pipeline's evolve/evaluate overlap — see
        :meth:`advance`).

        ``stop`` (optional) is a cooperative cancellation probe checked
        at each generation boundary (the serve layer passes the job's
        cancel flag): when it returns True the loop exits cleanly with
        the population in a checkpointable state.  A never-evaluated
        population still runs one generation first, so the result
        always carries a real champion.
        """
        limit = (
            max_generations
            if max_generations is not None
            else self.config.max_generations
        )
        threshold = (
            fitness_threshold
            if fitness_threshold is not None
            else self.config.fitness_threshold
        )
        solved = False
        for _ in range(limit):
            if (
                stop is not None
                and self.best_genome is not None
                and stop()
            ):
                break
            best = self.advance(evaluate, drain=drain)
            if threshold is not None and best.fitness is not None:
                if best.fitness >= threshold:
                    solved = True
                    break
        assert self.best_genome is not None
        return RunResult(
            best_genome=self.best_genome,
            generations=self.generation,
            solved=solved,
            history=list(self.history),
        )

    def advance(
        self, evaluate: EvaluateFn, drain: Callable[[], None] | None = None
    ) -> Genome:
        """Run one evaluate + evolve cycle; returns the generation's best.

        With ``drain``, the backend's deferred generation bookkeeping
        (workload/cycle pricing — every fitness is already set) runs on
        a background thread *while* this population evolves generation
        g+1, and is joined before the method returns — the CPU's evolve
        phase and the backend's drain overlap instead of serializing.
        The drain touches no RNG and no genomes, so the evolved
        population is bit-identical either way; the join wait is
        recorded as the ``overlap`` phase.
        """
        t0 = time.perf_counter()
        with _span(
            "phase.evaluate",
            generation=self.generation,
            population=len(self.population),
        ):
            evaluate(self.population)
        self.profiler.record("evaluate", time.perf_counter() - t0)

        best = self.observe_evaluated()
        if drain is None:
            self._evolve()
        else:
            self._evolve_overlapped(drain)
        return best

    def observe_evaluated(self) -> Genome:
        """Book the just-evaluated generation; returns its best genome.

        The first half of :meth:`advance`, exposed so drivers that
        evaluate several populations together (the island model) can
        observe each population between the shared evaluate call and
        the per-population :meth:`evolve`.
        """
        missing = [g.key for g in self.population if g.fitness is None]
        if missing:
            raise RuntimeError(
                f"evaluate() left genomes without fitness: {missing[:5]}"
            )

        best = max(self.population, key=lambda g: g.fitness)  # type: ignore[arg-type]
        if (
            self.best_genome is None
            or self.best_genome.fitness is None
            or best.fitness > self.best_genome.fitness  # type: ignore[operator]
        ):
            self.best_genome = best.copy()

        self._record_stats(best)
        return best

    def evolve(self) -> None:
        """Run the evolve phase alone (the second half of
        :meth:`advance`); island drivers call this after migration."""
        self._evolve()

    # --------------------------------------------------------- migration
    def emigrants(self, count: int) -> list[Genome]:
        """Copies of the ``count`` fittest members (migration payload).

        Deterministic order: fitness descending, genome key ascending
        as the tie-break.  Returns copies so the donor island keeps its
        champions — migration *spreads* genes, it never drains them.
        """
        ranked = sorted(
            (g for g in self.population if g.fitness is not None),
            key=lambda g: (-g.fitness, g.key),  # type: ignore[operator]
        )
        return [g.copy() for g in ranked[:count]]

    def admit(self, immigrants: list[Genome]) -> None:
        """Replace the worst residents with ``immigrants`` (cloned into
        this island's key space), then re-speciate.

        Victims are the lowest-fitness members (unevaluated first,
        key-descending tie-break — newest duplicates go first).
        Re-speciation is mandatory: species member lists hold object
        references, and a stale reference to a replaced resident would
        corrupt the next evolve.  ``speciate`` draws nothing from the
        RNG, so admitting immigrants does not perturb the island's
        random stream.
        """
        if not immigrants:
            return
        victims = sorted(
            self.population,
            key=lambda g: (
                g.fitness if g.fitness is not None else float("-inf"),
                -g.key,
            ),
        )[: len(immigrants)]
        for immigrant, victim in zip(immigrants, victims):
            clone = immigrant.copy(self.reproduction.fresh_key())
            for index, resident in enumerate(self.population):
                if resident is victim:
                    self.population[index] = clone
                    break
        self.species_set.speciate(self.population, self.generation, self.rng)

    def _evolve_overlapped(self, drain: Callable[[], None]) -> None:
        """Evolve while the backend drains; re-raise drain errors here."""
        outcome: dict[str, BaseException] = {}

        def _run_drain() -> None:
            try:
                drain()
            except BaseException as error:  # repro: noqa[RES001]
                # stored, then re-raised on the main thread after join —
                # a drain failure must fail the run, not vanish with the
                # worker thread
                outcome["error"] = error

        thread = threading.Thread(
            target=_run_drain, name="backend-drain", daemon=True
        )
        thread.start()
        self._evolve()
        t0 = time.perf_counter()
        with _span("phase.overlap", generation=self.generation):
            thread.join()
        self.profiler.record("overlap", time.perf_counter() - t0)
        if "error" in outcome:
            raise outcome["error"]

    # ------------------------------------------------------------ evolve
    def _evolve(self) -> None:
        rng = self.rng

        t0 = time.perf_counter()
        with _span("phase.stagnation", generation=self.generation):
            self.species_set.update_fitnesses(self.generation)
            self.species_set.remove_stagnant(self.generation)
        self.profiler.record("stagnation", time.perf_counter() - t0)

        t0 = time.perf_counter()
        with _span("phase.reproduce", generation=self.generation):
            self.population = self.reproduction.reproduce(
                self.species_set, self.generation, rng
            )
        self.profiler.record("reproduce", time.perf_counter() - t0)

        self.generation += 1
        self.tracker.reset_generation()

        t0 = time.perf_counter()
        with _span("phase.speciate", generation=self.generation):
            self.species_set.speciate(self.population, self.generation, rng)
        self.profiler.record("speciate", time.perf_counter() - t0)

    def _record_stats(self, best: Genome) -> None:
        fitnesses = [g.fitness for g in self.population if g.fitness is not None]
        extras: dict[str, float] = {}
        for source in self.stat_sources:
            extras.update(source())
        stats = GenerationStats(
            generation=self.generation,
            best_fitness=float(best.fitness),  # type: ignore[arg-type]
            mean_fitness=float(np.mean(fitnesses)) if fitnesses else 0.0,
            num_species=len(self.species_set),
            best_genome_key=best.key,
            mean_nodes=float(
                np.mean([g.num_nodes(self.config) for g in self.population])
            ),
            mean_connections=float(
                np.mean([g.num_enabled_connections for g in self.population])
            ),
            population_size=len(self.population),
            extras=extras,
        )
        self.history.append(stats)
        registry = get_metrics()
        if registry is not None:
            registry.counter("neat.generations").inc()
            registry.gauge("neat.best_fitness").set(stats.best_fitness)
            registry.gauge("neat.mean_fitness").set(stats.mean_fitness)
            registry.gauge("neat.num_species").set(stats.num_species)
            registry.gauge("neat.population_size").set(stats.population_size)
        self.reporters.on_generation(stats)
