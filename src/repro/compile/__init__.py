"""Structural-batching genome compiler for the software path.

The software backends pay a per-genome *decode* cost every generation:
``CreateNet`` pruning + ASAP layering, the ``_NetPlan`` lowering, and
the HW-config compilation.  The ``cpu-fast`` decode cache keys on
:meth:`~repro.neat.genome.Genome.structural_hash`, which includes
weights — so only unchanged elites ever hit, and the weight-mutated
bulk of every generation re-decodes from scratch even though its
*topology* is identical to its parents'.

This package exploits that: genomes bucket by
:meth:`~repro.neat.genome.Genome.shape_key` (the weights-excluded
topology signature), each shape compiles **once** into a
:class:`CompiledStructure` (the shared execution plan plus parameter
fill recipes), and a generation's members become stacked weight/bias
tensors over that shared plan — so an entire bucket advances one
lock-step env step in a single batched matmul instead of per-genome
graph walks, and the cross-generation :class:`CompileCache` keeps
hitting where the decode cache misses.

Pieces:

* :class:`CompiledStructure` — one topology signature's compiled plan
  (reuses :class:`~repro.neat.vectorized._NetPlan`) plus the recipes
  that fill any same-shape genome's weights/biases into plan layout;
* :class:`CompileCache` — cross-generation LRU keyed by shape key,
  warmable from a restored checkpoint population;
* :class:`CompiledBucket` — stacked ``(B, rows, fan_in)`` parameter
  tensors for one bucket, with a fused batched forward;
* :class:`CompiledPopulationEvaluator` — lock-step inference over a
  mixed-shape generation, delegating the per-tick work to the shared
  :class:`~repro.neat.vectorized.PopulationEvaluator` engine via
  per-member parameter views (bit-identical to ``cpu``/``cpu-fast``).

The ``cpu-compiled`` backend in :mod:`repro.core.backends` wires this
into the evaluation loop.
"""

from repro.compile.cache import CompileCache
from repro.compile.evaluator import CompiledBucket, CompiledPopulationEvaluator
from repro.compile.structure import CompiledStructure

__all__ = [
    "CompiledStructure",
    "CompileCache",
    "CompiledBucket",
    "CompiledPopulationEvaluator",
]
