"""Cross-generation compile cache: shape key -> compiled structure.

The decode cache (``cpu-fast``) keys on the *weighted* structural hash,
so only unchanged elites hit.  This cache keys on the weights-excluded
:meth:`~repro.neat.genome.Genome.shape_key`: weight-mutated offspring —
the bulk of every generation — reuse their parents' compiled structure,
so steady-state generations build almost nothing.

``warm()`` exists for checkpoint resume: ``load_checkpoint`` restores
the population but no cache state, and a cold cache silently recompiles
everything on the first post-resume generation.  Warming from the
restored genomes (counted separately — neither a hit nor a miss)
restores steady-state hit rates immediately.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.compile.structure import CompiledStructure
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.telemetry.spans import span as _span

__all__ = ["CompileCache"]


class CompileCache:
    """LRU of shape key -> :class:`CompiledStructure`."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: structures inserted by :meth:`warm` (resume warm-start), kept
        #: out of hits/misses so hit-rate telemetry stays honest
        self.warmed = 0
        self._entries: OrderedDict[str, CompiledStructure] = OrderedDict()

    def get(self, genome: Genome, config: NEATConfig) -> CompiledStructure:
        key = genome.shape_key()
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        return self._build(key, genome, config)

    def warm(self, genome: Genome, config: NEATConfig) -> bool:
        """Pre-populate from ``genome`` without touching hit/miss counts.

        Returns True when a structure was actually built (False: its
        shape was already cached).
        """
        key = genome.shape_key()
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        self.warmed += 1
        self._build(key, genome, config, warm=True)
        return True

    def _build(
        self, key: str, genome: Genome, config: NEATConfig, warm: bool = False
    ) -> CompiledStructure:
        with _span("compile.build", shape=key[:12], warm=warm):
            entry = CompiledStructure.from_genome(genome, config)
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def info(self) -> dict[str, int]:
        """Statistics in the decode cache's reporting shape."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._entries),
            "warmed": self.warmed,
        }

    def __len__(self) -> int:
        return len(self._entries)
