"""One topology signature, compiled once; parameters filled per genome.

A :class:`CompiledStructure` is everything about a decoded network that
the shape key determines: the pruned/layered topology, the padded
``_NetPlan`` index matrices, activation grouping, and the *recipes*
(node keys and ingress connection keys in plan order) needed to fill
any same-shape genome's weights and biases into that layout without
re-running ``CreateNet``.  The contract is pinned by
:meth:`repro.neat.genome.Genome.shape_key`: two genomes with equal
shape keys decode to identical structure, so they may share one
compiled plan and differ only in the parameter tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inax.compiler import HWNetConfig
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork, NodeEval

# the compiled plan reuses cpu-fast's private lowering on purpose: one
# arithmetic implementation means one bit-identity proof obligation
from repro.neat.vectorized import _LayerPlan, _NetPlan

__all__ = ["CompiledStructure"]


@dataclass(frozen=True)
class _RowRecipe:
    """How to fill one plan row from any same-shape genome."""

    key: int
    activation: str
    aggregation: str
    #: ingress source keys in plan term order (sorted; weight-independent)
    sources: tuple[int, ...]


class CompiledStructure:
    """Shared execution plan + parameter fill recipes for one shape.

    ``plan`` is ``None`` when the shape does not vectorize (exotic
    aggregation/activation); the recipes still work, so the HW config
    lowering stays cheap and the backend can fall back to the
    interpreted path for those genomes.
    """

    __slots__ = (
        "shape_key",
        "input_keys",
        "output_keys",
        "rows",
        "plan",
        "_fill_plan",
    )

    def __init__(
        self,
        shape_key: str,
        input_keys: tuple[int, ...],
        output_keys: tuple[int, ...],
        rows: tuple[tuple[_RowRecipe, ...], ...],
        plan: _NetPlan | None,
    ):
        self.shape_key = shape_key
        self.input_keys = input_keys
        self.output_keys = output_keys
        self.rows = rows
        self.plan = plan
        self._fill_plan = None

    @classmethod
    def from_genome(
        cls, genome: Genome, config: NEATConfig
    ) -> "CompiledStructure":
        """Decode once (CreateNet + plan lowering) for this shape."""
        net = FeedForwardNetwork.create(genome, config)
        rows = tuple(
            tuple(
                _RowRecipe(
                    key=key,
                    activation=net.node_evals[key].activation,
                    aggregation=net.node_evals[key].aggregation,
                    sources=tuple(
                        src for src, _ in net.node_evals[key].ingress
                    ),
                )
                for key in layer
            )
            for layer in net.layers
        )
        try:
            plan = _NetPlan(net)
        except ValueError:
            plan = None
        return cls(
            shape_key=genome.shape_key(),
            input_keys=tuple(net.input_keys),
            output_keys=tuple(net.output_keys),
            rows=rows,
            plan=plan,
        )

    # -------------------------------------------------------- parameters
    def fill_parameters(
        self, genome: Genome
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per-layer ``(weights, biases)`` in plan layout for ``genome``.

        Shapes match the plan's padded matrices exactly — padded terms
        stay ``(slot 0, weight 0.0)`` just like ``_NetPlan`` builds them,
        so the batched forward is bit-identical to decoding the genome
        itself.
        """
        plan = self.plan
        if plan is None:
            raise ValueError(
                f"shape {self.shape_key[:12]} is not vectorizable"
            )
        params = [
            (np.zeros_like(base.weights), np.empty_like(base.biases))
            for base in plan.layers
        ]
        self.fill_parameters_into(genome, params)
        return params

    def fill_parameters_into(
        self,
        genome: Genome,
        params: list[tuple[np.ndarray, np.ndarray]],
    ) -> None:
        """Fill ``genome``'s weights/biases into preallocated layers.

        ``params`` aligns with ``plan.layers``; weight arrays must
        arrive zeroed (padded terms stay ``(slot 0, weight 0.0)``).
        The fill runs off a precomputed per-layer index plan — one
        fancy-indexed assignment per layer instead of a Python loop
        per matrix element — because this is the entire per-genome
        cost of the compiled path and shows up directly in the
        decode-vs-compile speedup.
        """
        if self.plan is None:
            raise ValueError(
                f"shape {self.shape_key[:12]} is not vectorizable"
            )
        if self._fill_plan is None:
            fill_plan = []
            for layer_rows in self.rows:
                bias_keys = tuple(recipe.key for recipe in layer_rows)
                conn_keys = tuple(
                    (src, recipe.key)
                    for recipe in layer_rows
                    for src in recipe.sources
                )
                row_index = np.array(
                    [
                        row
                        for row, recipe in enumerate(layer_rows)
                        for _ in recipe.sources
                    ],
                    dtype=np.intp,
                )
                term_index = np.array(
                    [
                        term
                        for recipe in layer_rows
                        for term in range(len(recipe.sources))
                    ],
                    dtype=np.intp,
                )
                fill_plan.append(
                    (bias_keys, conn_keys, row_index, term_index)
                )
            self._fill_plan = fill_plan
        nodes = genome.nodes
        connections = genome.connections
        for (bias_keys, conn_keys, row_index, term_index), (
            weights,
            biases,
        ) in zip(self._fill_plan, params):
            biases[:] = [nodes[key].bias for key in bias_keys]
            if conn_keys:
                weights[row_index, term_index] = [
                    connections[key].weight for key in conn_keys
                ]

    def member_plan(
        self, params: list[tuple[np.ndarray, np.ndarray]]
    ) -> _NetPlan:
        """A per-member plan: shared structure arrays, private params.

        The returned plan aliases the structure's ``sources`` /
        ``act_groups`` / ``slots`` arrays (the lock-step engine only
        reads them) and carries the member's own weight/bias arrays —
        typically views into a bucket's stacked tensors.
        """
        plan = self.plan
        if plan is None:
            raise ValueError(
                f"shape {self.shape_key[:12]} is not vectorizable"
            )
        member = object.__new__(_NetPlan)
        member.num_inputs = plan.num_inputs
        member.num_outputs = plan.num_outputs
        member.num_slots = plan.num_slots
        member.output_slots = plan.output_slots
        member.layers = [
            _LayerPlan(
                base.sources, weights, biases, base.act_groups, base.slots
            )
            for base, (weights, biases) in zip(plan.layers, params)
        ]
        return member

    # --------------------------------------------------------- HW config
    def hw_config(self, genome: Genome) -> HWNetConfig:
        """Lower ``genome`` to its HW configuration via the recipes.

        Equal, field for field, to
        :func:`repro.inax.compiler.compile_genome` — ingress order is
        sorted by source key, which the recipes preserve — but skips
        the per-genome ``CreateNet`` decode entirely.
        """
        nodes = genome.nodes
        connections = genome.connections
        layers = tuple(
            tuple(
                NodeEval(
                    key=recipe.key,
                    bias=nodes[recipe.key].bias,
                    activation=recipe.activation,
                    aggregation=recipe.aggregation,
                    ingress=tuple(
                        (src, connections[(src, recipe.key)].weight)
                        for src in recipe.sources
                    ),
                )
                for recipe in layer_rows
            )
            for layer_rows in self.rows
        )
        return HWNetConfig(
            input_keys=self.input_keys,
            output_keys=self.output_keys,
            layers=layers,
        )
