"""Fused bucket evaluation: stacked parameters over shared plans.

A *bucket* is every member of a generation sharing one shape key.  Its
weights and biases stack into ``(B, rows, fan_in)`` / ``(B, rows)``
tensors over the shape's single compiled plan, so one batched matmul
per layer advances the whole bucket — the software analogue of mapping
same-topology individuals onto identically-configured PUs.

For the env-facing lock-step loop, where a generation mixes many
shapes and the alive set shrinks as episodes terminate,
:class:`CompiledPopulationEvaluator` hands per-member parameter *views*
into those stacks to the proven
:class:`~repro.neat.vectorized.PopulationEvaluator` engine — same
flattened tensors, same term-by-term accumulation order, so fitness is
bit-identical to the ``cpu``/``cpu-fast`` paths by construction.
"""

from __future__ import annotations

import numpy as np

from repro.compile.structure import CompiledStructure
from repro.neat.genome import Genome
from repro.neat.vectorized import PopulationEvaluator, _apply_activations

__all__ = ["CompiledBucket", "CompiledPopulationEvaluator"]


class CompiledBucket:
    """One shape's members with stacked parameter tensors."""

    def __init__(self, structure: CompiledStructure, genomes: list[Genome]):
        if structure.plan is None:
            raise ValueError(
                f"shape {structure.shape_key[:12]} is not vectorizable"
            )
        if not genomes:
            raise ValueError("a bucket needs at least one genome")
        self.structure = structure
        self.genomes = list(genomes)
        plan = structure.plan
        size = len(genomes)
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for base in plan.layers:
            self.weights.append(
                np.zeros((size,) + base.weights.shape)
            )
            self.biases.append(np.empty((size,) + base.biases.shape))
        # parameters fill straight into the stack rows; duplicate
        # members (episode slots of one genome) fill once and copy —
        # the fill recipe walk is the per-member cost here
        levels = range(len(plan.layers))
        filled: dict[int, int] = {}
        for member, genome in enumerate(genomes):
            first = filled.get(id(genome))
            if first is None:
                structure.fill_parameters_into(
                    genome,
                    [
                        (self.weights[level][member],
                         self.biases[level][member])
                        for level in levels
                    ],
                )
                filled[id(genome)] = member
            else:
                for level in levels:
                    self.weights[level][member] = self.weights[level][first]
                    self.biases[level][member] = self.biases[level][first]

    @property
    def size(self) -> int:
        return len(self.genomes)

    def member_plans(self):
        """Per-member plans whose params are views into the stacks."""
        return [
            self.structure.member_plan(
                [
                    (self.weights[level][member], self.biases[level][member])
                    for level in range(len(self.weights))
                ]
            )
            for member in range(self.size)
        ]

    def activate(self, inputs: np.ndarray) -> np.ndarray:
        """One fused step: ``(B, num_inputs)`` -> ``(B, num_outputs)``.

        Every member advances in the same batched ops — the arithmetic
        (term-by-term accumulation in ingress order) mirrors
        :meth:`VectorizedNetwork.activate_batch` exactly, so row ``b``
        equals evaluating ``genomes[b]`` alone.
        """
        plan = self.structure.plan
        x = np.asarray(inputs, dtype=np.float64)
        if x.shape != (self.size, plan.num_inputs):
            raise ValueError(
                f"expected ({self.size}, {plan.num_inputs}) inputs, "
                f"got {x.shape}"
            )
        values = np.zeros((self.size, plan.num_slots))
        values[:, : plan.num_inputs] = x
        for level, base in enumerate(plan.layers):
            gathered = values[:, base.sources]  # (B, rows, fan_in)
            products = gathered * self.weights[level]
            acc = np.zeros(products.shape[:2])
            for term in range(products.shape[2]):
                acc += products[:, :, term]
            pre = acc + self.biases[level]
            values[:, base.slots] = _apply_activations(base, pre)
        out = np.zeros((self.size, plan.num_outputs))
        visible = plan.output_slots >= 0
        out[:, visible] = values[:, plan.output_slots[visible]]
        return out


class CompiledPopulationEvaluator:
    """Lock-step inference over a mixed-shape generation.

    ``members`` is the slot-ordered ``(structure, genome)`` list — one
    entry per (genome, episode) slot, exactly how the backend lays out
    its lock-step envs.  Slots bucket by compiled structure; the
    flattened engine then runs all buckets in one pass per tick.
    """

    def __init__(self, members: list[tuple[CompiledStructure, Genome]]):
        if not members:
            raise ValueError(
                "CompiledPopulationEvaluator needs at least one member"
            )
        grouped: dict[int, tuple[CompiledStructure, list[int]]] = {}
        for slot, (structure, genome) in enumerate(members):
            bucket = grouped.get(id(structure))
            if bucket is None:
                grouped[id(structure)] = (structure, [slot])
            else:
                bucket[1].append(slot)
        self.buckets: list[CompiledBucket] = []
        plans: list = [None] * len(members)
        for structure, slots in grouped.values():
            bucket = CompiledBucket(
                structure, [members[slot][1] for slot in slots]
            )
            self.buckets.append(bucket)
            for plan, slot in zip(bucket.member_plans(), slots):
                plans[slot] = plan
        self._flat = PopulationEvaluator.from_plans(plans)

    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    @property
    def rebuilds(self) -> int:
        return self._flat.rebuilds

    def infer(
        self, observations: dict[int, np.ndarray]
    ) -> dict[int, np.ndarray]:
        """One lock-step tick: ``{slot: obs}`` -> ``{slot: raw output}``."""
        return self._flat.infer(observations)
