"""DMA channel model (§IV-B).

E3 moves data between the CPU's DRAM and INAX over DMA with three data
channels — weight (NN configurations), input (observations), output
(action values) — plus a sig channel for start/done handshakes.  Each
transfer pays a fixed initiation latency plus a bandwidth-limited
streaming cost; the channels are shared across PUs, which is why
population-wide set-up is serialized while per-PU decode is parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DMAModel"]


@dataclass(frozen=True)
class DMAModel:
    """Cycle cost model for one shared DMA channel."""

    #: words moved per cycle once streaming
    words_per_cycle: float = 4.0
    #: fixed initiation cost per transfer (descriptor + handshake)
    latency_cycles: int = 8

    def transfer_cycles(self, words: int) -> int:
        """Cycles to move ``words`` words (0 words -> 0 cycles)."""
        if words < 0:
            raise ValueError(f"negative transfer size: {words}")
        if words == 0:
            return 0
        return self.latency_cycles + math.ceil(words / self.words_per_cycle)

    def retry_cycles(self, words: int, retries: int = 1) -> int:
        """Extra cycles to re-send a dropped transfer ``retries`` times.

        A dropped transfer pays the full descriptor + streaming cost
        again per retry (the sig channel detects the drop; the model
        charges no separate detection cost).
        """
        if retries < 0:
            raise ValueError(f"negative retry count: {retries}")
        return retries * self.transfer_cycles(words)
