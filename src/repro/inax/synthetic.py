"""Synthetic irregular-network workloads for the HW sweeps.

The paper's parallelism studies (Fig 6, 7, 9(a); footnote 3) run on
synthetic populations with controlled shape: "num individuals: 200,
num inputs: 8, num outputs: 4, num hidden nodes: 30, sparsity rate:
0.2".  This module generates random irregular feed-forward genomes with
exactly those knobs, so the sweeps are reproducible without running
evolution first.

The generated genomes are irregular sparse MLPs in the sense of
Fig 4(a): hidden nodes sit in ``num_hidden_layers`` wide layers, but
connections are sampled between *any* earlier/later pair — links
routinely skip layers, fan-in varies node to node, and density can
exceed the dense counterpart's.  Structural anchors keep the decoded
(ASAP) layering equal to the generated one: every node keeps at least
one ingress from the directly preceding layer, and every output is fed
from the last hidden layer, so the output layer's width is exactly
``num_outputs`` — the constant §V-A's PE heuristic keys on.
"""

from __future__ import annotations

import numpy as np

from repro.inax.compiler import HWNetConfig, compile_genome
from repro.neat.config import NEATConfig
from repro.neat.genes import ConnectionGene, NodeGene
from repro.neat.genome import Genome
from repro.neat.innovation import InnovationTracker

__all__ = ["random_irregular_genome", "synthetic_population", "PAPER_DEFAULTS"]

#: Footnote 3 defaults for the §V sweeps.
PAPER_DEFAULTS = {
    "num_individuals": 200,
    "num_inputs": 8,
    "num_outputs": 4,
    "num_hidden": 30,
    "sparsity": 0.2,
}


def random_irregular_genome(
    key: int,
    config: NEATConfig,
    num_hidden: int,
    sparsity: float,
    rng: np.random.Generator,
    tracker: InnovationTracker | None = None,
    num_hidden_layers: int = 1,
) -> Genome:
    """A random irregular feed-forward genome.

    Hidden nodes are split across ``num_hidden_layers`` layers; every
    (earlier, later) node pair — including pairs that skip layers — is
    connected with probability ``sparsity``.  Anchoring connections are
    then added so the decoded network keeps the generated layer widths
    (see module docstring).
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError(f"sparsity must be in [0, 1], got {sparsity}")
    if num_hidden < 0:
        raise ValueError("num_hidden must be >= 0")
    if num_hidden_layers < 1:
        raise ValueError("num_hidden_layers must be >= 1")
    num_hidden_layers = min(num_hidden_layers, num_hidden) or 1

    tracker = tracker or InnovationTracker(config.num_outputs)
    genome = Genome(key=key)
    for out_key in config.output_keys:
        genome.nodes[out_key] = NodeGene.random(out_key, config, rng)
    hidden_keys = [tracker.fresh_node_key() for _ in range(num_hidden)]
    for h in hidden_keys:
        genome.nodes[h] = NodeGene.random(h, config, rng)

    # layer assignment: inputs at 0, hidden at 1..L, outputs at L + 1
    layer_of: dict[int, int] = {k: 0 for k in config.input_keys}
    layers: list[list[int]] = [list(config.input_keys)]
    per_layer = -(-num_hidden // num_hidden_layers)  # ceil division
    for l in range(num_hidden_layers):
        members = hidden_keys[l * per_layer : (l + 1) * per_layer]
        layers.append(members)
        for h in members:
            layer_of[h] = l + 1
    layers = [layer for layer in layers if layer]  # drop empty hidden layers
    output_layer = len(layers)
    for out_key in config.output_keys:
        layer_of[out_key] = output_layer
    layers.append(list(config.output_keys))

    def add(src: int, dst: int) -> None:
        conn_key = (src, dst)
        if conn_key in genome.connections:
            return
        genome.connections[conn_key] = ConnectionGene.random(
            conn_key, tracker.connection_innovation(conn_key), config, rng
        )

    # sparse irregular connectivity: any earlier -> any later
    all_keys = [k for layer in layers for k in layer]
    for src in all_keys:
        for dst in all_keys:
            if layer_of[src] < layer_of[dst] and rng.random() < sparsity:
                add(src, dst)

    # anchors: every non-input node keeps an ingress from the previous
    # layer (preserves ASAP depth); every hidden node keeps an egress
    # (avoids dead-branch pruning)
    for depth in range(1, len(layers)):
        prev = layers[depth - 1]
        for node in layers[depth]:
            has_prev_ingress = any(
                (src, node) in genome.connections for src in prev
            )
            if not has_prev_ingress:
                add(prev[int(rng.integers(len(prev)))], node)
    for depth in range(1, len(layers) - 1):
        later = [k for layer in layers[depth + 1 :] for k in layer]
        for node in layers[depth]:
            has_egress = any(
                (node, dst) in genome.connections for dst in later
            )
            if not has_egress:
                add(node, later[int(rng.integers(len(later)))])
    return genome


def synthetic_population(
    num_individuals: int = PAPER_DEFAULTS["num_individuals"],
    num_inputs: int = PAPER_DEFAULTS["num_inputs"],
    num_outputs: int = PAPER_DEFAULTS["num_outputs"],
    num_hidden: int = PAPER_DEFAULTS["num_hidden"],
    sparsity: float = PAPER_DEFAULTS["sparsity"],
    num_hidden_layers: int = 1,
    seed: int | None = 0,
) -> list[HWNetConfig]:
    """A population of compiled synthetic individuals (footnote 3 setup)."""
    rng = np.random.default_rng(seed)
    config = NEATConfig(num_inputs=num_inputs, num_outputs=num_outputs)
    tracker = InnovationTracker(num_outputs)
    population = []
    for i in range(num_individuals):
        genome = random_irregular_genome(
            i,
            config,
            num_hidden,
            sparsity,
            rng,
            tracker,
            num_hidden_layers=num_hidden_layers,
        )
        population.append(compile_genome(genome, config))
    return population
