"""Fixed-point datapath model for the INAX PEs.

The paper's FPGA prototype computes in fixed-point (the DSP48 slices of
the XCZU7EV are integer MAC units); the software reference computes in
float64.  This module models the quantized datapath so the reproduction
can quantify the numeric gap the real HW/SW split would have had:

* weights, biases, and activations are stored in a Q(integer.fraction)
  two's-complement format with saturation;
* the MAC accumulates in a wide register (no intermediate rounding,
  matching DSP-slice behaviour);
* the activation unit's output is re-quantized before the value-buffer
  write-back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FixedPointFormat", "Q16", "Q8_8"]


@dataclass(frozen=True)
class FixedPointFormat:
    """A saturating signed fixed-point format Q(integer).(fraction)."""

    integer_bits: int = 8  # includes the sign bit
    fraction_bits: int = 8

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ValueError("integer_bits must be >= 1 (sign bit)")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be >= 0")

    @property
    def word_bits(self) -> int:
        return self.integer_bits + self.fraction_bits

    @property
    def resolution(self) -> float:
        """Smallest representable step."""
        return 2.0 ** -self.fraction_bits

    @property
    def max_value(self) -> float:
        return 2.0 ** (self.integer_bits - 1) - self.resolution

    @property
    def min_value(self) -> float:
        return -(2.0 ** (self.integer_bits - 1))

    def quantize(self, value: float) -> float:
        """Round-to-nearest with saturation."""
        if math.isnan(value):
            raise ValueError("cannot quantize NaN")
        scaled = round(value / self.resolution)
        quantized = scaled * self.resolution
        if quantized > self.max_value:
            return self.max_value
        if quantized < self.min_value:
            return self.min_value
        return quantized

    def quantization_error_bound(self) -> float:
        """Worst-case rounding error for in-range values."""
        return self.resolution / 2.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fraction_bits}"


#: 16-bit formats commonly used for edge inference datapaths
Q8_8 = FixedPointFormat(integer_bits=8, fraction_bits=8)
Q16 = FixedPointFormat(integer_bits=8, fraction_bits=8)  # alias
