"""Compile decoded networks into INAX hardware configurations.

The set-up phase (§IV-C2) ships each individual's NN configuration over
the weight channel: topology description, per-node bias/activation, and
per-connection weights.  :class:`HWNetConfig` is that payload — a
layered, ingress-annotated form the PU can execute directly, plus the
word counts the DMA and set-up cost models use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork, NodeEval

__all__ = ["HWNetConfig", "compile_network", "compile_genome", "compile_mlp"]


@dataclass(frozen=True)
class HWNetConfig:
    """One individual's configuration as shipped to a PU."""

    input_keys: tuple[int, ...]
    output_keys: tuple[int, ...]
    #: node evaluation plans grouped by topological layer
    layers: tuple[tuple[NodeEval, ...], ...]

    # ----------------------------------------------------------- queries
    @property
    def num_inputs(self) -> int:
        return len(self.input_keys)

    @property
    def num_outputs(self) -> int:
        return len(self.output_keys)

    @property
    def num_nodes(self) -> int:
        return sum(len(layer) for layer in self.layers)

    @property
    def num_connections(self) -> int:
        return sum(plan.fan_in for layer in self.layers for plan in layer)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def max_layer_width(self) -> int:
        return max((len(layer) for layer in self.layers), default=0)

    @property
    def max_fan_in(self) -> int:
        return max(
            (plan.fan_in for layer in self.layers for plan in layer), default=0
        )

    # -------------------------------------------------------- DMA sizing
    @property
    def config_words(self) -> int:
        """Weight-channel words for the set-up phase.

        One word per connection (weight + packed ids) plus two words per
        node (bias, activation/aggregation selectors + layer tag).
        """
        return self.num_connections + 2 * self.num_nodes

    @property
    def weight_buffer_words(self) -> int:
        """Words resident in the PU's weight buffer after decode."""
        return self.config_words

    @property
    def value_buffer_words(self) -> int:
        """Value-buffer footprint: every intermediate activation may be
        consumed by any later layer (§IV-D), so all node values plus the
        inputs stay resident."""
        return self.num_inputs + self.num_nodes

    def layer_sizes(self) -> list[int]:
        """Width per layer, inputs included."""
        return [self.num_inputs] + [len(layer) for layer in self.layers]


def compile_network(net: FeedForwardNetwork) -> HWNetConfig:
    """Lower a decoded feed-forward network to a HW configuration."""
    layers = tuple(
        tuple(net.node_evals[key] for key in layer) for layer in net.layers
    )
    return HWNetConfig(
        input_keys=tuple(net.input_keys),
        output_keys=tuple(net.output_keys),
        layers=layers,
    )


def compile_genome(genome: Genome, config: NEATConfig) -> HWNetConfig:
    """CreateNet + lowering in one call (the E3 per-individual path)."""
    return compile_network(FeedForwardNetwork.create(genome, config))


def compile_mlp(
    mlp,
    activation: str = "mlp_tanh",
    output_activation: str = "identity",
) -> HWNetConfig:
    """Lower a dense :class:`repro.rl.nn.MLP` to a HW configuration.

    INAX is "efficient for both regular and irregular NN" (Table VI);
    this is the regular path: a fixed-topology policy (RL or ES/GA)
    becomes a fully-connected layered configuration the same PUs can
    execute.  Hidden layers use ``activation`` (matching the MLP's own
    nonlinearity), the final layer ``output_activation`` (the MLP's
    last layer is linear).
    """
    from repro.neat.network import NodeEval

    sizes = mlp.sizes
    input_keys = tuple(-(i + 1) for i in range(sizes[0]))
    # node keys: outputs first (0..n_out-1), hidden numbered after
    num_outputs = sizes[-1]
    next_hidden = num_outputs
    previous: list[int] = list(input_keys)
    layers: list[tuple[NodeEval, ...]] = []
    for layer_index, layer in enumerate(mlp.layers):
        is_output = layer_index == len(mlp.layers) - 1
        width = layer.weight.shape[1]
        keys = (
            list(range(num_outputs))
            if is_output
            else list(range(next_hidden, next_hidden + width))
        )
        if not is_output:
            next_hidden += width
        plans = []
        for column, key in enumerate(keys):
            ingress = tuple(
                (previous[row], float(layer.weight[row, column]))
                for row in range(layer.weight.shape[0])
            )
            plans.append(
                NodeEval(
                    key=key,
                    bias=float(layer.bias[column]),
                    activation=output_activation if is_output else activation,
                    aggregation="sum",
                    ingress=ingress,
                )
            )
        layers.append(tuple(plans))
        previous = keys
    return HWNetConfig(
        input_keys=input_keys,
        output_keys=tuple(range(num_outputs)),
        layers=tuple(layers),
    )
