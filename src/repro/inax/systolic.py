"""Systolic-array (SA) baseline accelerator — the GeneSys comparison.

§VI-F contrasts INAX with the standard systolic-array structure GeneSys
[36] uses for "evaluate".  Because the workload is MLP-type, the SA here
is a 1-D systolic array, PU-parallelized exactly like INAX for fairness.

An SA executes *dense, layer-by-layer* matrix-vector products, so an
irregular evolved network costs it in two ways the paper names:

1. **zero filling** — the evolved network's missing connections are
   still streamed as zeros, since the array fetches the full previous
   layer for every output row;
2. **dummy-node padding** (Fig 4(d)) — a connection that skips layers
   forces the source value to be carried through pass-through nodes in
   every intermediate layer, inflating layer widths.

:func:`dense_counterpart_widths` computes those inflated widths;
:func:`sa_step_cycles` turns them into per-inference latency; and
:func:`schedule_generation_sa` reuses INAX's wave scheduler so Fig 11
compares the two structures under an identical episode schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.compiler import HWNetConfig
from repro.inax.timing import CycleReport

__all__ = [
    "SACosts",
    "dense_counterpart_widths",
    "sa_step_cycles",
    "sa_pe_active_cycles",
    "schedule_generation_sa",
]


@dataclass(frozen=True)
class SACosts:
    """1-D systolic array timing parameters."""

    #: cycles per streamed element once the pipeline is full
    stream_cycles_per_input: int = 1
    #: pipeline fill/drain per pass (one per PE in the chain)
    fill_drain_per_pe: int = 1
    #: barrier between layers (same role as the PU's layer sync)
    layer_sync_cycles: int = 2
    #: latch a new input vector
    input_load_cycles: int = 1


def dense_counterpart_widths(net: HWNetConfig) -> list[int]:
    """Effective (padded) layer widths of the dense MLP counterpart.

    Returns ``[inputs, width_1, ..., width_L]`` where each hidden/output
    width counts real nodes plus the dummy pass-through nodes needed to
    ferry skip-layer values (Fig 4(d)'s transparent nodes).
    """
    # depth of every value: inputs at 0, layer i nodes at i + 1
    depth: dict[int, int] = {k: 0 for k in net.input_keys}
    for layer_idx, layer in enumerate(net.layers):
        for plan in layer:
            depth[plan.key] = layer_idx + 1

    # deepest consumer of every value
    max_consumer: dict[int, int] = {}
    for layer in net.layers:
        for plan in layer:
            d = depth[plan.key]
            for src, _ in plan.ingress:
                max_consumer[src] = max(max_consumer.get(src, 0), d)

    num_layers = len(net.layers)
    widths = [net.num_inputs]
    for l in range(1, num_layers + 1):
        real = len(net.layers[l - 1])
        dummies = sum(
            1
            for key, d in depth.items()
            if d < l < max_consumer.get(key, 0)
        )
        widths.append(real + dummies)
    return widths


def sa_step_cycles(
    net: HWNetConfig, num_pes: int, costs: SACosts | None = None
) -> int:
    """Per-inference latency of the dense counterpart on a 1-D SA.

    A layer of ``m`` effective outputs over ``n_prev`` effective inputs
    on ``k`` PEs takes ``ceil(m / k)`` passes, each streaming the full
    ``n_prev`` input vector (zeros included) plus the chain fill/drain.
    """
    if num_pes < 1:
        raise ValueError("the SA needs at least one PE")
    costs = costs or SACosts()
    widths = dense_counterpart_widths(net)
    cycles = costs.input_load_cycles
    for n_prev, m in zip(widths, widths[1:]):
        passes = math.ceil(m / num_pes)
        per_pass = (
            n_prev * costs.stream_cycles_per_input
            + num_pes * costs.fill_drain_per_pe
        )
        cycles += passes * per_pass + costs.layer_sync_cycles
    return cycles


def sa_pe_active_cycles(net: HWNetConfig, costs: SACosts | None = None) -> int:
    """Useful-work cycles per inference: the real MACs only.

    Zero-filled and dummy-node streaming is *not* useful work — this is
    what makes the SA's utilization on irregular networks poor.
    """
    costs = costs or SACosts()
    return net.num_connections * costs.stream_cycles_per_input


def schedule_generation_sa(
    config: INAXConfig,
    net_configs: list[HWNetConfig],
    episode_lengths: list[int],
    costs: SACosts | None = None,
    pipeline=None,
    predicted_costs=None,
) -> CycleReport:
    """Population evaluation on the PU-parallelized SA baseline.

    Identical wave/episode schedule as INAX's
    :func:`~repro.inax.accelerator.schedule_generation`; only the
    per-inference latency model differs.  ``pipeline`` /
    ``predicted_costs`` pass the wave-packing and prefetch policies
    through unchanged, so pipelined INAX is compared against an equally
    pipelined SA rather than a handicapped baseline.
    """
    costs = costs or SACosts()
    return schedule_generation(
        config,
        net_configs,
        episode_lengths,
        step_cycles_fn=lambda c: sa_step_cycles(c, config.num_pes_per_pu, costs),
        pe_active_fn=lambda c: sa_pe_active_cycles(c, costs),
        pipeline=pipeline,
        predicted_costs=predicted_costs,
    )
