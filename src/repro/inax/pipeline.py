"""Generation pipelining for the INAX engine.

Three independent policies close the gap between the naive sequential
loop and "as fast as the hardware allows":

* **wave packing** (``schedule``) — which individuals share a dispatch
  wave.  ``"arrival"`` is the paper's baseline (§IV-C2: rigid chunks of
  ``num_pus`` in population order).  ``"lpt"`` packs by *predicted
  cost* — the individual's last-generation episode length times its
  per-inference latency — longest first, so long episodes share a wave
  instead of each pinning a mostly-drained wave open (§V-B2's idle-PU
  effect).  Genomes never evaluated before have no prediction and keep
  arrival order at the tail.
* **prefetch** — double-buffered DMA/decode: wave N+1's configuration
  words stream over the weight channel while wave N computes, so only
  ``max(0, setup − prev_compute)`` of each later wave's set-up is
  exposed on the wall clock.
* **overlap** — the CPU's "evolve" phase for generation g+1 runs while
  the backend drains generation g's bookkeeping (workload build +
  analytic cycle pricing).

Because episode seeds are keyed on (run seed, genome key, episode) and
fitness is per-genome, *no* packing or overlap policy can change a
single fitness bit — the determinism contract the property tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.inax.compiler import HWNetConfig
from repro.inax.pu import _static_step_cycles

__all__ = ["PipelineConfig", "pack_waves", "predict_costs", "SCHEDULES"]

#: recognised wave-packing policies
SCHEDULES = ("arrival", "lpt")


@dataclass(frozen=True)
class PipelineConfig:
    """Pipelining policy knobs (all default to the paper's baseline)."""

    #: wave-packing policy: ``"arrival"`` or ``"lpt"``
    schedule: str = "arrival"
    #: double-buffer DMA/decode: hide wave N+1's set-up behind wave N
    prefetch: bool = False
    #: run evolve(g+1) while the backend drains generation g
    overlap: bool = False

    def __post_init__(self) -> None:
        if self.schedule not in SCHEDULES:
            names = ", ".join(repr(s) for s in SCHEDULES)
            raise ValueError(
                f"unknown schedule {self.schedule!r}; use one of {names}"
            )


def pack_waves(
    costs: Sequence[float | None],
    capacity: int,
    schedule: str = "arrival",
) -> list[list[int]]:
    """Partition individuals ``0..n-1`` into dispatch waves.

    ``costs[i]`` is individual ``i``'s predicted evaluation cost in
    cycles, or ``None`` when unknown (never evaluated).  Waves run
    *sequentially* and a wave's wall clock is its slowest member, so the
    LPT objective here is minimizing the sum of per-wave maxima — which
    sorting by descending cost and chunking achieves exactly (any swap
    across waves can only raise a wave maximum).  Unknown-cost
    individuals keep arrival order after the predicted ones.

    Returns waves of at most ``capacity`` indices; concatenated they are
    a permutation of ``range(n)``.
    """
    if capacity < 1:
        raise ValueError("wave capacity must be >= 1")
    if schedule not in SCHEDULES:
        names = ", ".join(repr(s) for s in SCHEDULES)
        raise ValueError(f"unknown schedule {schedule!r}; use one of {names}")
    n = len(costs)
    if schedule == "arrival":
        order = list(range(n))
    else:
        known = [i for i in range(n) if costs[i] is not None]
        unknown = [i for i in range(n) if costs[i] is None]
        known.sort(key=lambda i: (-costs[i], i))  # type: ignore[operator]
        order = known + unknown
    return [order[start : start + capacity] for start in range(0, n, capacity)]


def predict_costs(
    net_configs: Sequence[HWNetConfig],
    keys: Sequence[object],
    last_lengths: Mapping[object, int],
    num_pes_per_pu: int,
    pe_costs,
    pu_costs,
) -> list[float | None]:
    """Predicted per-individual evaluation cost for wave packing.

    ``last_lengths`` maps a genome key to the total episode steps it ran
    the last time it was evaluated; the prediction is that length times
    the individual's closed-form per-inference latency.  Individuals
    without history predict ``None`` (packed in arrival order).  Both
    the device dispatch and the analytic :func:`schedule_generation`
    must see the *same* predictions for the two paths to stay
    cycle-exact.
    """
    costs: list[float | None] = []
    for key, net in zip(keys, net_configs):
        steps = last_lengths.get(key)
        if steps is None:
            costs.append(None)
        else:
            costs.append(
                float(steps)
                * _static_step_cycles(net, num_pes_per_pu, pe_costs, pu_costs)
            )
    return costs
