"""Design-time parallelism heuristics (§V).

Two practical rules the paper derives and validates:

* **PE count** (§V-A): the input/output layer shapes are the only
  topology constants across generations, and the OS dataflow makes the
  output layer the anchor — so provision ``k`` PEs per PU where ``k`` is
  the number of output nodes, or ``ceil(k/2)``, ``ceil(k/3)``, ... when
  resource-restricted.  These are the local peaks of Fig 6's U(PE).
* **PU count** (§V-B): the population size ``p`` is a predefined
  algorithm parameter — provision ``p`` PUs, or ``ceil(p/2)``,
  ``ceil(p/3)``, ... so every dispatch wave is full (the local peaks of
  Fig 7's U(PU); 100 PUs finish 200 individuals in 2 full waves where 99
  PUs need 3 with the last almost empty).
"""

from __future__ import annotations

import math

__all__ = [
    "divisor_ladder",
    "pe_candidates",
    "pu_candidates",
    "choose_num_pes",
    "choose_num_pus",
    "wave_occupancy",
]


def divisor_ladder(k: int, max_value: int | None = None) -> list[int]:
    """The heuristic ladder ``[k, ceil(k/2), ceil(k/3), ...]``.

    Deduplicated and descending; values above ``max_value`` are dropped.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    ladder: list[int] = []
    for divisor in range(1, k + 1):
        value = math.ceil(k / divisor)
        if max_value is not None and value > max_value:
            continue
        if not ladder or ladder[-1] != value:
            ladder.append(value)
    return ladder


def pe_candidates(num_outputs: int, max_pes: int | None = None) -> list[int]:
    """Good PE-per-PU counts for a task with ``num_outputs`` actions."""
    return divisor_ladder(num_outputs, max_pes)


def pu_candidates(population: int, max_pus: int | None = None) -> list[int]:
    """Good PU counts for a population of ``population`` individuals."""
    return divisor_ladder(population, max_pus)


def choose_num_pes(num_outputs: int, max_pes: int | None = None) -> int:
    """Largest heuristic-sanctioned PE count within the resource budget.

    With no budget this is ``num_outputs`` itself — the configuration
    the paper uses in §VI-C ("we picked PE=output nodes").
    """
    candidates = pe_candidates(num_outputs, max_pes)
    if not candidates:
        return 1
    return candidates[0]


def choose_num_pus(population: int, max_pus: int | None = None) -> int:
    """Largest heuristic-sanctioned PU count within the resource budget."""
    candidates = pu_candidates(population, max_pus)
    if not candidates:
        return 1
    return candidates[0]


def wave_occupancy(
    episode_lengths: list[int], num_pus: int, schedule: str = "arrival"
) -> float:
    """Design-time estimate of PU slot-step occupancy for a generation.

    A wave's wall clock is pinned by its longest-lived member while
    shorter episodes idle their PU (§V-B2's drain effect), so occupancy
    is ``sum(lengths) / (num_pus * sum(per-wave max length))``.  This is
    the count-based quantity :attr:`CycleReport.packing_efficiency`
    measures post-hoc; evaluating it under ``schedule="lpt"`` vs
    ``"arrival"`` predicts how much the length-aware packer recovers
    before committing to a hardware configuration.
    """
    from repro.inax.pipeline import pack_waves

    if not episode_lengths:
        return 0.0
    if any(length < 1 for length in episode_lengths):
        raise ValueError("episode lengths must be >= 1")
    waves = pack_waves(
        [float(length) for length in episode_lengths], num_pus, schedule
    )
    provisioned = num_pus * sum(
        max(episode_lengths[i] for i in wave) for wave in waves
    )
    return sum(episode_lengths) / provisioned
