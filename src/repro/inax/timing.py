"""Cycle accounting for the INAX simulator.

The paper's HW metrics (§V, §VI-B) all derive from three buckets:

* **set-up** — receiving NN configurations over the weight channel and
  decoding them into the PUs' weight buffers;
* **PE active** — cycles where a PE is actually MAC-ing or activating;
  the ratio of PE-active time to total provisioned PE time is U(PE),
  Eq. (1);
* **evaluate control** — everything else: PE under-utilization inside
  iterations, layer synchronization, input scatter / output gather, and
  pipeline overhead (Fig 9(a)'s third bucket).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CycleReport", "utilization"]


def utilization(active: float, provisioned: float) -> float:
    """U(r) = T_active(r) / T_total(r), Eq. (1); safe at zero."""
    if provisioned <= 0:
        return 0.0
    value = active / provisioned
    # floating accumulation can nudge past 1.0 by an ulp
    return min(max(value, 0.0), 1.0)


@dataclass
class CycleReport:
    """Aggregated cycle counts for a simulated INAX execution."""

    #: cycles spent in the set-up phase (weight channel + decode)
    setup_cycles: float = 0.0
    #: total cycles in the compute phase (wall-clock of the device)
    compute_cycles: float = 0.0
    #: sum over PEs of their active cycles
    pe_active_cycles: float = 0.0
    #: PE-cycles provisioned during compute (num PEs x compute span,
    #: summed over PUs that were running)
    pe_provisioned_cycles: float = 0.0
    #: sum over PUs of cycles where the PU had a live individual
    pu_active_cycles: float = 0.0
    #: PU-cycles provisioned (num PUs x total span of the generation)
    pu_provisioned_cycles: float = 0.0
    #: cycles the DMA channels spent moving inputs/outputs
    io_cycles: float = 0.0
    #: number of synchronized inference steps executed
    steps: int = 0
    #: number of individuals processed
    individuals: int = 0
    #: number of dispatch waves executed
    waves: int = 0
    #: set-up cycles hidden behind the previous wave's compute by the
    #: double-buffered DMA/decode prefetch (``setup_cycles`` holds only
    #: the *exposed* remainder, so ``total_cycles`` stays wall-clock)
    prefetch_hidden_cycles: float = 0.0
    #: slot-steps where a PU slot held a live individual (occupancy
    #: numerator: one per live slot per synchronized step)
    live_slot_steps: int = 0
    #: slot-steps provisioned (``num_pus`` per synchronized step)
    slot_steps_provisioned: int = 0
    #: iteration counts per layer-execution (diagnostics)
    layer_iterations: list[int] = field(default_factory=list)

    # ------------------------------------------------------------ totals
    @property
    def total_cycles(self) -> float:
        """Wall-clock cycles of the whole execution (set-up + compute)."""
        return self.setup_cycles + self.compute_cycles

    @property
    def control_cycles(self) -> float:
        """The Fig 9(a) "evaluate control" bucket: provisioned PE time
        that was neither set-up nor active computation."""
        return max(self.pe_provisioned_cycles - self.pe_active_cycles, 0.0)

    # ------------------------------------------------------- utilization
    @property
    def u_pe(self) -> float:
        """PE utilization rate (Eq. 1 over PEs)."""
        return utilization(self.pe_active_cycles, self.pe_provisioned_cycles)

    @property
    def u_pu(self) -> float:
        """PU utilization rate (Eq. 1 over PUs)."""
        return utilization(self.pu_active_cycles, self.pu_provisioned_cycles)

    @property
    def packing_efficiency(self) -> float:
        """Fraction of provisioned PU slot-steps holding a live episode.

        Unlike :attr:`u_pu` (cycle-weighted) this is count-based, so it
        isolates what wave *packing* controls: empty slots in partial
        waves and the §V-B2 drain tail where short episodes idle their
        PU while the wave's longest episode finishes.
        """
        return utilization(self.live_slot_steps, self.slot_steps_provisioned)

    # --------------------------------------------------------- breakdown
    def breakdown(self) -> dict[str, float]:
        """Fractions of set-up / PE active / evaluate control, normalized
        over provisioned PE time plus set-up — the Fig 9(a) bars."""
        total = self.setup_cycles + self.pe_provisioned_cycles
        if total <= 0:
            return {"setup": 0.0, "pe_active": 0.0, "evaluate_control": 0.0}
        return {
            "setup": self.setup_cycles / total,
            "pe_active": self.pe_active_cycles / total,
            "evaluate_control": self.control_cycles / total,
        }

    # ------------------------------------------------------------ merge
    def merge(self, other: "CycleReport") -> None:
        """Accumulate another report into this one (sequential waves)."""
        self.setup_cycles += other.setup_cycles
        self.compute_cycles += other.compute_cycles
        self.pe_active_cycles += other.pe_active_cycles
        self.pe_provisioned_cycles += other.pe_provisioned_cycles
        self.pu_active_cycles += other.pu_active_cycles
        self.pu_provisioned_cycles += other.pu_provisioned_cycles
        self.io_cycles += other.io_cycles
        self.steps += other.steps
        self.individuals += other.individuals
        self.waves += other.waves
        self.prefetch_hidden_cycles += other.prefetch_hidden_cycles
        self.live_slot_steps += other.live_slot_steps
        self.slot_steps_provisioned += other.slot_steps_provisioned
        self.layer_iterations.extend(other.layer_iterations)
