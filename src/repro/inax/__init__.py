"""INAX: the paper's irregular-network accelerator, as a cycle-level model.

The package mirrors the hardware hierarchy of §IV: PEs (output-stationary
MAC + activation pipelines) cluster into PUs (per-individual inference
engines with weight/value buffers), PUs cluster into the INAX device
behind a controller and shared DMA channels.  A systolic-array baseline
(GeneSys-style) and the §V parallelism heuristics round out what the
evaluation section needs.
"""

from repro.inax.accelerator import (
    INAX,
    INAXConfig,
    schedule_generation,
    waves_required,
)
from repro.inax.compiler import HWNetConfig, compile_genome, compile_network
from repro.inax.datapath import FixedPointFormat, Q8_8, Q16
from repro.inax.dma import DMAModel
from repro.inax.heuristics import (
    choose_num_pes,
    choose_num_pus,
    divisor_ladder,
    pe_candidates,
    pu_candidates,
)
from repro.inax.pe import PECosts, ProcessingElement
from repro.inax.pu import (
    BufferOverflowError,
    ProcessingUnit,
    PUCosts,
    StepTiming,
)
from repro.inax.synthetic import (
    PAPER_DEFAULTS,
    random_irregular_genome,
    synthetic_population,
)
from repro.inax.systolic import (
    SACosts,
    dense_counterpart_widths,
    sa_pe_active_cycles,
    sa_step_cycles,
    schedule_generation_sa,
)
from repro.inax.timing import CycleReport, utilization

__all__ = [
    "BufferOverflowError",
    "CycleReport",
    "DMAModel",
    "FixedPointFormat",
    "HWNetConfig",
    "Q16",
    "Q8_8",
    "INAX",
    "INAXConfig",
    "PAPER_DEFAULTS",
    "PECosts",
    "PUCosts",
    "ProcessingElement",
    "ProcessingUnit",
    "SACosts",
    "StepTiming",
    "choose_num_pes",
    "choose_num_pus",
    "compile_genome",
    "compile_network",
    "dense_counterpart_widths",
    "divisor_ladder",
    "pe_candidates",
    "pu_candidates",
    "random_irregular_genome",
    "sa_pe_active_cycles",
    "sa_step_cycles",
    "schedule_generation",
    "schedule_generation_sa",
    "synthetic_population",
    "utilization",
    "waves_required",
]
