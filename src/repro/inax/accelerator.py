"""The INAX accelerator (§IV-C): a PU array behind a central controller.

Two execution paths are provided:

* the **stepwise device** (:class:`INAX`) — a functional simulator the
  E3 platform drives one synchronized inference at a time, exactly like
  the FPGA: ``begin_wave`` (set-up phase over the weight channel), then
  repeated ``step`` calls (input scatter, parallel PU inference, output
  gather), with early-terminated individuals simply dropping out of
  subsequent steps;
* the **analytic scheduler** (:func:`schedule_generation`) — a
  closed-form cycle-count evaluation for timing-only studies (the Fig
  6/7/9(a)/11 sweeps), exploiting the fact that an individual's
  per-inference latency is input-independent.

Both paths share the same per-PU timing semantics, and the tests assert
they agree cycle-for-cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.inax.compiler import HWNetConfig
from repro.inax.dma import DMAModel
from repro.inax.pe import PECosts
from repro.inax.pipeline import PipelineConfig, pack_waves
from repro.inax.pu import ProcessingUnit, PUCosts, _static_step_cycles
from repro.inax.timing import CycleReport
from repro.telemetry.spans import get_tracer

__all__ = [
    "INAXConfig",
    "INAX",
    "schedule_generation",
    "schedule_waves",
    "waves_required",
]


@dataclass(frozen=True)
class INAXConfig:
    """Design-time accelerator configuration (the §V knobs)."""

    num_pus: int = 50
    num_pes_per_pu: int = 4
    pe_costs: PECosts = PECosts()
    pu_costs: PUCosts = PUCosts()
    dma: DMAModel = DMAModel()
    weight_buffer_capacity: int | None = None
    value_buffer_capacity: int | None = None
    #: controller cost to synchronize a wave step (start/done via sig)
    step_sync_cycles: int = 2
    #: double-buffered I/O: the input scatter / output gather DMA for
    #: step t+1/t-1 overlaps with step t's compute, so a step costs
    #: max(compute, io) instead of compute + io.  Costs one extra input
    #: and output buffer per PU (modeled in the resource estimate as a
    #: second value-buffer-class BRAM) — the ablation bench quantifies
    #: the trade
    overlap_io: bool = False
    #: None = float64 reference; a FixedPointFormat models the FPGA's
    #: quantized arithmetic (functional only; cycle costs are unchanged)
    datapath: object | None = None
    #: §VII future work: skip MACs on zero-valued activations.  Only the
    #: functional device honours this (cycles become data-dependent);
    #: the analytic scheduler keeps the dense-timing assumption.
    skip_zero_activations: bool = False

    def __post_init__(self) -> None:
        if self.num_pus < 1:
            raise ValueError("INAX needs at least one PU")
        if self.num_pes_per_pu < 1:
            raise ValueError("INAX needs at least one PE per PU")


class INAX:
    """Functional stepwise model of the accelerator."""

    def __init__(
        self,
        config: INAXConfig | None = None,
        fault_injector=None,
        **overrides,
    ):
        if config is None:
            config = INAXConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides")
        self.config = config
        #: optional :class:`repro.resilience.injectors.DeviceFaultInjector`;
        #: ``None`` (the default) keeps every hook on the zero-cost path
        self.fault_injector = fault_injector
        #: prepended to every emitted span track (the fabric sets
        #: ``"dev0."`` etc. so per-device timelines stay distinct)
        self.track_prefix = ""
        self.pus = [
            ProcessingUnit(
                config.num_pes_per_pu,
                pe_costs=config.pe_costs,
                pu_costs=config.pu_costs,
                weight_buffer_capacity=config.weight_buffer_capacity,
                value_buffer_capacity=config.value_buffer_capacity,
                datapath=config.datapath,
                skip_zero_activations=config.skip_zero_activations,
            )
            for _ in range(config.num_pus)
        ]
        self.report = CycleReport()
        self._wave_slots: list[HWNetConfig] = []
        #: cycles -> seconds for exported spans; ``None`` uses the
        #: calibrated FPGA clock (:data:`repro.hw.calibration.FPGA_CLOCK_HZ`)
        self.clock_hz: float | None = None
        # device-timeline cursor (cycles since reset) and per-wave slot
        # activity, kept only while a tracer is installed
        self._cycle = 0
        self._tracing = False
        # monotonic wave counter (never reset) and step-within-wave
        # counter: fault-injection sites embed both so a replayed plan
        # fires at the same physical points
        self._wave_index = -1
        self._wave_step = 0
        self._wave_start_cycle = 0
        self._wave_setup_cycles = 0
        self._slot_last_active: list[int] = []
        self._slot_active_cycles: list[int] = []
        self._slot_steps: list[int] = []
        # double-buffered prefetch window: compute cycles accumulated by
        # the wave in flight, and the finished previous wave's total —
        # the window a ``prefetched`` begin_wave can hide set-up behind
        self._compute_since_setup = 0
        self._prev_wave_compute = 0
        self._wave_hidden_setup = 0

    # -------------------------------------------------------------- wave
    def begin_wave(
        self, configs: list[HWNetConfig], prefetched: bool = False
    ) -> None:
        """Set-up phase: dispatch up to ``num_pus`` individuals.

        The batch "is controlled to match the number of PUs" (§IV-C2).
        Configuration words stream over the shared weight channel
        (serialized); each PU decodes its own individual in parallel.

        With ``prefetched`` the controller double-buffered this wave's
        DMA/decode behind the *previous* wave's compute window, so only
        ``max(0, setup − prev_compute)`` cycles are exposed on the wall
        clock; the hidden remainder is accounted in
        :attr:`CycleReport.prefetch_hidden_cycles`.  The first wave of a
        generation has no window and must not pass ``prefetched``.
        """
        if self._wave_slots:
            raise RuntimeError(
                "a wave is already in progress; the controller requires "
                "end_wave() before the next set-up phase (sig-channel "
                "handshake order)"
            )
        if len(configs) > self.config.num_pus:
            raise ValueError(
                f"wave of {len(configs)} exceeds {self.config.num_pus} PUs"
            )
        if not configs:
            raise ValueError("a wave needs at least one individual")
        self._wave_slots = list(configs)
        self._wave_index += 1
        self._wave_step = 0
        decode_cycles = []
        for pu, cfg in zip(self.pus, configs):
            decode_cycles.append(pu.load(cfg))
        if self.fault_injector is not None:
            for slot in range(len(configs)):
                self.fault_injector.on_load(
                    self.pus[slot], self._wave_index, slot
                )
        dma_cycles = self.config.dma.transfer_cycles(
            sum(c.config_words for c in configs)
        )
        setup_wall = dma_cycles + max(decode_cycles)
        if prefetched:
            exposed = max(0, setup_wall - self._prev_wave_compute)
        else:
            exposed = setup_wall
        hidden = setup_wall - exposed
        self._compute_since_setup = 0
        self.report.setup_cycles += exposed
        self.report.prefetch_hidden_cycles += hidden
        self.report.pu_provisioned_cycles += self.config.num_pus * exposed
        self.report.pu_active_cycles += len(configs) * exposed
        self.report.individuals += len(configs)
        self.report.waves += 1
        self._tracing = get_tracer() is not None
        self._wave_start_cycle = self._cycle
        self._wave_setup_cycles = exposed
        self._wave_hidden_setup = hidden
        self._cycle += exposed
        if self._tracing:
            end_of_setup = self._cycle
            self._slot_last_active = [end_of_setup] * len(configs)
            self._slot_active_cycles = [0] * len(configs)
            self._slot_steps = [0] * len(configs)

    def step(self, inputs: dict[int, np.ndarray]) -> dict[int, np.ndarray]:
        """One synchronized inference across the wave's live slots.

        ``inputs`` maps slot index -> observation vector; slots whose
        episode already terminated are simply omitted and idle.  Returns
        slot index -> output vector.
        """
        if not self._wave_slots:
            raise RuntimeError("no wave in progress; call begin_wave() first")
        if not inputs:
            raise ValueError("step() needs at least one live slot")
        cfg = self.config
        injector = self.fault_injector
        wave, step_index = self._wave_index, self._wave_step
        self._wave_step += 1
        if injector is not None:
            injector.check_wedge(wave, step_index)
        outputs: dict[int, np.ndarray] = {}
        slowest = 0
        pe_active = 0
        pu_active = 0
        in_words = 0
        out_words = 0
        for slot, x in inputs.items():
            if not 0 <= slot < len(self._wave_slots):
                raise IndexError(f"slot {slot} outside the current wave")
            if injector is not None:
                x = injector.corrupt_input(x, wave, step_index, slot)
            out, timing = self.pus[slot].infer(x)
            if injector is not None:
                out = injector.corrupt_output(out, wave, step_index, slot)
                stall = injector.stall_cycles(wave, step_index, slot)
                # a stalled PU holds the whole synchronized step hostage
                # but burns no useful PE/PU activity
                slowest = max(slowest, timing.cycles + stall)
            outputs[slot] = out
            slowest = max(slowest, timing.cycles)
            pe_active += timing.pe_active_cycles
            pu_active += timing.cycles
            if self._tracing:
                self._slot_active_cycles[slot] += timing.cycles
                self._slot_steps[slot] += 1
            in_words += self._wave_slots[slot].num_inputs
            out_words += self._wave_slots[slot].num_outputs
            self.report.layer_iterations.extend(timing.iterations_per_layer)

        io = cfg.dma.transfer_cycles(in_words) + cfg.dma.transfer_cycles(out_words)
        if injector is not None:
            # a dropped input transfer is re-sent; the retry serializes
            # on the shared input channel
            io += cfg.dma.retry_cycles(
                in_words, injector.input_retries(wave, step_index)
            )
        if cfg.overlap_io:
            step_wall = max(slowest, io) + cfg.step_sync_cycles
        else:
            step_wall = slowest + io + cfg.step_sync_cycles
        self._cycle += step_wall
        if self._tracing:
            for slot in inputs:
                self._slot_last_active[slot] = self._cycle
        self.report.compute_cycles += step_wall
        self.report.io_cycles += io
        self.report.pe_active_cycles += pe_active
        self.report.pe_provisioned_cycles += (
            cfg.num_pus * cfg.num_pes_per_pu * step_wall
        )
        self.report.pu_active_cycles += pu_active
        self.report.pu_provisioned_cycles += cfg.num_pus * step_wall
        self.report.steps += 1
        self.report.live_slot_steps += len(inputs)
        self.report.slot_steps_provisioned += cfg.num_pus
        self._compute_since_setup += step_wall
        return outputs

    def end_wave(self) -> None:
        if not self._wave_slots:
            raise RuntimeError(
                "no wave in progress; end_wave() must pair with begin_wave()"
            )
        if self._tracing:
            self._emit_wave_spans()
        self._wave_slots = []
        self._tracing = False
        self._prev_wave_compute = self._compute_since_setup
        self._compute_since_setup = 0

    def abort_wave(self) -> None:
        """Discard an in-flight wave after a device fault.

        Unlike :meth:`end_wave` this is safe to call with no wave in
        progress (double-abort during error handling is a no-op) and
        emits no spans — the wave never completed.  Cycles already
        burned stay in the report: the hardware spent them.  The partial
        compute window still counts for the next wave's prefetch — the
        weight channel was idle during it either way.
        """
        if self._wave_slots:
            self._prev_wave_compute = self._compute_since_setup
            self._compute_since_setup = 0
        self._wave_slots = []
        self._tracing = False

    def _emit_wave_spans(self) -> None:
        """Record the finished wave as per-PU setup/compute/drain spans.

        Cycle counts map to seconds through the FPGA clock, so the
        device timeline lines up with host wall-clock spans in a trace
        viewer and Fig 9(a)'s three buckets are visible per PU: the
        serialized set-up window, the compute window (with the PU's
        true active cycles as an attribute), and the idle drain tail
        after the slot's episode terminated while the wave ran on
        (§V-B2's idle-PU effect).
        """
        tracer = get_tracer()
        if tracer is None:
            return
        clock = self.clock_hz
        if clock is None:
            from repro.hw.calibration import FPGA_CLOCK_HZ

            clock = FPGA_CLOCK_HZ
        scale = 1.0 / clock
        wave_end = self._cycle
        setup_start = self._wave_start_cycle
        setup_cycles = self._wave_setup_cycles
        setup_end = setup_start + setup_cycles
        if self._wave_hidden_setup:
            # the hidden DMA/decode window sits inside the previous
            # wave's compute span on the device timeline
            hidden = self._wave_hidden_setup
            tracer.add_span(
                "inax.prefetch",
                (setup_start - hidden) * scale,
                hidden * scale,
                track=f"{self.track_prefix}inax",
                cycles=hidden,
            )
        for slot, cfg in enumerate(self._wave_slots):
            track = f"{self.track_prefix}pu{slot}"
            tracer.add_span(
                "pu.setup",
                setup_start * scale,
                setup_cycles * scale,
                track=track,
                cycles=setup_cycles,
                config_words=cfg.config_words,
            )
            active_until = self._slot_last_active[slot]
            compute_cycles = active_until - setup_end
            tracer.add_span(
                "pu.compute",
                setup_end * scale,
                compute_cycles * scale,
                track=track,
                cycles=compute_cycles,
                active_cycles=self._slot_active_cycles[slot],
                steps=self._slot_steps[slot],
            )
            drain_cycles = wave_end - active_until
            if drain_cycles > 0:
                tracer.add_span(
                    "pu.drain",
                    active_until * scale,
                    drain_cycles * scale,
                    track=track,
                    cycles=drain_cycles,
                )
        tracer.add_span(
            "inax.wave",
            setup_start * scale,
            (wave_end - setup_start) * scale,
            track=f"{self.track_prefix}inax",
            individuals=len(self._wave_slots),
            cycles=wave_end - setup_start,
        )

    def reset_report(self) -> None:
        self.report = CycleReport()
        self._cycle = 0
        self._compute_since_setup = 0
        self._prev_wave_compute = 0
        self._wave_hidden_setup = 0


StepCycleFn = "Callable[[HWNetConfig], int]"


def schedule_generation(
    config: INAXConfig,
    net_configs: list[HWNetConfig],
    episode_lengths: list[int],
    step_cycles_fn=None,
    pe_active_fn=None,
    pipeline: PipelineConfig | None = None,
    predicted_costs: list[float | None] | None = None,
) -> CycleReport:
    """Closed-form cycle count for evaluating a population.

    Individuals are dispatched in waves of ``num_pus``; within a wave,
    step ``t`` runs every individual whose episode outlives ``t``, and
    the wave's wall clock follows the slowest live PU each step.  This
    reproduces exactly what the stepwise device would report, without
    functional execution — per-inference latency is input-independent.

    ``step_cycles_fn`` / ``pe_active_fn`` override the per-inference
    latency/activity models; the defaults are INAX's.  The systolic-array
    baseline (Fig 11) passes its own latency model through here so both
    accelerators share the identical wave/episode schedule.

    ``pipeline`` applies the :mod:`repro.inax.pipeline` policies: with
    ``schedule="lpt"`` waves are packed by ``predicted_costs`` (the
    predictions the *backend* used, so the analytic schedule replays the
    device's exact dispatch; when omitted, costs are derived from the
    actual ``episode_lengths`` — the timing-only-study convention), and
    with ``prefetch`` each wave after the first hides its set-up behind
    the previous wave's compute window.
    """
    if len(net_configs) != len(episode_lengths):
        raise ValueError("need one episode length per individual")
    if any(length < 1 for length in episode_lengths):
        raise ValueError("episode lengths must be >= 1")
    if step_cycles_fn is None:
        step_cycles_fn = lambda c: _static_step_cycles(  # noqa: E731
            c, config.num_pes_per_pu, config.pe_costs, config.pu_costs
        )
    if pe_active_fn is None:
        pe_active_fn = lambda c: _static_pe_active(c, config.pe_costs)  # noqa: E731
    pipeline = pipeline or PipelineConfig()
    if predicted_costs is not None and len(predicted_costs) != len(net_configs):
        raise ValueError("need one predicted cost per individual")
    report = CycleReport()
    report.individuals = len(net_configs)
    num_pus = config.num_pus

    costs: list[float | None]
    if pipeline.schedule == "arrival":
        costs = [None] * len(net_configs)
    elif predicted_costs is not None:
        costs = list(predicted_costs)
    else:
        costs = [
            float(length) * step_cycles_fn(c)
            for c, length in zip(net_configs, episode_lengths)
        ]
    waves = pack_waves(costs, num_pus, pipeline.schedule)
    schedule_waves(
        config, net_configs, episode_lengths, waves, report,
        step_cycles_fn=step_cycles_fn, pe_active_fn=pe_active_fn,
        prefetch=pipeline.prefetch,
    )
    return report


def schedule_waves(
    config: INAXConfig,
    net_configs: list[HWNetConfig],
    episode_lengths: list[int],
    waves: list[list[int]],
    report: CycleReport | None = None,
    step_cycles_fn=None,
    pe_active_fn=None,
    prefetch: bool = False,
) -> CycleReport:
    """Price an explicit wave sequence (index lists) into a report.

    The device-subset entry point behind :func:`schedule_generation`:
    the fabric prices each farm device's assigned waves through here so
    multi-device scaling numbers use the exact single-device wave
    semantics (including per-device prefetch windows).
    """
    if step_cycles_fn is None:
        step_cycles_fn = lambda c: _static_step_cycles(  # noqa: E731
            c, config.num_pes_per_pu, config.pe_costs, config.pu_costs
        )
    if pe_active_fn is None:
        pe_active_fn = lambda c: _static_pe_active(c, config.pe_costs)  # noqa: E731
    if report is None:
        report = CycleReport()
        report.individuals = sum(len(indices) for indices in waves)
    prev_compute = 0.0
    for ordinal, indices in enumerate(waves):
        wave = [net_configs[i] for i in indices]
        lengths = [episode_lengths[i] for i in indices]
        window = prev_compute if (prefetch and ordinal > 0) else 0.0
        prev_compute = _schedule_wave(
            config, wave, lengths, report, step_cycles_fn, pe_active_fn,
            prefetch_window=window,
        )
    return report


def _schedule_wave(
    config: INAXConfig,
    wave: list[HWNetConfig],
    lengths: list[int],
    report: CycleReport,
    step_cycles_fn,
    pe_active_fn,
    prefetch_window: float = 0.0,
) -> float:
    """Price one wave into ``report``; returns its compute wall-clock."""
    pu_costs, dma = config.pu_costs, config.dma

    # --- set-up phase (the prefetch window hides the leading part) ---
    decode = [
        c.config_words * pu_costs.decode_cycles_per_word for c in wave
    ]
    setup_wall = dma.transfer_cycles(sum(c.config_words for c in wave)) + max(
        decode
    )
    exposed = max(0, setup_wall - prefetch_window)
    report.setup_cycles += exposed
    report.prefetch_hidden_cycles += setup_wall - exposed
    report.pu_provisioned_cycles += config.num_pus * exposed
    report.pu_active_cycles += len(wave) * exposed
    report.waves += 1

    # --- compute phase: group steps by the set of live individuals ---
    per_step_cycles = [step_cycles_fn(c) for c in wave]
    per_step_active = [pe_active_fn(c) for c in wave]
    compute_wall = 0.0

    order = sorted(range(len(wave)), key=lambda i: lengths[i])
    live = list(order)  # indices still alive, shortest-lived first
    t = 0
    while live:
        horizon = lengths[live[0]]  # all of `live` survive through horizon
        n_steps = horizon - t
        slowest = max(per_step_cycles[i] for i in live)
        in_words = sum(wave[i].num_inputs for i in live)
        out_words = sum(wave[i].num_outputs for i in live)
        io = dma.transfer_cycles(in_words) + dma.transfer_cycles(out_words)
        if config.overlap_io:
            step_wall = max(slowest, io) + config.step_sync_cycles
        else:
            step_wall = slowest + io + config.step_sync_cycles

        report.compute_cycles += n_steps * step_wall
        compute_wall += n_steps * step_wall
        report.io_cycles += n_steps * io
        report.pe_active_cycles += n_steps * sum(
            per_step_active[i] for i in live
        )
        report.pe_provisioned_cycles += (
            n_steps * config.num_pus * config.num_pes_per_pu * step_wall
        )
        report.pu_active_cycles += n_steps * sum(
            per_step_cycles[i] for i in live
        )
        report.pu_provisioned_cycles += n_steps * config.num_pus * step_wall
        report.steps += n_steps
        report.live_slot_steps += n_steps * len(live)
        report.slot_steps_provisioned += n_steps * config.num_pus
        t = horizon
        live = [i for i in live if lengths[i] > t]
    return compute_wall


def _static_pe_active(net: HWNetConfig, pe_costs: PECosts) -> int:
    """Sum of PE-active cycles for one inference of ``net``."""
    return sum(
        pe_costs.node_cycles(plan.fan_in)
        for layer in net.layers
        for plan in layer
    )


def waves_required(population: int, num_pus: int) -> int:
    """Number of dispatch waves, ``ceil(p / num_pus)`` (§V-B)."""
    return math.ceil(population / num_pus)
