"""Processing Unit (PU) model (§IV-D).

A PU runs the full "evaluate" for one individual: it decodes the NN
configuration into its **weight buffer** (set-up phase), then executes
inference layer-by-layer across its PE cluster, keeping every
intermediate activation in its **value buffer** — a requirement specific
to irregular NNs, "because the intermediate activations could be used by
all the subsequent layers".

Timing semantics (the source of §V-A's three utilization issues):

* a layer of ``m`` nodes on ``n`` PEs takes ``ceil(m / n)`` iterations
  (*PE alignment*);
* within an iteration the PEs synchronize on the slowest node — cycles
  are ``max(fan_in)``-bound while activity is ``sum(fan_in)``-bound
  (*synchronization*);
* layers synchronize before the next begins (feed-forward correctness),
  adding a fixed sync cost per layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.inax.compiler import HWNetConfig
from repro.inax.pe import PECosts, ProcessingElement

__all__ = ["PUCosts", "BufferOverflowError", "ProcessingUnit", "StepTiming"]


class BufferOverflowError(RuntimeError):
    """An individual's configuration exceeds a PU buffer capacity."""


@dataclass(frozen=True)
class PUCosts:
    """Per-PU timing parameters (cycles)."""

    #: decode cycles per weight-channel word during set-up
    decode_cycles_per_word: int = 1
    #: barrier cost between consecutive layers
    layer_sync_cycles: int = 2
    #: fixed cost to latch a new input vector into the value buffer
    input_load_cycles: int = 1
    #: PE-assignment order within a layer: "inorder" issues nodes as the
    #: configuration lists them (the baseline behaviour §V-A assumes);
    #: "lpt" sorts by descending fan-in first, which packs similar-cost
    #: nodes into the same iteration and shrinks the synchronization
    #: stalls of §V-A3 (set-up-time sort, one extra pass over the layer)
    schedule: str = "inorder"

    def __post_init__(self) -> None:
        if self.schedule not in ("inorder", "lpt"):
            raise ValueError(
                f"unknown schedule {self.schedule!r}; use 'inorder' or 'lpt'"
            )


def _schedule_layer(layer, schedule: str):
    """Order a layer's node plans for PE assignment."""
    if schedule == "lpt":
        return sorted(layer, key=lambda plan: plan.fan_in, reverse=True)
    return list(layer)


@dataclass
class StepTiming:
    """Timing of one inference (one env step) inside a PU."""

    cycles: int
    pe_active_cycles: int
    pe_provisioned_cycles: int
    iterations_per_layer: list[int]


class ProcessingUnit:
    """Functional + timing model of one PU (a cluster of PEs)."""

    def __init__(
        self,
        num_pes: int,
        pe_costs: PECosts | None = None,
        pu_costs: PUCosts | None = None,
        weight_buffer_capacity: int | None = None,
        value_buffer_capacity: int | None = None,
        datapath=None,
        skip_zero_activations: bool = False,
    ):
        if num_pes < 1:
            raise ValueError("a PU needs at least one PE")
        self.num_pes = num_pes
        self.pe_costs = pe_costs or PECosts()
        self.pu_costs = pu_costs or PUCosts()
        self.weight_buffer_capacity = weight_buffer_capacity
        self.value_buffer_capacity = value_buffer_capacity
        self.datapath = datapath
        self.skip_zero_activations = skip_zero_activations
        self.pes = [
            ProcessingElement(
                self.pe_costs,
                datapath=datapath,
                skip_zero_activations=skip_zero_activations,
            )
            for _ in range(num_pes)
        ]
        self._config: HWNetConfig | None = None
        self._values: dict[int, float] = {}

    # -------------------------------------------------------------- load
    def load(self, config: HWNetConfig) -> int:
        """Set-up phase: decode a configuration into the weight buffer.

        Returns the decode cycle count.  Raises
        :class:`BufferOverflowError` if the individual does not fit —
        the design-time constraint FPGA BRAM sizing imposes.
        """
        if (
            self.weight_buffer_capacity is not None
            and config.weight_buffer_words > self.weight_buffer_capacity
        ):
            raise BufferOverflowError(
                f"weight buffer needs {config.weight_buffer_words} words, "
                f"capacity is {self.weight_buffer_capacity}"
            )
        if (
            self.value_buffer_capacity is not None
            and config.value_buffer_words > self.value_buffer_capacity
        ):
            raise BufferOverflowError(
                f"value buffer needs {config.value_buffer_words} words, "
                f"capacity is {self.value_buffer_capacity}"
            )
        self._config = config
        self._values = {}
        return config.config_words * self.pu_costs.decode_cycles_per_word

    @property
    def loaded(self) -> HWNetConfig | None:
        return self._config

    # ---------------------------------------------------- fault injection
    def flip_weight_bit(self, rng) -> dict | None:
        """Flip one bit of one loaded weight/bias (soft-error model).

        Picks a uniformly random target among every connection weight
        and node bias in the loaded configuration, then a random bit of
        its float64 representation.  Copy-on-corrupt: compiled
        :class:`HWNetConfig` objects are shared across waves/episodes
        (and cached), so the corruption lands on a replaced copy held
        only by this PU until the next :meth:`load`.  Returns a detail
        dict describing the flip, or ``None`` when nothing is loaded.
        """
        config = self._config
        if config is None:
            return None
        # (layer, node, ingress index) with -1 meaning the node's bias
        targets: list[tuple[int, int, int]] = []
        for layer_index, layer in enumerate(config.layers):
            for node_index, plan in enumerate(layer):
                targets.append((layer_index, node_index, -1))
                for conn_index in range(plan.fan_in):
                    targets.append((layer_index, node_index, conn_index))
        if not targets:
            return None
        from repro.resilience.faults import flip_float64_bit

        layer_index, node_index, conn_index = targets[
            int(rng.integers(len(targets)))
        ]
        bit = int(rng.integers(64))
        plan = config.layers[layer_index][node_index]
        if conn_index < 0:
            before = plan.bias
            after = flip_float64_bit(before, bit)
            new_plan = replace(plan, bias=after)
            target = f"bias[{plan.key}]"
        else:
            source, before = plan.ingress[conn_index]
            after = flip_float64_bit(before, bit)
            ingress = list(plan.ingress)
            ingress[conn_index] = (source, after)
            new_plan = replace(plan, ingress=tuple(ingress))
            target = f"weight[{source}->{plan.key}]"
        layer = list(config.layers[layer_index])
        layer[node_index] = new_plan
        layers = list(config.layers)
        layers[layer_index] = tuple(layer)
        self._config = replace(config, layers=tuple(layers))
        return {
            "target": target,
            "layer": layer_index,
            "bit": bit,
            "before": before,
            "after": after,
        }

    # ------------------------------------------------------------- infer
    def infer(self, inputs: np.ndarray) -> tuple[np.ndarray, StepTiming]:
        """One inference on the loaded individual.

        The same NN is reused across a series of inputs (the weight
        buffer's reuse opportunity, §IV-D1); only the input values are
        re-latched per step.
        """
        config = self._config
        if config is None:
            raise RuntimeError("PU has no individual loaded; call load() first")
        x = np.asarray(inputs, dtype=np.float64).reshape(-1)
        if x.shape[0] != config.num_inputs:
            raise ValueError(
                f"expected {config.num_inputs} inputs, got {x.shape[0]}"
            )

        values = self._values
        values.clear()
        for key, value in zip(config.input_keys, x):
            values[key] = float(value)

        cycles = self.pu_costs.input_load_cycles
        pe_active = 0
        iterations_per_layer: list[int] = []
        for raw_layer in config.layers:
            layer = _schedule_layer(raw_layer, self.pu_costs.schedule)
            iterations = math.ceil(len(layer) / self.num_pes)
            iterations_per_layer.append(iterations)
            for it in range(iterations):
                chunk = layer[it * self.num_pes : (it + 1) * self.num_pes]
                chunk_cycles = 0
                for pe, plan in zip(self.pes, chunk):
                    result, node_cycles = pe.compute_with_cycles(plan, values)
                    values[plan.key] = result
                    pe_active += node_cycles
                    chunk_cycles = max(chunk_cycles, node_cycles)
                cycles += chunk_cycles
            cycles += self.pu_costs.layer_sync_cycles

        outputs = np.array(
            [values.get(k, 0.0) for k in config.output_keys], dtype=np.float64
        )
        timing = StepTiming(
            cycles=cycles,
            pe_active_cycles=pe_active,
            pe_provisioned_cycles=self.num_pes * cycles,
            iterations_per_layer=iterations_per_layer,
        )
        return outputs, timing

    # ------------------------------------------------------ timing-only
    def step_cycles(self) -> int:
        """Cycles one inference takes, without functional execution.

        Used by schedulers that need latency estimates before running.
        """
        config = self._config
        if config is None:
            raise RuntimeError("PU has no individual loaded; call load() first")
        return _static_step_cycles(config, self.num_pes, self.pe_costs, self.pu_costs)


def _static_step_cycles(
    config: HWNetConfig,
    num_pes: int,
    pe_costs: PECosts,
    pu_costs: PUCosts,
) -> int:
    """Closed-form per-inference latency of a configuration on n PEs."""
    cycles = pu_costs.input_load_cycles
    for raw_layer in config.layers:
        layer = _schedule_layer(raw_layer, pu_costs.schedule)
        for start in range(0, len(layer), num_pes):
            chunk = layer[start : start + num_pes]
            cycles += max(pe_costs.node_cycles(p.fan_in) for p in chunk)
        cycles += pu_costs.layer_sync_cycles
    return cycles
