"""Processing Element (PE) model (§IV-E).

Each PE is a DSP plus an activation-function unit, executing an
**output-stationary** dataflow: the PE owns one node at a time,
accumulates the node's partial sums locally over its ingress
connections, adds the bias, applies the activation, and writes the
result to the PU's value buffer.

The cycle model follows directly: one MAC cycle per ingress connection,
plus a fixed pipeline tail for the bias add, the activation unit, and
the value-buffer write-back.  "The time taken to compute each output can
be variable at each PE, depending on the node size" — that variability
is exactly ``fan_in`` here, and it is what creates the synchronization
stalls §V-A3 describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.neat.activations import activations, aggregations
from repro.neat.network import NodeEval

__all__ = ["PECosts", "ProcessingElement"]


@dataclass(frozen=True)
class PECosts:
    """Per-PE timing parameters (cycles)."""

    #: cycles per multiply-accumulate (one ingress connection)
    mac_cycles: int = 1
    #: fixed tail: bias add + activation unit + value write-back
    pipeline_depth: int = 4

    def node_cycles(self, fan_in: int) -> int:
        """Cycles for a PE to fully compute one node."""
        return self.mac_cycles * fan_in + self.pipeline_depth


class ProcessingElement:
    """Functional + timing model of one PE.

    With ``datapath=None`` (default) the PE computes in float64 with the
    same activation registry as the software forward pass, so HW and SW
    agree bit-for-bit.  With a
    :class:`~repro.inax.datapath.FixedPointFormat` attached, weights and
    value-buffer reads are quantized, the MAC accumulates wide, and the
    activation output is re-quantized — the FPGA's actual arithmetic.
    """

    def __init__(
        self,
        costs: PECosts | None = None,
        datapath=None,
        skip_zero_activations: bool = False,
    ):
        self.costs = costs or PECosts()
        self.datapath = datapath
        #: §VII future work: "Irregular NNs also have activation
        #: sparsity" — when enabled, the MAC skips ingress whose source
        #: value is exactly zero (ReLU/step networks produce many), so
        #: per-node cycles become data-dependent.
        self.skip_zero_activations = skip_zero_activations
        self.active_cycles = 0
        self.nodes_computed = 0

    def compute(self, plan: NodeEval, values: dict[int, float]) -> float:
        """Execute one node: MAC over ingress, bias, activation."""
        result, _ = self.compute_with_cycles(plan, values)
        return result

    def compute_with_cycles(
        self, plan: NodeEval, values: dict[int, float]
    ) -> tuple[float, int]:
        """Execute one node and return (result, cycles taken).

        ``values`` is the PU's value buffer (inputs + earlier nodes).
        With zero-skipping enabled the cycle count reflects only the
        non-zero ingress actually multiplied.
        """
        q = self.datapath
        effective_fan_in = plan.fan_in
        # skipping a zero term is only exact for additive aggregation
        if self.skip_zero_activations and plan.aggregation == "sum":
            ingress = [
                # exact-zero test is deliberate: only a true 0.0 term can
                # be skipped without changing the accumulated sum's bits
                (src, w)
                for src, w in plan.ingress
                if values[src] != 0.0  # repro: noqa[NUM001]
            ]
            effective_fan_in = len(ingress)
        else:
            ingress = list(plan.ingress)

        if q is None:
            weighted = [values[src] * w for src, w in ingress]
            agg = aggregations.get(plan.aggregation)(weighted)
            result = activations.get(plan.activation)(agg + plan.bias)
        else:
            weighted = [
                q.quantize(values[src]) * q.quantize(w) for src, w in ingress
            ]
            agg = aggregations.get(plan.aggregation)(weighted)
            pre_activation = agg + q.quantize(plan.bias)
            result = q.quantize(
                activations.get(plan.activation)(pre_activation)
            )
        cycles = self.costs.node_cycles(effective_fan_in)
        self.active_cycles += cycles
        self.nodes_computed += 1
        return result, cycles

    def cycles_for(self, plan: NodeEval) -> int:
        """Timing-only query (no functional execution)."""
        return self.costs.node_cycles(plan.fan_in)

    def reset_counters(self) -> None:
        self.active_cycles = 0
        self.nodes_computed = 0
