"""Thin synchronous client for the ``repro serve`` daemon.

Speaks the JSON-lines protocol of :mod:`repro.serve.server` over a
Unix socket.  One connection per call (the daemon is connection-cheap
and the protocol stateless), except :meth:`stream`, which holds its
connection open and yields events as they arrive.

Usage::

    client = ServeClient("/tmp/repro.sock")
    job = client.submit({"env": "cartpole", "generations": 3, "seed": 7})
    for event in client.stream(job):
        print(event)
    print(client.status(job)["state"])
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Iterator

from repro.serve.jobs import JobSpec

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """The daemon answered ``ok: false`` (or not at all)."""


class ServeClient:
    """Synchronous JSON-lines client (see module docstring)."""

    def __init__(
        self, socket_path: str | Path, timeout: float = 300.0
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    # ------------------------------------------------------------- wire
    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(json.dumps(payload).encode() + b"\n")
                stream.flush()
                line = stream.readline()
        if not line:
            raise ServeError("daemon closed the connection without answering")
        response = json.loads(line)
        if not response.get("ok"):
            raise ServeError(str(response.get("error", "unknown error")))
        return response

    # -------------------------------------------------------------- ops
    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("pong"))

    def submit(
        self,
        spec: JobSpec | dict[str, Any],
        tenant: str = "default",
        priority: int = 0,
    ) -> str:
        """Submit one job; returns its id (raises :class:`ServeError`
        on a malformed spec or quota refusal)."""
        payload = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        response = self._request(
            {"op": "submit", "spec": payload, "tenant": tenant,
             "priority": priority}
        )
        return str(response["job"])

    def status(self, job_id: str) -> dict[str, Any]:
        return dict(self._request({"op": "status", "job": job_id})["status"])

    def jobs(self) -> list[dict[str, Any]]:
        return list(self._request({"op": "jobs"})["jobs"])

    def cancel(self, job_id: str) -> dict[str, Any]:
        return dict(self._request({"op": "cancel", "job": job_id})["status"])

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block until the job is terminal; returns its final status."""
        return dict(self._request({"op": "wait", "job": job_id})["status"])

    def stream(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Yield the job's events (history replay, then live) until the
        terminal ``done`` event."""
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(
                    json.dumps({"op": "stream", "job": job_id}).encode()
                    + b"\n"
                )
                stream.flush()
                for line in stream:
                    response = json.loads(line)
                    if not response.get("ok"):
                        raise ServeError(
                            str(response.get("error", "unknown error"))
                        )
                    event = response["event"]
                    yield event
                    if event.get("event") == "done":
                        return

    def stats(self) -> dict[str, Any]:
        return dict(self._request({"op": "stats"})["stats"])

    def shutdown(self, drain: bool = True) -> None:
        self._request({"op": "shutdown", "drain": drain})
