"""Job and session model for the evolution service.

A :class:`JobSpec` is the immutable description of one experiment a
tenant wants run (environment, backend, population, generations,
seed, checkpoint/trace options); a :class:`Job` is the service-side
record tracking that experiment through its lifecycle::

    queued -> running -> completed
                    \\-> cancelled   (cooperative, at a generation
                    \\-> failed       boundary; always checkpointable)

Design rule for the whole ``repro.serve`` package: **no module-level
run state**.  Every piece of mutable state lives on a ``Job``, a
``JobQueue``, a ``BackendPool``, or an ``EvolutionService`` instance,
so any number of services (and their jobs) can coexist in one process
— ``tests/serve/test_no_global_state.py`` enforces this with an AST
scan.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Any

from repro.core.backends import BACKENDS
from repro.envs.registry import spec as env_spec

__all__ = ["JobState", "JobSpec", "Job", "TERMINAL_STATES"]


class JobState(Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    #: cancel requested while running; the job finishes its current
    #: generation, saves a checkpoint, and lands in CANCELLED
    CANCELLING = "cancelling"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"


#: states a job never leaves
TERMINAL_STATES = frozenset(
    (JobState.COMPLETED, JobState.CANCELLED, JobState.FAILED)
)


@dataclass(frozen=True)
class JobSpec:
    """One experiment, as submitted (immutable; travels over the wire).

    ``resume_from`` points at a crash-safe checkpoint written by a
    previous job (or ``repro run --checkpoint``); the restored
    population continues exactly — same genomes, species, innovation
    counters, RNG stream.  ``checkpoint_every`` additionally saves
    every N generations mid-run (0 = only the final/cancel
    checkpoint).  ``trace`` attaches a per-job telemetry session whose
    trace contains *only this job's* spans (the determinism-under-
    concurrency contract) and exports it next to the checkpoint.
    """

    env: str = "cartpole"
    backend: str = "cpu-fast"
    population_size: int = 24
    generations: int = 5
    seed: int = 0
    episodes_per_genome: int = 1
    workers: int = 0
    #: save a final (and on-cancel) checkpoint under the service's
    #: data dir so the job is resumable
    checkpoint: bool = True
    checkpoint_every: int = 0
    resume_from: str | None = None
    trace: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` for anything malformed (pre-admission)."""
        try:
            env_spec(self.env)
        except KeyError as error:
            raise ValueError(str(error)) from error
        if self.backend not in BACKENDS:
            names = ", ".join(repr(n) for n in sorted(BACKENDS))
            raise ValueError(
                f"unknown backend {self.backend!r}; use one of {names}"
            )
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if self.episodes_per_genome < 1:
            raise ValueError("episodes_per_genome must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {unknown}")
        return cls(**payload)


@dataclass
class Job:
    """Service-side record of one submitted experiment.

    Latency stamps use ``perf_counter`` seconds (monotonic, process
    local) — they exist to measure queue/run durations, never to be
    wall-clock timestamps.  ``events`` is the replayable telemetry
    stream (appended only on the service's event loop thread, so
    watchers never race the writer); ``cancel_event`` is the
    cooperative cancel flag the run thread polls at generation
    boundaries.
    """

    id: str
    spec: JobSpec
    tenant: str = "default"
    priority: int = 0
    submitted_at: float = 0.0
    state: JobState = JobState.QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    generations_done: int = 0
    best_fitness: float | None = None
    solved: bool = False
    error: str | None = None
    checkpoint_path: str | None = None
    trace_path: str | None = None
    #: per-generation best fitness, for bit-identity assertions
    history: list[float] = field(default_factory=list)
    #: replayable event stream (dicts; last one has ``event: "done"``)
    events: list[dict[str, Any]] = field(default_factory=list)
    #: live stream subscribers (asyncio queues owned by the loop)
    watchers: list["asyncio.Queue[dict[str, Any]]"] = field(
        default_factory=list
    )
    cancel_event: threading.Event = field(default_factory=threading.Event)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def latency(self) -> float | None:
        """Submit-to-complete seconds, once terminal."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe status snapshot (the ``status`` wire payload)."""
        return {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": self.state.value,
            "spec": self.spec.to_dict(),
            "generations_done": self.generations_done,
            "best_fitness": self.best_fitness,
            "solved": self.solved,
            "error": self.error,
            "checkpoint_path": self.checkpoint_path,
            "trace_path": self.trace_path,
            "latency_seconds": self.latency(),
        }
