"""Backend pool: leases evaluation backends to service jobs.

Building a backend is the expensive part of a small job — spawning a
worker pool, cold decode caches, environment construction.  The pool
keeps finished jobs' backends warm and leases them to later jobs with
the *same construction key* (environment, backend class, episode
count, worker count, and the full NEAT config), after
:meth:`~repro.core.backends.EvaluationBackend.reset_run_state` clears
everything a run accumulates.  Structural caches are content-keyed
and cannot change fitness bits, so a reused backend is **bit-identical
to a fresh one** — ``tests/serve/test_pool.py`` asserts exactly that —
it just skips the cold start.

``max_leases`` bounds how many backends exist at once (idle + active):
the admission-controlled queue decides *how many jobs* may run, the
pool decides *how much backend state* the process may hold.
"""

from __future__ import annotations

import threading
from dataclasses import asdict
from typing import Any

from repro.core.backends import BACKENDS, EvaluationBackend, FastCPUBackend
from repro.core.platform import default_inax_config
from repro.envs.registry import make
from repro.neat.config import NEATConfig

__all__ = ["PoolExhausted", "BackendLease", "BackendPool"]


class PoolExhausted(RuntimeError):
    """All backend leases are taken (raise, never block, so the
    service's scheduler keeps control of waiting)."""


class BackendLease:
    """One job's exclusive hold on a pooled backend."""

    __slots__ = ("backend", "key", "_pool", "_released")

    def __init__(
        self,
        backend: EvaluationBackend,
        key: tuple[Any, ...],
        pool: "BackendPool",
    ) -> None:
        self.backend = backend
        self.key = key
        self._pool = pool
        self._released = False

    def release(self, discard: bool = False) -> None:
        """Return the backend to the pool (idempotent).

        ``discard`` drops it instead — the failed-job path, where the
        backend may hold arbitrary partial state.
        """
        if not self._released:
            self._released = True
            self._pool._release(self, discard=discard)


class BackendPool:
    """Bounded pool of reusable evaluation backends.

    Thread-safe (a lock around the idle map) so leases may be taken
    and released from worker threads as well as the event loop, though
    the service only does the latter.
    """

    def __init__(self, max_leases: int = 8, max_idle_per_key: int = 2) -> None:
        if max_leases < 1:
            raise ValueError("max_leases must be >= 1")
        self.max_leases = max_leases
        self.max_idle_per_key = max_idle_per_key
        self._idle: dict[tuple[Any, ...], list[EvaluationBackend]] = {}
        self._active = 0
        self._lock = threading.Lock()
        self.created = 0
        self.reused = 0
        self.discarded = 0

    # ------------------------------------------------------------ keying
    @staticmethod
    def lease_key(
        env_name: str,
        backend_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int,
        workers: int,
    ) -> tuple[Any, ...]:
        """Construction identity: two jobs with equal keys can share a
        (reset) backend instance.  The seed is deliberately excluded —
        ``reset_run_state`` rebinds it per lease."""
        fingerprint = repr(sorted(asdict(neat_config).items()))
        return (env_name, backend_name, episodes_per_genome, workers,
                fingerprint)

    # ------------------------------------------------------------ leasing
    def lease(
        self,
        env_name: str,
        backend_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int = 1,
        workers: int = 0,
        base_seed: int = 0,
    ) -> BackendLease:
        """Lease a backend, reusing an idle one when the key matches."""
        key = self.lease_key(
            env_name, backend_name, neat_config, episodes_per_genome, workers
        )
        with self._lock:
            if self._active >= self.max_leases:
                raise PoolExhausted(
                    f"all {self.max_leases} backend leases are taken"
                )
            self._active += 1
            idle = self._idle.get(key)
            backend = idle.pop() if idle else None
            if idle is not None and not idle:
                del self._idle[key]
        if backend is not None:
            backend.reset_run_state(base_seed=base_seed)
            with self._lock:
                self.reused += 1
        else:
            try:
                backend = self._build(
                    env_name,
                    backend_name,
                    neat_config,
                    episodes_per_genome,
                    workers,
                    base_seed,
                )
            except BaseException:
                with self._lock:
                    self._active -= 1
                raise
            with self._lock:
                self.created += 1
        return BackendLease(backend, key, self)

    def _build(
        self,
        env_name: str,
        backend_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int,
        workers: int,
        base_seed: int,
    ) -> EvaluationBackend:
        backend_cls = BACKENDS[backend_name]
        kwargs: dict[str, Any] = dict(
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
        )
        if issubclass(backend_cls, FastCPUBackend):
            kwargs["workers"] = workers
        if backend_name in ("inax", "fabric"):
            # mirror E3's default device sizing so a pooled inax
            # backend behaves exactly like a directly-constructed one
            kwargs["inax_config"] = default_inax_config(
                make(env_name).num_outputs
            )
        return backend_cls(env_name, neat_config, **kwargs)

    def _release(self, lease: BackendLease, discard: bool) -> None:
        with self._lock:
            self._active -= 1
            if discard:
                self.discarded += 1
            else:
                idle = self._idle.setdefault(lease.key, [])
                if len(idle) < self.max_idle_per_key:
                    idle.append(lease.backend)
                    return
                self.discarded += 1
        lease.backend.close()

    # ------------------------------------------------------------- admin
    def stats(self) -> dict[str, int]:
        with self._lock:
            idle = sum(len(v) for v in self._idle.values())
            return {
                "active": self._active,
                "idle": idle,
                "created": self.created,
                "reused": self.reused,
                "discarded": self.discarded,
                "max_leases": self.max_leases,
            }

    def close(self) -> None:
        """Close every idle backend (worker pools, devices)."""
        with self._lock:
            idle_lists = list(self._idle.values())
            self._idle = {}
        for backends in idle_lists:
            for backend in backends:
                backend.close()
