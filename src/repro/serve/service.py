"""The evolution service: many concurrent experiments, one process.

:class:`EvolutionService` is the asyncio core of ``repro serve``.  It
multiplexes jobs over a :class:`~repro.serve.pool.BackendPool`: the
scheduler fills up to ``max_concurrent`` run slots from the
admission-controlled :class:`~repro.serve.queue.JobQueue`, each job's
synchronous evaluate/evolve loop runs on its own worker thread
(``asyncio.to_thread``), and per-generation progress streams back to
subscribers through the event loop.

**Determinism under concurrency.**  Each job thread gets a *copy* of
the submitting context (``to_thread`` semantics), installs its own
:class:`~repro.telemetry.TelemetrySession` into context-local
variables, and leases a backend whose run state was fully reset — so
N interleaved jobs produce bit-identical fitness trajectories to the
same N jobs run sequentially, and each job's trace contains only its
own spans.  ``tests/serve/test_concurrency.py`` holds this contract.

**Cancellation** is cooperative: ``cancel()`` on a running job sets a
flag the population loop polls at generation boundaries; the job
finishes its current generation, saves a crash-safe checkpoint, and
lands in ``cancelled`` — always resumable via
``JobSpec(resume_from=...)``.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path
from typing import Any, AsyncIterator

from repro.core.platform import E3, effective_neat_config
from repro.neat.checkpoint import load_checkpoint, save_checkpoint
from repro.neat.config import NEATConfig
from repro.neat.population import GenerationStats, Population
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.pool import BackendPool
from repro.serve.queue import JobQueue, QuotaConfig
from repro.telemetry import TelemetrySession

__all__ = ["EvolutionService", "percentiles"]


def percentiles(
    values: list[float], points: tuple[int, ...] = (50, 95, 99)
) -> dict[str, float]:
    """Nearest-rank percentiles (deterministic, no interpolation)."""
    out: dict[str, float] = {}
    if not values:
        return {f"p{p}": 0.0 for p in points}
    ordered = sorted(values)
    for p in points:
        rank = max(1, -(-p * len(ordered) // 100))  # ceil without floats
        out[f"p{p}"] = ordered[rank - 1]
    return out


class _GenerationReporter:
    """Per-job population reporter: progress, events, mid-run
    checkpoints.  Runs on the job's worker thread; everything that
    must be loop-owned is marshalled via ``call_soon_threadsafe``."""

    def __init__(
        self,
        service: "EvolutionService",
        job: Job,
        population: Population,
    ) -> None:
        self._service = service
        self._job = job
        self._population = population

    def on_generation(self, stats: GenerationStats) -> None:
        job = self._job
        job.generations_done = stats.generation + 1
        job.best_fitness = stats.best_fitness
        job.history.append(stats.best_fitness)
        self._service._publish_threadsafe(
            job,
            {
                "event": "generation",
                "job": job.id,
                "generation": stats.generation,
                "best_fitness": stats.best_fitness,
                "mean_fitness": stats.mean_fitness,
                "num_species": stats.num_species,
            },
        )
        every = job.spec.checkpoint_every
        if every and job.generations_done % every == 0:
            self._service._save_job_checkpoint(job, self._population)


class EvolutionService:
    """Submit / status / stream / cancel / resume over a backend pool.

    All public coroutines must be called from the service's event
    loop; the synchronous evolution work happens on worker threads the
    service owns.  ``data_dir`` (optional) is where per-job artifacts
    land: ``<job>.ckpt.json`` checkpoints and ``<job>.trace.jsonl``
    traces — without it, checkpoint/trace options are ignored.
    """

    def __init__(
        self,
        max_concurrent: int = 4,
        quotas: QuotaConfig | None = None,
        pool: BackendPool | None = None,
        data_dir: str | Path | None = None,
        keep_checkpoints: int = 2,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self.quotas = quotas if quotas is not None else QuotaConfig()
        self.queue = JobQueue(self.quotas)
        self.pool = (
            pool
            if pool is not None
            else BackendPool(max_leases=max_concurrent * 2)
        )
        self.data_dir = Path(data_dir) if data_dir is not None else None
        if self.data_dir is not None:
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.keep_checkpoints = keep_checkpoints
        self.jobs: dict[str, Job] = {}
        self._next_job = 0
        self._running: dict[str, Job] = {}
        self._tasks: dict[str, asyncio.Task[None]] = {}
        self._closed = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._scheduler: asyncio.Task[None] | None = None

    # --------------------------------------------------------- lifecycle
    async def start(self) -> "EvolutionService":
        """Bind to the running loop and start the scheduler."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._scheduler = asyncio.create_task(self._schedule_loop())
        return self

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` lets running jobs finish and cancels everything
        still queued; ``drain=False`` also requests cooperative cancel
        on every running job (each finishes its current generation and
        checkpoints).  Idempotent; always leaves the pool closed.
        """
        self._closed = True
        while True:
            job = self.queue.pop_eligible({})
            if job is None:
                break
            self._finish_cancelled_queued(job)
        if not drain:
            for job in list(self._running.values()):
                job.cancel_event.set()
                if job.state is JobState.RUNNING:
                    job.state = JobState.CANCELLING
        if self._wake is not None:
            self._wake.set()
        tasks = list(self._tasks.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        self.pool.close()

    # ------------------------------------------------------------ submit
    async def submit(
        self, spec: JobSpec, tenant: str = "default", priority: int = 0
    ) -> str:
        """Validate, admit, and enqueue one job; returns its id.

        Raises ``ValueError`` on a malformed spec and
        :class:`~repro.serve.queue.AdmissionError` on quota refusal.
        Job ids are a deterministic counter — submission order, not
        wall clock or randomness, names the job.
        """
        if self._closed:
            raise RuntimeError("service is shut down")
        spec.validate()
        if spec.resume_from is not None:
            resume = Path(spec.resume_from)
            if not resume.exists():
                raise ValueError(f"resume_from not found: {resume}")
        job_id = f"job-{self._next_job:05d}"
        job = Job(
            id=job_id,
            spec=spec,
            tenant=tenant,
            priority=priority,
            submitted_at=self._now(),
        )
        self.queue.submit(job)  # raises AdmissionError before recording
        self._next_job += 1
        self.jobs[job_id] = job
        self._publish(
            job,
            {"event": "queued", "job": job_id, "tenant": tenant,
             "priority": priority},
        )
        assert self._wake is not None, "service not started"
        self._wake.set()
        return job_id

    # ----------------------------------------------------------- queries
    def status(self, job_id: str) -> dict[str, Any]:
        return self._get(job_id).to_dict()

    def list_jobs(self) -> list[dict[str, Any]]:
        return [self.jobs[job_id].to_dict() for job_id in sorted(self.jobs)]

    async def wait(self, job_id: str) -> dict[str, Any]:
        """Block until the job is terminal; returns its final status."""
        job = self._get(job_id)
        await job.done_event.wait()
        return job.to_dict()

    async def stream(self, job_id: str) -> AsyncIterator[dict[str, Any]]:
        """Replay a job's event history, then follow it live until the
        terminal ``done`` event."""
        job = self._get(job_id)
        queue: asyncio.Queue[dict[str, Any]] = asyncio.Queue()
        # subscribe first, snapshot second — same loop tick, so no
        # event can fall between replay and live delivery
        job.watchers.append(queue)
        replay = list(job.events)
        try:
            for event in replay:
                yield event
                if event.get("event") == "done":
                    return
            while True:
                event = await queue.get()
                yield event
                if event.get("event") == "done":
                    return
        finally:
            if queue in job.watchers:
                job.watchers.remove(queue)

    def stats(self) -> dict[str, Any]:
        """Service-level counters + submit-to-complete tail latency."""
        by_state: dict[str, int] = {}
        latencies: list[float] = []
        for job in self.jobs.values():
            by_state[job.state.value] = by_state.get(job.state.value, 0) + 1
            latency = job.latency()
            if latency is not None:
                latencies.append(latency)
        return {
            "jobs": by_state,
            "queued": len(self.queue),
            "running": len(self._running),
            "latency_seconds": percentiles(latencies),
            "pool": self.pool.stats(),
        }

    # ------------------------------------------------------------ cancel
    async def cancel(self, job_id: str) -> dict[str, Any]:
        """Cancel a job; queued jobs die immediately, running jobs
        cooperatively (current generation finishes, checkpoint saved)."""
        job = self._get(job_id)
        if job.state is JobState.QUEUED and self.queue.remove(job):
            self._finish_cancelled_queued(job)
        elif job.state in (JobState.RUNNING, JobState.CANCELLING):
            job.cancel_event.set()
            job.state = JobState.CANCELLING
        return job.to_dict()

    # --------------------------------------------------------- internals
    def _get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    @staticmethod
    def _now() -> float:
        return time.perf_counter()

    def _finish_cancelled_queued(self, job: Job) -> None:
        job.state = JobState.CANCELLED
        job.finished_at = self._now()
        self._publish_done(job)

    def _publish(self, job: Job, event: dict[str, Any]) -> None:
        """Append + fan out one event (event loop thread only)."""
        job.events.append(event)
        for queue in list(job.watchers):
            queue.put_nowait(event)

    def _publish_threadsafe(self, job: Job, event: dict[str, Any]) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._publish, job, event)

    def _publish_done(self, job: Job) -> None:
        self._publish(
            job,
            {
                "event": "done",
                "job": job.id,
                "state": job.state.value,
                "generations": job.generations_done,
                "best_fitness": job.best_fitness,
                "solved": job.solved,
                "error": job.error,
            },
        )
        job.done_event.set()

    # --------------------------------------------------------- scheduler
    async def _schedule_loop(self) -> None:
        assert self._wake is not None
        while True:
            self._wake.clear()
            self._fill_slots()
            await self._wake.wait()

    def _fill_slots(self) -> None:
        if self._closed:
            return
        while len(self._running) < self.max_concurrent:
            running_per_tenant: dict[str, int] = {}
            for job in self._running.values():
                running_per_tenant[job.tenant] = (
                    running_per_tenant.get(job.tenant, 0) + 1
                )
            job = self.queue.pop_eligible(running_per_tenant)
            if job is None:
                return
            job.state = JobState.RUNNING
            job.started_at = self._now()
            self._running[job.id] = job
            self._tasks[job.id] = asyncio.create_task(self._run_job(job))

    async def _run_job(self, job: Job) -> None:
        spec = job.spec
        try:
            population: Population | None = None
            if spec.resume_from is not None:
                population = await asyncio.to_thread(
                    load_checkpoint, spec.resume_from
                )
                config = population.config
            else:
                config = effective_neat_config(
                    spec.env,
                    NEATConfig(population_size=spec.population_size),
                )
            lease = self.pool.lease(
                spec.env,
                spec.backend,
                config,
                episodes_per_genome=spec.episodes_per_genome,
                workers=spec.workers,
                base_seed=spec.seed,
            )
        except Exception as error:
            job.error = f"{type(error).__name__}: {error}"
            job.state = JobState.FAILED
            job.finished_at = self._now()
            self._publish_done(job)
            self._job_slot_freed(job)
            return
        discard = True
        try:
            discard = await asyncio.to_thread(
                self._execute, job, lease.backend, config, population
            )
        finally:
            lease.release(discard=discard)
            job.finished_at = self._now()
            self._publish_done(job)
            self._job_slot_freed(job)

    def _job_slot_freed(self, job: Job) -> None:
        self._running.pop(job.id, None)
        self._tasks.pop(job.id, None)
        assert self._wake is not None
        self._wake.set()

    # ------------------------------------------------------- worker side
    def _execute(
        self,
        job: Job,
        backend: Any,
        config: NEATConfig,
        population: Population | None,
    ) -> bool:
        """Run one job's whole evolution loop (worker thread).

        Returns True when the leased backend should be discarded (the
        failure path — it may hold arbitrary partial state).
        """
        spec = job.spec
        # the serve daemon *is* the session layer for its jobs: one
        # context-local session per traced job, never on a hot path
        session = None
        if spec.trace:
            session = TelemetrySession()  # repro: noqa[TEL001]
        try:
            e3 = E3(
                spec.env,
                backend=backend,
                neat_config=config,
                seed=spec.seed,
                telemetry=session,
                population=population,
            )
            e3.population.reporters.add(
                _GenerationReporter(self, job, e3.population)
            )
            if population is not None:
                # a restored population has no cache state; warm the
                # structural caches exactly like `repro resume` does
                backend.warm_caches(e3.population.population)
            result = e3.run(
                max_generations=spec.generations,
                stop=job.cancel_event.is_set,
            )
        except Exception as error:
            job.error = f"{type(error).__name__}: {error}"
            job.state = JobState.FAILED
            return True
        job.solved = result.solved
        job.best_fitness = result.best_fitness
        job.generations_done = result.generations
        if spec.checkpoint:
            self._save_job_checkpoint(job, e3.population)
        if session is not None and self.data_dir is not None:
            trace_path = self.data_dir / f"{job.id}.trace.jsonl"
            session.export(trace_path=trace_path)
            job.trace_path = str(trace_path)
        if job.cancel_event.is_set() and not result.solved:
            job.state = JobState.CANCELLED
        else:
            job.state = JobState.COMPLETED
        return False

    def _save_job_checkpoint(self, job: Job, population: Population) -> None:
        """Write ``<job>.ckpt.json`` (crash-safe, rotated)."""
        if self.data_dir is None:
            return
        path = self.data_dir / f"{job.id}.ckpt.json"
        save_checkpoint(population, path, keep=self.keep_checkpoints)
        job.checkpoint_path = str(path)
