"""JSON-lines socket front end for :class:`EvolutionService`.

One request per line, one (or, for ``stream``, many) response lines
back — a protocol a shell script, a CI smoke job, or the thin
:class:`~repro.serve.client.ServeClient` can speak with nothing but a
Unix socket.  Ops:

========== =============================================== ==========
op          request fields                                  response
========== =============================================== ==========
ping                                                        ``pong``
submit      ``spec`` (JobSpec dict), ``tenant``,            ``job``
            ``priority``
status      ``job``                                         ``status``
jobs                                                        ``jobs``
cancel      ``job``                                         ``status``
wait        ``job``                                         ``status``
stream      ``job``                                         ``event``*
stats                                                       ``stats``
shutdown    ``drain`` (default true)                        ``ok``
========== =============================================== ==========

Every response carries ``ok``; failures carry ``error`` instead of
data — client errors (bad spec, unknown job, quota refusal) never
take the daemon down.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import Any

from repro.serve.jobs import JobSpec
from repro.serve.queue import AdmissionError
from repro.serve.service import EvolutionService

__all__ = ["SocketServer"]


class SocketServer:
    """The daemon: one :class:`EvolutionService` behind a Unix socket."""

    def __init__(
        self, service: EvolutionService, socket_path: str | Path
    ) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: asyncio.AbstractServer | None = None
        self._shutdown_requested: asyncio.Event | None = None
        #: drain flag carried by the shutdown request
        self._shutdown_drain = True

    # --------------------------------------------------------- lifecycle
    async def start(self) -> "SocketServer":
        """Start the service and begin accepting connections."""
        self._shutdown_requested = asyncio.Event()
        await self.service.start()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )
        return self

    def request_shutdown(self, drain: bool = True) -> None:
        assert self._shutdown_requested is not None
        self._shutdown_drain = drain
        self._shutdown_requested.set()

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`),
        then drain per the request and tear everything down."""
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown(drain=self._shutdown_drain)
        if self.socket_path.exists():
            self.socket_path.unlink()

    # ------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as error:
                    await self._send(writer, {"ok": False,
                                              "error": f"bad json: {error}"})
                    continue
                keep_open = await self._dispatch(request, writer)
                if not keep_open:
                    break
        except (ConnectionResetError, BrokenPipeError):
            return  # client went away mid-request; nothing to clean up
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; returns False to close the connection."""
        op = request.get("op")
        service = self.service
        try:
            if op == "ping":
                await self._send(writer, {"ok": True, "pong": True})
            elif op == "submit":
                spec = JobSpec.from_dict(request.get("spec") or {})
                job_id = await service.submit(
                    spec,
                    tenant=str(request.get("tenant", "default")),
                    priority=int(request.get("priority", 0)),
                )
                await self._send(writer, {"ok": True, "job": job_id})
            elif op == "status":
                await self._send(
                    writer,
                    {"ok": True,
                     "status": service.status(str(request["job"]))},
                )
            elif op == "jobs":
                await self._send(
                    writer, {"ok": True, "jobs": service.list_jobs()}
                )
            elif op == "cancel":
                status = await service.cancel(str(request["job"]))
                await self._send(writer, {"ok": True, "status": status})
            elif op == "wait":
                status = await service.wait(str(request["job"]))
                await self._send(writer, {"ok": True, "status": status})
            elif op == "stream":
                async for event in service.stream(str(request["job"])):
                    await self._send(writer, {"ok": True, "event": event})
            elif op == "stats":
                await self._send(
                    writer, {"ok": True, "stats": service.stats()}
                )
            elif op == "shutdown":
                await self._send(writer, {"ok": True, "shutdown": True})
                self.request_shutdown(drain=bool(request.get("drain", True)))
                return False
            else:
                await self._send(
                    writer, {"ok": False, "error": f"unknown op {op!r}"}
                )
        except (KeyError, ValueError, AdmissionError, RuntimeError) as error:
            await self._send(
                writer,
                {"ok": False,
                 "error": f"{type(error).__name__}: {error}"},
            )
        return True

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, payload: dict[str, Any]
    ) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
