"""Multi-tenant evolution service: many experiments, one process.

The serve layer is ROADMAP item 2 — the "millions of users" posture
GeneSys frames as continuous, always-on evolution-as-a-service.  It
multiplexes concurrent experiments over the platform's pluggable
backends:

* :mod:`repro.serve.jobs` — the :class:`JobSpec`/:class:`Job` model
  (submit / status / stream / cancel / resume-from-checkpoint);
* :mod:`repro.serve.queue` — deterministic priority queue with
  admission control and per-tenant quotas;
* :mod:`repro.serve.pool` — :class:`BackendPool`, leasing warm (but
  fully run-state-reset) backends to jobs;
* :mod:`repro.serve.service` — :class:`EvolutionService`, the asyncio
  scheduler tying them together;
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — the
  ``repro serve`` daemon's JSON-lines Unix-socket front end and its
  thin synchronous client.

The package-wide rule (enforced by ``tests/serve/
test_no_global_state.py``): **no module-level run state** — every
mutable thing hangs off an instance, which is what makes interleaved
jobs bit-identical to sequential ones.
"""

from __future__ import annotations

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobSpec, JobState
from repro.serve.pool import BackendLease, BackendPool, PoolExhausted
from repro.serve.queue import AdmissionError, JobQueue, QuotaConfig
from repro.serve.server import SocketServer
from repro.serve.service import EvolutionService, percentiles

__all__ = [
    "Job",
    "JobSpec",
    "JobState",
    "JobQueue",
    "QuotaConfig",
    "AdmissionError",
    "BackendPool",
    "BackendLease",
    "PoolExhausted",
    "EvolutionService",
    "percentiles",
    "SocketServer",
    "ServeClient",
    "ServeError",
]
