"""Priority job queue with admission control and per-tenant quotas.

Admission happens at the door (:meth:`JobQueue.submit` raises
:class:`AdmissionError` before the job is ever recorded), so a noisy
tenant cannot fill the queue or starve others:

* **global depth** — the queue holds at most ``max_queue_depth`` jobs;
* **per-tenant queued cap** — one tenant can hold at most
  ``max_queued_per_tenant`` queued slots;
* **spec ceilings** — population / generation / worker counts above
  the configured maxima are refused outright (an edge box serving many
  tenants cannot let one of them submit a 100k-genome run);
* **per-tenant running cap** — enforced at *dispatch* time:
  :meth:`JobQueue.pop_eligible` skips jobs whose tenant already has
  ``max_running_per_tenant`` running, without losing their place.

Ordering is deterministic: higher ``priority`` first, FIFO within a
priority level (a monotonic sequence number breaks ties — never a
timestamp, never object identity).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping

from repro.serve.jobs import Job

__all__ = ["QuotaConfig", "AdmissionError", "JobQueue"]


@dataclass(frozen=True)
class QuotaConfig:
    """Admission-control knobs (see module docstring for semantics)."""

    max_queue_depth: int = 256
    max_queued_per_tenant: int = 64
    max_running_per_tenant: int = 4
    max_population: int = 512
    max_generations: int = 10_000
    max_workers: int = 8


class AdmissionError(RuntimeError):
    """A job was refused at the door (quota or spec ceiling)."""


class JobQueue:
    """Deterministic priority queue over :class:`Job` records.

    Single-threaded by design: every method runs on the service's
    event loop thread, so there is no lock — and no hidden global
    state; each service owns its own queue instance.
    """

    def __init__(self, quotas: QuotaConfig | None = None) -> None:
        self.quotas = quotas if quotas is not None else QuotaConfig()
        #: (-priority, seq, job) — heapq pops highest priority, FIFO
        #: within a priority level
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def queued_for(self, tenant: str) -> int:
        return sum(1 for _, _, job in self._heap if job.tenant == tenant)

    # -------------------------------------------------------- admission
    def submit(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`AdmissionError`."""
        quotas = self.quotas
        if len(self._heap) >= quotas.max_queue_depth:
            raise AdmissionError(
                f"queue full ({quotas.max_queue_depth} jobs)"
            )
        if self.queued_for(job.tenant) >= quotas.max_queued_per_tenant:
            raise AdmissionError(
                f"tenant {job.tenant!r} already has "
                f"{quotas.max_queued_per_tenant} queued jobs"
            )
        spec = job.spec
        if spec.population_size > quotas.max_population:
            raise AdmissionError(
                f"population_size {spec.population_size} exceeds quota "
                f"{quotas.max_population}"
            )
        if spec.generations > quotas.max_generations:
            raise AdmissionError(
                f"generations {spec.generations} exceeds quota "
                f"{quotas.max_generations}"
            )
        if spec.workers > quotas.max_workers:
            raise AdmissionError(
                f"workers {spec.workers} exceeds quota {quotas.max_workers}"
            )
        heapq.heappush(self._heap, (-job.priority, self._seq, job))
        self._seq += 1

    # --------------------------------------------------------- dispatch
    def pop_eligible(self, running_per_tenant: Mapping[str, int]) -> Job | None:
        """Pop the best job whose tenant is under its running cap.

        Jobs skipped for tenant saturation keep their heap position
        (priority and FIFO order) for the next dispatch round.
        """
        cap = self.quotas.max_running_per_tenant
        skipped: list[tuple[int, int, Job]] = []
        chosen: Job | None = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            job = entry[2]
            if running_per_tenant.get(job.tenant, 0) >= cap:
                skipped.append(entry)
                continue
            chosen = job
            break
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return chosen

    def remove(self, job: Job) -> bool:
        """Withdraw a queued job (the queued-cancel path)."""
        for index, (_, _, queued) in enumerate(self._heap):
            if queued is job:
                self._heap.pop(index)
                heapq.heapify(self._heap)
                return True
        return False
