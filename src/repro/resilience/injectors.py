"""Fault injectors: adapters between a :class:`FaultPlan` and the hardware
model / environment surfaces where faults land.

:class:`DeviceFaultInjector` is the INAX-side adapter — the
:class:`~repro.inax.accelerator.INAX` device calls into it at wave
load, at each lock-step, and around each DMA transfer.  Every hook is
keyed by a ``wave=W|step=S|slot=K`` site string, so injected hardware
faults are replayable and independent of host timing.  Cycle-only
faults (``inax.pu_stall``, ``dma.input_drop``) perturb the cycle
accounting but never the computed values; data faults
(``inax.weight_bitflip``, ``inax.value_bitflip``,
``dma.output_corrupt``) corrupt exactly one float64 bit per firing.

:func:`wrap_env` is the environment-side adapter: it wraps an env in
:class:`~repro.envs.wrappers.FaultySensor` when the plan arms any
``env.*`` kind, so NaN/inf sensor faults flow through the normal
observation path and exercise the quarantine machinery downstream.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.resilience.faults import (
    DEVICE_DROP,
    DEVICE_KINDS,
    DEVICE_WEDGE,
    DMA_INPUT_DROP,
    DMA_OUTPUT_CORRUPT,
    ENV_KINDS,
    ENV_OBS_INF,
    ENV_OBS_NAN,
    ENV_REWARD_NAN,
    FABRIC_KINDS,
    HEARTBEAT_DELAY,
    MIGRATION_CORRUPT,
    PU_STALL,
    VALUE_BITFLIP,
    WEIGHT_BITFLIP,
    WORKER_KINDS,
    DeviceFault,
    FaultPlan,
    flip_float64_bit,
)

__all__ = [
    "DeviceFaultInjector",
    "wrap_env",
    "has_device_faults",
    "has_env_faults",
    "has_fabric_faults",
    "has_worker_faults",
]

#: default extra cycles for ``inax.pu_stall`` when the spec has no param
_DEFAULT_STALL_CYCLES = 1000
#: default heartbeat penalty base cycles when the spec has no param
_DEFAULT_HEARTBEAT_CYCLES = 256


def has_device_faults(plan: FaultPlan | None) -> bool:
    return plan is not None and plan.has(*DEVICE_KINDS)


def has_env_faults(plan: FaultPlan | None) -> bool:
    return plan is not None and plan.has(*ENV_KINDS)


def has_fabric_faults(plan: FaultPlan | None) -> bool:
    return plan is not None and plan.has(*FABRIC_KINDS)


def has_worker_faults(plan: FaultPlan | None) -> bool:
    return plan is not None and plan.has(*WORKER_KINDS)


def wrap_env(env: Any, plan: FaultPlan | None) -> Any:
    """Wrap ``env`` in a :class:`FaultySensor` when env faults are armed."""
    if not has_env_faults(plan):
        return env
    from repro.envs.wrappers import FaultySensor

    assert plan is not None  # has_env_faults guarantees it

    def probability(kind: str) -> float:
        spec = plan.spec(kind)
        return spec.probability if spec is not None else 0.0

    return FaultySensor(
        env,
        obs_nan=probability(ENV_OBS_NAN),
        obs_inf=probability(ENV_OBS_INF),
        reward_nan=probability(ENV_REWARD_NAN),
        seed=plan.seed,
    )


class DeviceFaultInjector:
    """INAX-facing fault hooks, all keyed by (wave, step, slot) sites.

    ``site_prefix`` namespaces every site string (the fabric prepends
    ``dev=N|`` per device, so two devices probing the same wave/step
    coordinates draw independently).  The ``fabric.*`` hooks at the
    bottom are farm-level — the :class:`~repro.fabric.supervisor.
    FabricSupervisor` calls them with generation-scoped sites.
    """

    def __init__(self, plan: FaultPlan, site_prefix: str = "") -> None:
        self.plan = plan
        self.site_prefix = site_prefix

    # ------------------------------------------------------------ wave load
    def on_load(self, pu: Any, wave: int, slot: int) -> None:
        """Maybe flip one weight/bias bit in the PU's just-loaded config."""
        site = f"{self.site_prefix}wave={wave}|slot={slot}"
        if not self.plan.fires(WEIGHT_BITFLIP, site):
            return
        detail = pu.flip_weight_bit(self.plan.rng_for(WEIGHT_BITFLIP, site))
        if detail is not None:
            self.plan.record(WEIGHT_BITFLIP, site, **detail)

    # ------------------------------------------------------------ lock-step
    def check_wedge(self, wave: int, step: int) -> None:
        """Raise :class:`DeviceFault` when the device wedges this step."""
        site = f"{self.site_prefix}wave={wave}|step={step}"
        if self.plan.fires(DEVICE_WEDGE, site):
            self.plan.record(DEVICE_WEDGE, site)
            raise DeviceFault(f"injected inax.wedge at {site}")

    def stall_cycles(self, wave: int, step: int, slot: int) -> int:
        """Extra cycles a stalled PU burns this step (0 = no stall)."""
        spec = self.plan.spec(PU_STALL)
        if spec is None:
            return 0
        site = f"{self.site_prefix}wave={wave}|step={step}|slot={slot}"
        if not self.plan.fires(PU_STALL, site):
            return 0
        cycles = int(spec.param) if spec.param > 0 else _DEFAULT_STALL_CYCLES
        self.plan.record(PU_STALL, site, cycles=cycles)
        return cycles

    def input_retries(self, wave: int, step: int) -> int:
        """Dropped input DMA transfers this step (each one is re-sent)."""
        site = f"{self.site_prefix}wave={wave}|step={step}"
        if self.plan.fires(DMA_INPUT_DROP, site):
            self.plan.record(DMA_INPUT_DROP, site)
            return 1
        return 0

    # ----------------------------------------------------------- data paths
    def _flip_element(
        self, values: np.ndarray, kind: str, site: str
    ) -> np.ndarray:
        rng = self.plan.rng_for(kind, site)
        flat = np.array(values, dtype=float).reshape(-1)
        if flat.size == 0:
            return values
        index = int(rng.integers(flat.size))
        bit = int(rng.integers(64))
        before = float(flat[index])
        flat[index] = flip_float64_bit(before, bit)
        self.plan.record(
            kind, site,
            index=index, bit=bit, before=before, after=float(flat[index]),
        )
        return flat.reshape(np.shape(values))

    def corrupt_input(
        self, values: np.ndarray, wave: int, step: int, slot: int
    ) -> np.ndarray:
        """Maybe flip one bit in a slot's input value buffer."""
        site = f"{self.site_prefix}wave={wave}|step={step}|slot={slot}|in"
        if not self.plan.fires(VALUE_BITFLIP, site):
            return values
        return self._flip_element(values, VALUE_BITFLIP, site)

    def corrupt_output(
        self, values: np.ndarray, wave: int, step: int, slot: int
    ) -> np.ndarray:
        """Maybe flip one bit in a slot's DMA'd output."""
        site = f"{self.site_prefix}wave={wave}|step={step}|slot={slot}|out"
        if not self.plan.fires(DMA_OUTPUT_CORRUPT, site):
            return values
        return self._flip_element(values, DMA_OUTPUT_CORRUPT, site)

    # --------------------------------------------------------- fabric hooks
    def device_drops(self, gen: int, device: int, dispatch: "int | str") -> bool:
        """Does this device miss its heartbeat probe outright?

        ``dispatch`` counts probes within the generation (a re-probed
        device gets a fresh draw); the probationary re-admission probe
        passes the literal ``"probe"`` so it draws independently of the
        dispatch stream.
        """
        site = f"{self.site_prefix}gen={gen}|device={device}|dispatch={dispatch}"
        if self.plan.fires(DEVICE_DROP, site):
            self.plan.record(DEVICE_DROP, site)
            return True
        return False

    def heartbeat_delay_cycles(
        self, gen: int, device: int, dispatch: int, misses: int,
        backoff_factor: float = 2.0,
    ) -> int:
        """Penalty cycles a late-heartbeat device burns at this probe.

        The penalty grows exponentially with the device's consecutive
        miss count (capped), mirroring the shard supervisor's retry
        backoff in the cycle domain.
        """
        spec = self.plan.spec(HEARTBEAT_DELAY)
        if spec is None:
            return 0
        site = f"{self.site_prefix}gen={gen}|device={device}|dispatch={dispatch}"
        if not self.plan.fires(HEARTBEAT_DELAY, site):
            return 0
        base = int(spec.param) if spec.param > 0 else _DEFAULT_HEARTBEAT_CYCLES
        cycles = int(base * backoff_factor ** min(misses, 10))
        self.plan.record(HEARTBEAT_DELAY, site, cycles=cycles, misses=misses)
        return cycles

    def migration_corrupted(self, gen: int, src: int, dst: int) -> bool:
        """Is the island-migration edge ``src -> dst`` dropped this barrier?"""
        site = f"{self.site_prefix}gen={gen}|edge={src}->{dst}"
        if self.plan.fires(MIGRATION_CORRUPT, site):
            self.plan.record(MIGRATION_CORRUPT, site)
            return True
        return False
