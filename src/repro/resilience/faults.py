"""Deterministic, seeded fault injection: the chaos layer's source of truth.

The resilience contract is *replayable chaos*: every injected fault is
a pure function of ``(plan seed, fault kind, site string)``, where the
site string names the exact place and attempt the fault could fire
(``gen=3|shard=1|attempt=0``, ``wave=2|step=17|slot=4``).  No injector
keeps RNG state, so

* the same :class:`FaultPlan` replayed over the same run produces the
  same fault event log, byte for byte;
* a retried shard or re-run wave gets a *fresh* draw (the attempt index
  is part of the site), so retries can succeed;
* shard placement, worker count, and wall-clock never influence what
  fires.

Faults that need randomness beyond fire/no-fire (which bit to flip,
which buffer element to corrupt) get a dedicated ``numpy`` generator
from :meth:`FaultPlan.rng_for`, seeded from the same hash stream.

Fault kinds
-----------

===========================  ====================================================
kind                         effect
===========================  ====================================================
``worker.crash``             cpu-fast worker calls ``os._exit`` mid-task
``worker.hang``              cpu-fast worker sleeps past the shard watchdog
``worker.error``             cpu-fast worker raises :class:`InjectedWorkerError`
``inax.weight_bitflip``      one bit flips in a PU's loaded weight buffer
``inax.value_bitflip``       one bit flips in a step's input value buffer
``inax.pu_stall``            one PU stalls for ``param`` extra cycles
``inax.wedge``               the device wedges; the wave raises :class:`DeviceFault`
``dma.input_drop``           an input DMA transfer drops and is re-sent
``dma.output_corrupt``       one bit flips in a step's DMA'd output
``env.obs_nan``              env observation element becomes NaN
``env.obs_inf``              env observation element becomes ±inf
``env.reward_nan``           env step reward becomes NaN
``fabric.device_drop``       a farm device misses a heartbeat probe outright
``fabric.heartbeat_delay``   a farm device answers its probe late (cycle penalty)
``fabric.migration_corrupt`` one island-migration edge is dropped (skip-and-log)
===========================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.telemetry import get_metrics, get_tracer

__all__ = [
    "WORKER_CRASH",
    "WORKER_HANG",
    "WORKER_ERROR",
    "WEIGHT_BITFLIP",
    "VALUE_BITFLIP",
    "PU_STALL",
    "DEVICE_WEDGE",
    "DMA_INPUT_DROP",
    "DMA_OUTPUT_CORRUPT",
    "ENV_OBS_NAN",
    "ENV_OBS_INF",
    "ENV_REWARD_NAN",
    "DEVICE_DROP",
    "HEARTBEAT_DELAY",
    "MIGRATION_CORRUPT",
    "KNOWN_KINDS",
    "WORKER_KINDS",
    "DEVICE_KINDS",
    "ENV_KINDS",
    "FABRIC_KINDS",
    "DeviceFault",
    "InjectedWorkerError",
    "FaultSpec",
    "FaultPlan",
    "ResilienceEvent",
    "emit_event",
    "flip_float64_bit",
    "maybe_fail_worker",
]

# ------------------------------------------------------------- fault kinds
WORKER_CRASH = "worker.crash"
WORKER_HANG = "worker.hang"
WORKER_ERROR = "worker.error"
WEIGHT_BITFLIP = "inax.weight_bitflip"
VALUE_BITFLIP = "inax.value_bitflip"
PU_STALL = "inax.pu_stall"
DEVICE_WEDGE = "inax.wedge"
DMA_INPUT_DROP = "dma.input_drop"
DMA_OUTPUT_CORRUPT = "dma.output_corrupt"
ENV_OBS_NAN = "env.obs_nan"
ENV_OBS_INF = "env.obs_inf"
ENV_REWARD_NAN = "env.reward_nan"
DEVICE_DROP = "fabric.device_drop"
HEARTBEAT_DELAY = "fabric.heartbeat_delay"
MIGRATION_CORRUPT = "fabric.migration_corrupt"

#: kinds that target cpu-fast worker processes (detected by supervision)
WORKER_KINDS = (WORKER_CRASH, WORKER_HANG, WORKER_ERROR)
#: kinds that target the INAX device (handled by per-wave fallback)
DEVICE_KINDS = (
    WEIGHT_BITFLIP,
    VALUE_BITFLIP,
    PU_STALL,
    DEVICE_WEDGE,
    DMA_INPUT_DROP,
    DMA_OUTPUT_CORRUPT,
)
#: kinds that target environment observations/rewards (quarantine path)
ENV_KINDS = (ENV_OBS_NAN, ENV_OBS_INF, ENV_REWARD_NAN)
#: kinds that target the device farm (handled by the fabric supervisor)
FABRIC_KINDS = (DEVICE_DROP, HEARTBEAT_DELAY, MIGRATION_CORRUPT)
KNOWN_KINDS = WORKER_KINDS + DEVICE_KINDS + ENV_KINDS + FABRIC_KINDS

#: default sleep for ``worker.hang`` when the spec carries no param —
#: long enough that only the shard watchdog can end it
_DEFAULT_HANG_SECONDS = 3600.0
#: exit status for ``worker.crash`` (distinguishable from signal deaths)
WORKER_CRASH_EXIT_CODE = 17


class DeviceFault(RuntimeError):
    """The INAX device hit an (injected or real) unrecoverable fault."""


class InjectedWorkerError(RuntimeError):
    """A ``worker.error`` fault fired inside a cpu-fast worker shard."""


# ------------------------------------------------------------- bit flipping
def flip_float64_bit(value: float, bit: int) -> float:
    """Flip one bit of a float64's IEEE-754 representation."""
    if not 0 <= bit < 64:
        raise ValueError(f"bit must be in [0, 64), got {bit}")
    (as_int,) = struct.unpack("<Q", struct.pack("<d", float(value)))
    (flipped,) = struct.unpack("<d", struct.pack("<Q", as_int ^ (1 << bit)))
    return flipped


# ---------------------------------------------------------------- telemetry
def emit_event(kind: str, site: str) -> None:
    """Publish one resilience event to the installed telemetry sinks.

    Counter ``resilience.<kind>`` increments and a zero-duration marker
    span lands on the host track, so chaos runs are auditable from the
    exported trace alone.  No-op when telemetry is disabled.
    """
    metrics = get_metrics()
    if metrics is not None:
        metrics.counter(f"resilience.{kind}").inc()
    tracer = get_tracer()
    if tracer is not None:
        tracer.add_span(
            f"resilience.{kind}", start=tracer.now(), duration=0.0, site=site
        )


# -------------------------------------------------------------------- events
@dataclass
class ResilienceEvent:
    """One structured fault/recovery occurrence (injected or reactive)."""

    kind: str
    #: where it happened, e.g. ``gen=3|shard=1|attempt=0``
    site: str
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "site": self.site, "details": dict(self.details)}


# --------------------------------------------------------------------- specs
@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed at a probability, with an optional parameter.

    ``param`` meaning depends on the kind: stall cycles for
    ``inax.pu_stall``, hang seconds for ``worker.hang``; ignored
    elsewhere.
    """

    kind: str
    probability: float
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KNOWN_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability for {self.kind!r} must be in [0, 1], "
                f"got {self.probability}"
            )


class FaultPlan:
    """A seeded, replayable set of armed faults.

    Picklable (it crosses the ``cpu-fast`` worker-initializer boundary)
    and stateless in its draws: :meth:`fires` and :meth:`rng_for` hash
    ``(seed, kind, site)`` — they never mutate the plan, so the order
    (or process) in which sites are probed cannot change any outcome.
    :attr:`events` accumulates what actually fired *in this process*.
    """

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self.specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.kind in self.specs:
                raise ValueError(f"duplicate fault kind {spec.kind!r}")
            self.specs[spec.kind] = spec
        self.events: list[ResilienceEvent] = []

    # ------------------------------------------------------------- queries
    def spec(self, kind: str) -> FaultSpec | None:
        return self.specs.get(kind)

    def has(self, *kinds: str) -> bool:
        """True when any of ``kinds`` is armed with probability > 0."""
        return any(
            kind in self.specs and self.specs[kind].probability > 0.0
            for kind in kinds
        )

    def _draw(self, kind: str, site: str) -> float:
        digest = hashlib.sha256(f"{self.seed}|{kind}|{site}".encode()).digest()
        return int.from_bytes(digest[:8], "little") / 2.0**64

    def fires(self, kind: str, site: str) -> bool:
        """Deterministic Bernoulli draw: does ``kind`` fire at ``site``?"""
        spec = self.specs.get(kind)
        if spec is None:
            return False
        if spec.probability >= 1.0:
            return True
        if spec.probability <= 0.0:
            return False
        return self._draw(kind, site) < spec.probability

    def rng_for(self, kind: str, site: str) -> np.random.Generator:
        """Site-keyed generator for faults that need more than one draw."""
        digest = hashlib.sha256(f"{self.seed}|rng|{kind}|{site}".encode()).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    # ----------------------------------------------------------- recording
    def record(self, kind: str, site: str, **details: Any) -> ResilienceEvent:
        """Append a structured event and publish it to telemetry."""
        event = ResilienceEvent(kind=kind, site=site, details=dict(details))
        self.events.append(event)
        emit_event(kind, site)
        return event

    def event_log(self) -> list[dict[str, Any]]:
        """The events recorded in this process, as comparable dicts."""
        return [event.to_dict() for event in self.events]

    # --------------------------------------------------------- (de)serialize
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "faults": [
                {"kind": s.kind, "probability": s.probability, "param": s.param}
                for s in self.specs.values()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        specs = [
            FaultSpec(
                kind=item["kind"],
                probability=float(item["probability"]),
                param=float(item.get("param", 0.0)),
            )
            for item in payload.get("faults", [])
        ]
        return cls(seed=int(payload.get("seed", 0)), specs=specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar: ``seed=7,worker.crash@0.25,inax.pu_stall@0.1:500``.

        Comma-separated terms; ``seed=N`` sets the plan seed and every
        other term is ``kind@probability`` or ``kind@probability:param``.
        """
        seed = 0
        specs: list[FaultSpec] = []
        for raw in text.split(","):
            term = raw.strip()
            if not term:
                continue
            if term.startswith("seed="):
                seed = int(term[len("seed="):])
                continue
            kind, sep, rest = term.partition("@")
            if not sep or not rest:
                raise ValueError(
                    f"bad fault term {term!r}: expected kind@probability[:param]"
                )
            prob_text, _, param_text = rest.partition(":")
            specs.append(
                FaultSpec(
                    kind=kind.strip(),
                    probability=float(prob_text),
                    param=float(param_text) if param_text else 0.0,
                )
            )
        return cls(seed=seed, specs=specs)

    @classmethod
    def load(cls, source: "str | Path") -> "FaultPlan":
        """Build a plan from a JSON file path or an inline spec string."""
        path = Path(source)
        try:
            is_file = path.is_file()
        except OSError:
            is_file = False
        if is_file:
            return cls.from_dict(json.loads(path.read_text()))
        return cls.parse(str(source))

    def __repr__(self) -> str:
        armed = ", ".join(
            f"{s.kind}@{s.probability:g}" for s in self.specs.values()
        )
        return f"FaultPlan(seed={self.seed}, [{armed}])"


# ------------------------------------------------------------ worker faults
def maybe_fail_worker(plan: "FaultPlan | None", site: str) -> None:
    """Fire any armed worker fault at ``site`` (called inside a shard).

    ``worker.crash`` hard-exits the process (the pool loses the task and
    the parent's watchdog times out), ``worker.hang`` sleeps past the
    watchdog, ``worker.error`` raises so the parent sees the exception
    through ``AsyncResult.get``.
    """
    if plan is None:
        return
    if plan.fires(WORKER_CRASH, site):
        os._exit(WORKER_CRASH_EXIT_CODE)
    if plan.fires(WORKER_HANG, site):
        spec = plan.specs[WORKER_HANG]
        time.sleep(spec.param if spec.param > 0 else _DEFAULT_HANG_SECONDS)
    if plan.fires(WORKER_ERROR, site):
        raise InjectedWorkerError(f"injected worker.error at {site}")
