"""Resilience: deterministic fault injection, supervision, degradation.

E3's premise is *autonomous* learning at the edge — the evolve/evaluate
loop must survive flaky hardware unattended.  This package makes fault
scenarios a first-class, replayable workload:

* :mod:`repro.resilience.faults` — :class:`FaultPlan`: seeded,
  stateless fault draws (every fault is a pure function of
  ``(seed, kind, site)``), the fault-kind taxonomy, and structured
  :class:`ResilienceEvent` records;
* :mod:`repro.resilience.injectors` — adapters that land plan faults
  on the INAX device model and the environment observation path;
* :mod:`repro.resilience.supervisor` — the cpu-fast shard watchdog
  with retry/backoff on a respawned pool and in-process degradation;
* :mod:`repro.resilience.quarantine` — the non-finite-fitness sentinel
  that keeps NaN out of selection.

The degradation ladder is ``inax -> cpu-fast -> cpu``: a faulted INAX
wave falls back to the bit-identical software path, a failed shard
retries then degrades to in-process evaluation, and because every
episode is seeded per ``(genome, episode)`` the ladder never changes
results — see ``docs/resilience.md``.
"""

from repro.resilience.faults import (
    DEVICE_DROP,
    DEVICE_KINDS,
    DEVICE_WEDGE,
    DMA_INPUT_DROP,
    DMA_OUTPUT_CORRUPT,
    ENV_KINDS,
    ENV_OBS_INF,
    ENV_OBS_NAN,
    ENV_REWARD_NAN,
    FABRIC_KINDS,
    HEARTBEAT_DELAY,
    KNOWN_KINDS,
    MIGRATION_CORRUPT,
    PU_STALL,
    VALUE_BITFLIP,
    WEIGHT_BITFLIP,
    WORKER_CRASH,
    WORKER_ERROR,
    WORKER_HANG,
    WORKER_KINDS,
    DeviceFault,
    FaultPlan,
    FaultSpec,
    InjectedWorkerError,
    ResilienceEvent,
    emit_event,
    flip_float64_bit,
    maybe_fail_worker,
)
from repro.resilience.injectors import (
    DeviceFaultInjector,
    has_device_faults,
    has_env_faults,
    has_fabric_faults,
    has_worker_faults,
    wrap_env,
)
from repro.resilience.quarantine import (
    DEFAULT_PENALTY,
    QUARANTINE,
    quarantine_nonfinite,
)
from repro.resilience.supervisor import (
    ShardSupervisor,
    SupervisorConfig,
    shutdown_pool,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "ResilienceEvent",
    "DeviceFault",
    "InjectedWorkerError",
    "DeviceFaultInjector",
    "ShardSupervisor",
    "SupervisorConfig",
    "shutdown_pool",
    "quarantine_nonfinite",
    "wrap_env",
    "emit_event",
    "flip_float64_bit",
    "maybe_fail_worker",
    "has_device_faults",
    "has_env_faults",
    "has_fabric_faults",
    "has_worker_faults",
    "QUARANTINE",
    "DEFAULT_PENALTY",
    "KNOWN_KINDS",
    "WORKER_KINDS",
    "DEVICE_KINDS",
    "ENV_KINDS",
    "FABRIC_KINDS",
    "WORKER_CRASH",
    "WORKER_HANG",
    "WORKER_ERROR",
    "WEIGHT_BITFLIP",
    "VALUE_BITFLIP",
    "PU_STALL",
    "DEVICE_WEDGE",
    "DMA_INPUT_DROP",
    "DMA_OUTPUT_CORRUPT",
    "ENV_OBS_NAN",
    "ENV_OBS_INF",
    "ENV_REWARD_NAN",
    "DEVICE_DROP",
    "HEARTBEAT_DELAY",
    "MIGRATION_CORRUPT",
]
