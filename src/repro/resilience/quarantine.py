"""Quarantine: keep non-finite fitness out of the selection loop.

A NaN observation (faulty sensor, corrupted buffer) can propagate into
a NaN fitness; NaN compares false against everything, so one poisoned
genome silently breaks tournament ordering, species fitness means, and
stagnation tracking.  Instead of letting that happen — or aborting the
generation — every backend scans fitness after evaluation and replaces
non-finite values with a sentinel penalty, recording a structured
``quarantine.nonfinite`` event per genome.  Selection then treats the
genome as maximally unfit, which is exactly the population-level
redundancy argument: one bad evaluation is a casualty, not a crash.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

from repro.resilience.faults import ResilienceEvent, emit_event

__all__ = ["QUARANTINE", "DEFAULT_PENALTY", "quarantine_nonfinite"]

#: event kind recorded per quarantined genome
QUARANTINE = "quarantine.nonfinite"
#: sentinel fitness: finite, and far below any real task's floor
DEFAULT_PENALTY = -1e9


def quarantine_nonfinite(
    genomes: Iterable[Any],
    penalty: float = DEFAULT_PENALTY,
    site_prefix: str = "",
) -> list[ResilienceEvent]:
    """Replace NaN/inf fitness with ``penalty``; returns the events.

    Genomes with ``fitness is None`` are left alone (the population
    loop raises its own error for those — an unevaluated genome is a
    bug, not a fault).
    """
    events: list[ResilienceEvent] = []
    for genome in genomes:
        fitness = genome.fitness
        if fitness is None or math.isfinite(fitness):
            continue
        site = f"{site_prefix}genome={genome.key}"
        event = ResilienceEvent(
            kind=QUARANTINE,
            site=site,
            details={"fitness": str(float(fitness)), "penalty": penalty},
        )
        genome.fitness = penalty
        events.append(event)
        emit_event(QUARANTINE, site)
    return events
