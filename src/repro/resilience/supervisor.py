"""Shard supervision: watchdog, retry with backoff, graceful degrade.

``FastCPUBackend`` hands each generation's shards to a
:class:`ShardSupervisor` instead of calling ``Pool.map`` directly.  The
supervisor turns three failure modes into recoverable events:

* **hard crash** (``os._exit`` in a worker) — ``multiprocessing.Pool``
  respawns the process but silently *drops* the in-flight task, so the
  only reliable detection is the shard watchdog timing out;
* **hang** — same watchdog;
* **exception** — surfaces directly through ``AsyncResult.get``.

Failed shards are retried on a freshly-spawned pool with exponential
backoff; the per-(genome, episode) seeding contract makes a retried
shard bit-identical to a first-try one, so supervision never changes
results.  After ``max_retries`` the failed shards degrade to an
in-process fallback (the caller supplies it), and after
``disable_after`` consecutive degraded generations the supervisor
disables itself — the backend then stops sharding entirely rather than
paying respawn churn forever.

Pool teardown is bounded: ``Pool.join`` has no timeout, so
:func:`shutdown_pool` joins on a daemon thread and gives up after
``join_timeout`` seconds — a wedged worker can never hang interpreter
shutdown.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.resilience.faults import ResilienceEvent, emit_event

__all__ = ["SupervisorConfig", "ShardSupervisor", "shutdown_pool"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Recovery-policy knobs shared by shard and fabric supervision.

    One frozen config covers both supervisors so a run's recovery
    policy is a single recordable value (``RunManifest.supervisor``):
    the shard watchdog reads the timeout/backoff knobs in the
    wall-clock domain, the fabric supervisor reads ``max_retries``/
    ``backoff_factor`` in the heartbeat/cycle domain plus its own
    ``probation_generations``.
    """

    #: watchdog: one attempt's shards must all finish within this window
    shard_timeout: float = 120.0
    #: shard retries per generation before failed shards degrade
    #: in-process; fabric heartbeat misses per generation before a
    #: device is evicted
    max_retries: int = 2
    #: backoff delay = min(base * factor**attempt, max); the fabric
    #: reuses ``backoff_factor`` to scale heartbeat penalty cycles
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    #: bound on ``Pool.join`` during teardown/respawn
    join_timeout: float = 5.0
    #: consecutive degraded generations before sharding is disabled
    disable_after: int = 3
    #: generations an evicted fabric device sits out before its
    #: probationary re-admission probe
    probation_generations: int = 1


def shutdown_pool(pool: Any, join_timeout: float = 5.0) -> bool:
    """``terminate()`` + bounded ``join()``; True when the join finished.

    ``multiprocessing.Pool.join`` cannot time out, so it runs on a
    daemon thread; a worker that ignores SIGTERM leaks the (daemonic)
    joiner instead of wedging the caller.
    """
    pool.terminate()
    joiner = threading.Thread(
        target=pool.join, name="repro-pool-join", daemon=True
    )
    joiner.start()
    joiner.join(join_timeout)
    return not joiner.is_alive()


class ShardSupervisor:
    """Run shard tasks on a pool with watchdog, retry, and degradation.

    ``pool_factory`` builds a fresh initialized pool; ``worker_fn`` is
    the picklable task function.  :meth:`run` is called once per
    generation with per-shard task builders (the attempt index is part
    of the task so injected faults re-draw on retry) and an in-process
    fallback used once retries are exhausted.
    """

    def __init__(
        self,
        pool_factory: Callable[[], Any],
        worker_fn: Callable[[Any], Any],
        config: SupervisorConfig | None = None,
    ) -> None:
        self.pool_factory = pool_factory
        self.worker_fn = worker_fn
        self.config = config if config is not None else SupervisorConfig()
        self.events: list[ResilienceEvent] = []
        self.retries = 0
        self.timeouts = 0
        self.errors = 0
        self.respawns = 0
        self.degraded_shards = 0
        #: consecutive run() calls that needed the in-process fallback
        self.consecutive_degraded = 0
        #: once True, the caller should stop sharding (see disable_after)
        self.disabled = False
        self._pool: Any = None

    # ------------------------------------------------------------ lifecycle
    def _ensure_pool(self) -> Any:
        if self._pool is None:
            self._pool = self.pool_factory()
        return self._pool

    def close(self) -> None:
        """Tear down the pool (bounded); safe to call repeatedly."""
        if self._pool is not None:
            shutdown_pool(self._pool, self.config.join_timeout)
            self._pool = None

    def _record(self, kind: str, site: str, **details: Any) -> None:
        event = ResilienceEvent(kind=kind, site=site, details=dict(details))
        self.events.append(event)
        emit_event(kind, site)

    # ------------------------------------------------------------------ run
    def run(
        self,
        num_shards: int,
        task_builder: Callable[[int, int], Any],
        fallback: Callable[[int], Any],
        site_prefix: str = "",
    ) -> list[Any]:
        """Evaluate ``num_shards`` tasks; always returns every result.

        ``task_builder(shard_index, attempt)`` builds the task shipped
        to the pool; ``fallback(shard_index)`` computes the same result
        in-process.  Failed shards retry on a respawned pool up to
        ``max_retries`` times, then degrade to the fallback.
        """
        results: list[Any] = [None] * num_shards
        if self.disabled:
            for index in range(num_shards):
                results[index] = fallback(index)
            return results

        pending = list(range(num_shards))
        attempt = 0
        degraded_this_run = False
        while pending:
            pool = self._ensure_pool()
            handles = {
                index: pool.apply_async(
                    self.worker_fn, (task_builder(index, attempt),)
                )
                for index in pending
            }
            deadline = time.monotonic() + self.config.shard_timeout
            failed: list[int] = []
            for index in pending:
                remaining = max(0.0, deadline - time.monotonic())
                site = f"{site_prefix}shard={index}|attempt={attempt}"
                try:
                    results[index] = handles[index].get(remaining)
                except multiprocessing.TimeoutError:
                    self.timeouts += 1
                    failed.append(index)
                    self._record("shard.timeout", site)
                except Exception as error:
                    self.errors += 1
                    failed.append(index)
                    self._record(
                        "shard.error", site,
                        error=type(error).__name__, message=str(error),
                    )
            if not failed:
                break
            if attempt >= self.config.max_retries:
                for index in failed:
                    results[index] = fallback(index)
                    self.degraded_shards += 1
                    self._record(
                        "shard.degraded",
                        f"{site_prefix}shard={index}|attempt={attempt}",
                    )
                degraded_this_run = True
                break
            # a crashed/hung worker poisons the whole pool state: tear it
            # down (bounded) and respawn before retrying the failed shards
            joined = shutdown_pool(self._pool, self.config.join_timeout)
            self._pool = None
            self.respawns += 1
            self._record(
                "pool.respawn",
                f"{site_prefix}attempt={attempt}",
                joined=joined,
                failed_shards=len(failed),
            )
            delay = min(
                self.config.backoff_base * self.config.backoff_factor**attempt,
                self.config.backoff_max,
            )
            if delay > 0:
                time.sleep(delay)
            self.retries += len(failed)
            pending = failed
            attempt += 1

        if degraded_this_run:
            self.consecutive_degraded += 1
            if (
                not self.disabled
                and self.consecutive_degraded >= self.config.disable_after
            ):
                self.disabled = True
                self._record(
                    "supervisor.disabled",
                    f"{site_prefix}consecutive={self.consecutive_degraded}",
                )
                self.close()
        else:
            self.consecutive_degraded = 0
        return results
