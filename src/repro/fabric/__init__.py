"""The fault-tolerant distributed INAX fabric.

An N-device simulated INAX farm running island-model NEAT, built so
that recovery is a pure function of ``(seed, farm topology,
FaultPlan)``:

* :mod:`repro.fabric.topology` — the farm shape and the deterministic
  LPT wave-to-device assignment;
* :mod:`repro.fabric.supervisor` — per-device heartbeat/eviction/
  probation health supervision;
* :mod:`repro.fabric.backend` — the ``fabric`` evaluation backend
  (registers itself in :data:`repro.core.backends.BACKENDS`);
* :mod:`repro.fabric.islands` — the K-island evolution driver with
  seeded, skip-and-log ring migration.

See ``docs/fabric.md`` for the topology, the eviction ladder, and the
migration determinism contract.
"""

from repro.fabric.backend import FabricINAXBackend, price_farm
from repro.fabric.islands import (
    KEY_STRIDE,
    IslandModel,
    IslandRunResult,
    island_seed,
)
from repro.fabric.supervisor import DeviceState, FabricSupervisor
from repro.fabric.topology import FarmTopology, assign_waves

__all__ = [
    "FarmTopology",
    "assign_waves",
    "DeviceState",
    "FabricSupervisor",
    "FabricINAXBackend",
    "price_farm",
    "IslandModel",
    "IslandRunResult",
    "KEY_STRIDE",
    "island_seed",
]
