"""Island-model NEAT over the fabric farm.

:class:`IslandModel` evolves ``K`` independent sub-populations
("islands") whose genomes are all evaluated together by one fabric
backend per generation, with seeded ring migration at fixed
generation barriers:

* each island gets its own :class:`~repro.neat.population.Population`
  with a derived seed (``sha256(f"{seed}|island|{i}")``) and a
  disjoint genome-key stride, so per-(genome, episode) evaluation
  seeds never collide across islands;
* at a barrier (``topology.migrates(gen)``) island ``i`` sends copies
  of its ``migration_size`` champions to island ``(i+1) % K``; every
  emigrant set is computed *before* any island admits, so the exchange
  is synchronous and order-independent;
* an edge whose source or destination island is homed on a dead device
  (or whose transfer draws a ``fabric.migration_corrupt`` fault) is
  **skipped and logged**, never blocked on — the run continues with
  the islands drifting until the device is re-admitted.

Migration admits draw nothing from any island's RNG stream (the admit
re-speciation is draw-free), so whether an edge was skipped changes
*which genes* spread but never perturbs an island's own evolution
randomness — the property the chaos determinism suite pins down.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import asdict, dataclass, field, replace

from repro.core.profiler import PhaseProfiler
from repro.envs.registry import make, spec
from repro.fabric.backend import FabricINAXBackend
from repro.fabric.topology import FarmTopology
from repro.inax.accelerator import INAXConfig
from repro.inax.pipeline import PipelineConfig
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.population import GenerationStats, Population
from repro.resilience.faults import ResilienceEvent, emit_event
from repro.telemetry import RunManifest, TelemetrySession
from repro.telemetry.metrics import TeeRecorder, get_metrics
from repro.telemetry.spans import span as _span

__all__ = ["IslandModel", "IslandRunResult", "KEY_STRIDE", "island_seed"]

#: genome-key stride between islands — far above any single island's
#: key consumption, so key spaces (and episode seeds) stay disjoint
KEY_STRIDE = 1 << 20


def island_seed(seed: int, island: int) -> int:
    """Derived per-island RNG seed (pure function of the run seed)."""
    payload = f"{seed}|island|{island}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") >> 1


@dataclass
class IslandRunResult:
    """Outcome of an :meth:`IslandModel.run` call."""

    env_name: str
    best_genome: Genome
    best_fitness: float
    best_island: int
    solved: bool
    generations: int
    neat_config: NEATConfig
    #: farm-wide per-generation aggregates (what reporters rendered)
    history: list[GenerationStats] = field(default_factory=list)
    #: per-island histories, index-aligned with the island ring
    island_histories: list[list[GenerationStats]] = field(
        default_factory=list
    )
    profiler: PhaseProfiler = field(default_factory=PhaseProfiler)
    telemetry: TelemetrySession | None = None


class IslandModel:
    """K islands, one fabric farm, seeded generation-barrier migration."""

    def __init__(
        self,
        env_name: str,
        topology: FarmTopology,
        neat_config: NEATConfig | None = None,
        inax_config: INAXConfig | None = None,
        episodes_per_genome: int = 1,
        seed: int = 0,
        env_kwargs: dict | None = None,
        telemetry: TelemetrySession | None = None,
        fault_plan=None,
        fallback: str | None = None,
        supervisor=None,
        pipeline: PipelineConfig | None = None,
        health=None,
    ):
        """The total ``population_size`` splits across the islands
        (earlier islands take the remainder); every other knob matches
        :class:`~repro.core.platform.E3`."""
        env_spec = spec(env_name)
        env_kwargs = dict(env_kwargs or {})
        env = make(env_name, **env_kwargs)
        self.env_name = env_name
        self.topology = topology
        self.required_fitness = env_spec.required_fitness
        base = neat_config or NEATConfig()
        self.neat_config = replace(
            base,
            num_inputs=env.num_inputs,
            num_outputs=env.num_outputs,
            fitness_threshold=env_spec.required_fitness,
        )
        if self.neat_config.population_size < topology.islands:
            raise ValueError(
                f"population_size {self.neat_config.population_size} cannot "
                f"split across {topology.islands} islands"
            )
        if inax_config is None:
            from repro.core.platform import default_inax_config

            inax_config = default_inax_config(env.num_outputs)
        self.inax_config = inax_config
        self.seed = seed
        self.telemetry = telemetry
        self.profiler = PhaseProfiler()
        self.health = health

        self.backend = FabricINAXBackend(
            env_name,
            self.neat_config,
            inax_config=inax_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=seed,
            env_kwargs=env_kwargs,
            fallback=fallback,
            fault_plan=fault_plan,
            pipeline=pipeline,
            devices=topology.devices,
            supervisor=supervisor,
        )

        recorder = (
            self.profiler
            if telemetry is None
            else TeeRecorder(self.profiler, telemetry.phase_timer)
        )
        total = self.neat_config.population_size
        share, remainder = divmod(total, topology.islands)
        self.islands: list[Population] = []
        for index in range(topology.islands):
            size = share + (1 if index < remainder else 0)
            self.islands.append(
                Population(
                    replace(self.neat_config, population_size=size),
                    seed=island_seed(seed, index),
                    profiler=recorder,
                    key_offset=index * KEY_STRIDE,
                )
            )
        self.history: list[GenerationStats] = []
        #: migration-edge outcomes, cumulative over the run
        self.migrations = 0
        self.migrations_skipped = 0
        #: island-driver resilience events (migration skips)
        self.events: list[ResilienceEvent] = []
        # reporters on the aggregate feed go here; lazily imported like
        # Population does to avoid a module-load cycle
        from repro.neat.reporters import ReporterSet

        self.reporters = ReporterSet()

    # ------------------------------------------------------------- run
    def run(
        self,
        max_generations: int | None = None,
        fitness_threshold: float | None = None,
    ) -> IslandRunResult:
        """Evaluate all islands together, migrate at barriers, evolve."""
        limit = (
            max_generations
            if max_generations is not None
            else self.neat_config.max_generations
        )
        threshold = (
            fitness_threshold
            if fitness_threshold is not None
            else self.neat_config.fitness_threshold
        )
        session = self.telemetry
        if session is not None:
            if session.manifest is None:
                session.manifest = RunManifest.collect(
                    command="islands.run",
                    env=self.env_name,
                    backend=self.backend.name,
                    population=self.neat_config.population_size,
                    generations=limit,
                    episodes_per_genome=self.backend.episodes_per_genome,
                    seed=self.seed,
                    devices=self.topology.devices,
                    islands=self.topology.islands,
                    migration_interval=self.topology.migration_interval,
                    migration_size=self.topology.migration_size,
                    supervisor=asdict(self.backend.supervisor_config),
                )
            session.install()
        solved = False
        try:
            for _ in range(limit):
                best = self._advance()
                if (
                    threshold is not None
                    and best.fitness is not None
                    and best.fitness >= threshold
                ):
                    solved = True
                    break
        finally:
            if self.health is not None:
                self.health.finalize()
            if session is not None:
                self._publish_telemetry(session)
                session.uninstall()
        best_island, best_genome = self._best()
        return IslandRunResult(
            env_name=self.env_name,
            best_genome=best_genome,
            best_fitness=float(best_genome.fitness or 0.0),
            best_island=best_island,
            solved=solved,
            generations=self.islands[0].generation,
            neat_config=self.neat_config,
            history=list(self.history),
            island_histories=[list(pop.history) for pop in self.islands],
            profiler=self.profiler,
            telemetry=session,
        )

    def _advance(self) -> Genome:
        """One farm generation: evaluate, observe, migrate, evolve."""
        generation = self.islands[0].generation
        genomes = [g for pop in self.islands for g in pop.population]
        t0 = time.perf_counter()
        with _span(
            "phase.evaluate",
            generation=generation,
            population=len(genomes),
            islands=len(self.islands),
        ):
            self.backend.evaluate(genomes)
        self.profiler.record("evaluate", time.perf_counter() - t0)

        bests = [pop.observe_evaluated() for pop in self.islands]
        self._record_aggregate(generation, bests)
        if self.topology.migrates(generation):
            self._migrate(generation)
        for pop in self.islands:
            pop.evolve()
        return max(
            bests, key=lambda g: g.fitness if g.fitness is not None else 0.0
        )

    # --------------------------------------------------------- migration
    def _migrate(self, generation: int) -> None:
        """One synchronous ring exchange; dead edges skip-and-log.

        All emigrant sets are drawn *before* any admit, so every edge
        sees the pre-migration champions regardless of ring order, and
        the exchange commutes.  An edge is healthy only when both its
        endpoint islands' home devices are alive and the transfer's
        ``fabric.migration_corrupt`` draw (when armed) stays quiet.
        """
        count = len(self.islands)
        alive = set(self.backend.fabric.alive())
        injector = self.backend.fabric.injector
        payloads = [
            pop.emigrants(self.topology.migration_size)
            for pop in self.islands
        ]
        with _span("fabric.migrate", generation=generation, edges=count):
            for source in range(count):
                target = (source + 1) % count
                site = f"gen={generation}|edge={source}->{target}"
                down = [
                    island
                    for island in (source, target)
                    if self.topology.island_device(island) not in alive
                ]
                if down:
                    self.migrations_skipped += 1
                    self._event(
                        "fabric.migration_skip", site,
                        reason="device_down", islands=len(down),
                    )
                    continue
                if injector is not None and injector.migration_corrupted(
                    generation, source, target
                ):
                    # the injector recorded the corrupt draw in the
                    # plan's replay log; mirror the skip on our side
                    self.migrations_skipped += 1
                    self._event(
                        "fabric.migration_skip", site, reason="corrupt"
                    )
                    continue
                self.islands[target].admit(payloads[source])
                self.migrations += 1
        registry = get_metrics()
        if registry is not None:
            registry.gauge("fabric.migrations").set(float(self.migrations))
            registry.gauge("fabric.migrations_skipped").set(
                float(self.migrations_skipped)
            )

    def _event(self, kind: str, site: str, **details) -> None:
        event = ResilienceEvent(kind=kind, site=site, details=dict(details))
        self.events.append(event)
        emit_event(kind, site)

    def resilience_log(self) -> list[dict]:
        """Backend + island-driver events (replay-identity surface)."""
        events = self.backend.resilience_log()
        events.extend(event.to_dict() for event in self.events)
        return events

    # --------------------------------------------------------- reporting
    def _record_aggregate(
        self, generation: int, bests: list[Genome]
    ) -> None:
        """One farm-wide stats row over all islands (reporter feed)."""
        best = max(
            bests, key=lambda g: g.fitness if g.fitness is not None else 0.0
        )
        fitnesses = [
            g.fitness
            for pop in self.islands
            for g in pop.population
            if g.fitness is not None
        ]
        total = sum(len(pop.population) for pop in self.islands)
        extras = dict(self.backend.reporter_columns())
        extras["migrations"] = float(self.migrations)
        extras["migrations_skipped"] = float(self.migrations_skipped)
        stats = GenerationStats(
            generation=generation,
            best_fitness=float(best.fitness or 0.0),
            mean_fitness=(
                sum(fitnesses) / len(fitnesses) if fitnesses else 0.0
            ),
            num_species=sum(len(pop.species_set) for pop in self.islands),
            best_genome_key=best.key,
            mean_nodes=0.0,
            mean_connections=0.0,
            population_size=total,
            extras=extras,
        )
        self.history.append(stats)
        self.reporters.on_generation(stats)
        if self.health is not None:
            from repro.obs.monitor import build_sample

            self.health.observe(build_sample(stats, self.backend))

    def _best(self) -> tuple[int, Genome]:
        """(island index, champion) over the whole archipelago."""
        candidates = [
            (index, pop.best_genome)
            for index, pop in enumerate(self.islands)
            if pop.best_genome is not None
        ]
        if not candidates:
            raise RuntimeError("no generation completed; nothing evolved")
        index, genome = max(
            candidates,
            key=lambda pair: (
                pair[1].fitness if pair[1].fitness is not None else 0.0,
                -pair[0],
            ),
        )
        return index, genome

    def _publish_telemetry(self, session: TelemetrySession) -> None:
        """End-of-run farm statistics into the session registry."""
        registry = session.metrics
        for name, value in self.backend.fabric.counters().items():
            registry.gauge(f"fabric.{name}").set(value)
        registry.gauge("fabric.migrations").set(float(self.migrations))
        registry.gauge("fabric.migrations_skipped").set(
            float(self.migrations_skipped)
        )
        if self.backend.fallback_waves:
            registry.gauge("inax.fallback_waves").set(
                self.backend.fallback_waves
            )
