"""Per-device health supervision for the INAX farm.

:class:`FabricSupervisor` generalizes the shard supervisor's ladder to
the device domain, sharing its frozen
:class:`~repro.resilience.supervisor.SupervisorConfig`:

* **heartbeat probes** before every wave-episode dispatch — a
  ``fabric.device_drop`` draw is a missed heartbeat, a
  ``fabric.heartbeat_delay`` draw answers late and burns penalty
  cycles that grow with the miss count (``backoff_factor``, the cycle-
  domain analogue of shard retry backoff);
* **eviction** after ``max_retries`` consecutive misses (or on a hard
  :class:`~repro.resilience.faults.DeviceFault` mid-wave) — except the
  last alive device, which is never evicted (the refusal is recorded
  and the run continues degraded rather than dying);
* **probationary re-admission** — an evicted device is re-probed after
  ``probation_generations`` generations; a clean probe re-admits it on
  probation, and surviving one full generation restores it to healthy.

Every transition draws through the seeded
:class:`~repro.resilience.injectors.DeviceFaultInjector` at a
generation-scoped site and is recorded as a structured event, so the
whole health history is a pure function of ``(plan seed, topology)``
and replays byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.resilience.faults import ResilienceEvent, emit_event
from repro.resilience.injectors import DeviceFaultInjector
from repro.resilience.supervisor import SupervisorConfig

__all__ = ["DeviceState", "FabricSupervisor"]

#: device health states (the eviction ladder's rungs)
HEALTHY = "healthy"
PROBATION = "probation"
EVICTED = "evicted"


@dataclass
class DeviceState:
    """One farm device's health, as the supervisor tracks it."""

    device: int
    status: str = HEALTHY
    #: consecutive missed heartbeats (reset by a clean probe)
    misses: int = 0
    #: cycles this device lost to late heartbeats this generation
    penalty_cycles: int = 0
    #: generation the device was last evicted at (None = never)
    evicted_at: int | None = None


class FabricSupervisor:
    """Own per-device health state; every decision is seeded + recorded."""

    def __init__(
        self,
        num_devices: int,
        config: SupervisorConfig | None = None,
        injector: DeviceFaultInjector | None = None,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.num_devices = num_devices
        self.config = config if config is not None else SupervisorConfig()
        #: farm-level fault injector (``fabric.*`` kinds); ``None``
        #: keeps every probe on the zero-cost always-healthy path
        self.injector = injector
        self.states = [DeviceState(device=d) for d in range(num_devices)]
        self.events: list[ResilienceEvent] = []
        # cumulative counters (reporter columns / detector inputs)
        self.device_evictions = 0
        self.device_readmissions = 0
        self.repacked_waves = 0
        # per-generation probe counters (the dispatch index in fault sites)
        self._dispatch = [0] * num_devices

    # ------------------------------------------------------------ queries
    def alive(self) -> list[int]:
        """Devices currently accepting work (healthy + probation)."""
        return [s.device for s in self.states if s.status != EVICTED]

    def penalty_cycles(self, device: int) -> int:
        """Heartbeat-penalty cycles ``device`` burned this generation."""
        return self.states[device].penalty_cycles

    def counters(self) -> dict[str, float]:
        """Cumulative fabric counters (reporter columns)."""
        return {
            "devices_up": float(len(self.alive())),
            "device_evictions": float(self.device_evictions),
            "device_readmissions": float(self.device_readmissions),
            "repacked_waves": float(self.repacked_waves),
        }

    # ---------------------------------------------------------- recording
    def _record(self, kind: str, site: str, **details: Any) -> None:
        event = ResilienceEvent(kind=kind, site=site, details=dict(details))
        self.events.append(event)
        emit_event(kind, site)

    # ------------------------------------------------------------- ladder
    def begin_generation(self, generation: int) -> None:
        """Reset per-generation state; run probationary re-admissions."""
        self._dispatch = [0] * self.num_devices
        for state in self.states:
            state.penalty_cycles = 0
            if state.status == PROBATION:
                # survived a full generation on probation -> healthy
                state.status = HEALTHY
        for state in self.states:
            if state.status != EVICTED or state.evicted_at is None:
                continue
            if generation - state.evicted_at < self.config.probation_generations:
                continue
            drops = self.injector is not None and self.injector.device_drops(
                generation, state.device, "probe"
            )
            if drops:
                continue  # still wedged; re-probe next generation
            state.status = PROBATION
            state.misses = 0
            self.device_readmissions += 1
            self._record(
                "fabric.readmit",
                f"gen={generation}|device={state.device}",
                sat_out=generation - state.evicted_at,
            )

    def probe(self, generation: int, device: int) -> bool:
        """Heartbeat-probe ``device`` before a dispatch; False = evicted.

        A missed probe retries (with a fresh draw — the dispatch index
        advances) until the heartbeat answers or ``max_retries``
        consecutive misses evict the device.  Delay draws burn penalty
        cycles scaled by ``backoff_factor ** misses`` but keep the
        device alive; a clean answer resets the miss count.
        """
        state = self.states[device]
        if self.injector is None:
            return True
        while True:
            dispatch = self._dispatch[device]
            self._dispatch[device] += 1
            delay = self.injector.heartbeat_delay_cycles(
                generation,
                device,
                dispatch,
                state.misses,
                self.config.backoff_factor,
            )
            state.penalty_cycles += delay
            if not self.injector.device_drops(generation, device, dispatch):
                state.misses = 0
                return True
            state.misses += 1
            if state.misses > self.config.max_retries:
                return not self._evict(
                    generation, device, reason="heartbeat", misses=state.misses
                )

    def fail(self, generation: int, device: int, reason: str) -> bool:
        """Hard mid-wave failure; True when the device was evicted.

        False means the eviction was refused (last alive device) — the
        caller degrades on the same device instead.
        """
        return self._evict(generation, device, reason=reason)

    def _evict(
        self, generation: int, device: int, reason: str, **details: Any
    ) -> bool:
        state = self.states[device]
        if len(self.alive()) <= 1:
            # never evict the last alive device: a degraded farm beats
            # a dead one, and the refusal is auditable
            state.misses = 0
            self._record(
                "fabric.evict_refused",
                f"gen={generation}|device={device}",
                reason=reason,
                **details,
            )
            return False
        state.status = EVICTED
        state.evicted_at = generation
        self.device_evictions += 1
        self._record(
            "fabric.evict",
            f"gen={generation}|device={device}",
            reason=reason,
            **details,
        )
        return True
