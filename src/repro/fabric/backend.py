"""The fabric evaluation backend: one generation across N devices.

:class:`FabricINAXBackend` extends the single-device
:class:`~repro.core.backends.INAXBackend` to a supervised farm:

* waves are packed exactly as on one device (``pack_waves``), then
  LPT-assigned across the alive devices (:func:`~repro.fabric.topology.
  assign_waves`);
* every wave-episode dispatch is preceded by a
  :meth:`~repro.fabric.supervisor.FabricSupervisor.probe`; a device
  that misses its heartbeats (or hard-faults mid-wave) is evicted and
  its remaining queue is deterministically re-packed onto the
  survivors;
* the per-(genome, episode) seeding contract makes device placement
  invisible to fitness, so a fault-ridden run is *fitness-identical*
  to a clean run of the same seed — eviction and re-pack can only move
  cycles, never results.

Cycle accounting: devices run in parallel in the cycle domain, so the
generation's wall-clock is the max over per-device report cycles plus
heartbeat penalties; the critical-path device's report becomes the
generation record's ``cycle_report``.

:func:`price_farm` is the analytic twin — it prices a workload across
``N`` healthy devices without functional execution, for the scaling
bench (``BENCH_fabric.json``).
"""

from __future__ import annotations

from collections import deque

from repro.core.backends import BACKENDS, INAXBackend
from repro.fabric.supervisor import FabricSupervisor
from repro.fabric.topology import assign_waves
from repro.inax.accelerator import INAX, INAXConfig, schedule_waves
from repro.inax.pipeline import PipelineConfig, pack_waves
from repro.inax.pu import BufferOverflowError, _static_step_cycles
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.resilience.faults import DeviceFault, FaultPlan
from repro.resilience.injectors import (
    DeviceFaultInjector,
    has_device_faults,
    has_fabric_faults,
)
from repro.resilience.quarantine import DEFAULT_PENALTY
from repro.resilience.supervisor import SupervisorConfig
from repro.telemetry import get_metrics, get_tracer
from repro.telemetry.spans import span as _span

__all__ = ["FabricINAXBackend", "price_farm"]


class FabricINAXBackend(INAXBackend):
    """Island-ready N-device INAX farm with supervised fault recovery."""

    name = "fabric"

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        inax_config: INAXConfig | None = None,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        env_kwargs: dict | None = None,
        oversize_policy: str = "raise",
        oversize_penalty: float = -1e9,
        fallback: str | None = None,
        fault_plan: FaultPlan | None = None,
        quarantine_penalty: float = DEFAULT_PENALTY,
        pipeline: PipelineConfig | None = None,
        devices: int = 2,
        supervisor: SupervisorConfig | None = None,
    ):
        """``devices`` sizes the farm; ``supervisor`` is the shared
        recovery policy (:class:`SupervisorConfig` — the same frozen
        config the shard supervisor reads, recorded in the run
        manifest).  Every other knob matches :class:`INAXBackend`.
        """
        super().__init__(
            env_name,
            neat_config,
            inax_config=inax_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
            env_kwargs=env_kwargs,
            oversize_policy=oversize_policy,
            oversize_penalty=oversize_penalty,
            fallback=fallback,
            fault_plan=fault_plan,
            quarantine_penalty=quarantine_penalty,
            pipeline=pipeline,
        )
        if devices < 1:
            raise ValueError(f"devices must be >= 1, got {devices}")
        self.num_devices = devices
        # one INAX per device, each with its own injector namespace —
        # two devices probing the same (wave, step) site must draw
        # independently, and their span tracks must stay distinct
        self.farm: list[INAX] = []
        for index in range(devices):
            injector = (
                DeviceFaultInjector(fault_plan, site_prefix=f"dev={index}|")
                if fault_plan is not None and has_device_faults(fault_plan)
                else None
            )
            device = INAX(self.inax_config, fault_injector=injector)
            device.track_prefix = f"dev{index}."
            self.farm.append(device)
        # keep the parent's single-device attribute aimed at device 0 so
        # inherited helpers stay coherent
        self.device = self.farm[0]
        self.supervisor_config = (
            supervisor if supervisor is not None else SupervisorConfig()
        )
        farm_injector = (
            DeviceFaultInjector(fault_plan)
            if fault_plan is not None and has_fabric_faults(fault_plan)
            else None
        )
        self.fabric = FabricSupervisor(
            devices, config=self.supervisor_config, injector=farm_injector
        )
        #: last generation's farm wall-clock (max device cycles +
        #: heartbeat penalties)
        self.last_wall_cycles = 0.0
        self.last_device_walls: dict[int, float] = {}

    # --------------------------------------------------------- evaluation
    def _evaluate(self, genomes: list[Genome]) -> None:
        assert self.inax_config is not None
        generation = self._generation
        sup = self.fabric
        sup.begin_generation(generation)
        runnable, configs = self._gate_oversize(genomes)

        lengths = [0] * len(runnable)
        rewards = [0.0] * len(runnable)
        keys = [g.key for g in runnable]
        num_pus = self.inax_config.num_pus

        with _span("inax.pack", genomes=len(runnable)):
            predicted = self._predict_costs(configs, keys)
            waves = pack_waves(
                predicted
                if predicted is not None
                else [None] * len(runnable),
                num_pus,
                self.pipeline.schedule,
            )
        # without predictions (arrival schedule, or a cold first LPT
        # generation) every wave prices as one unit, so LPT assignment
        # degrades to balanced wave *counts* instead of piling the whole
        # generation onto device 0
        wave_costs = [
            max((predicted[i] or 1.0) for i in indices)
            if predicted is not None
            else 1.0
            for indices in waves
        ]
        for device in self.farm:
            device.reset_report()

        queues: dict[int, deque] = {}
        if waves:
            with _span(
                "fabric.assign", waves=len(waves), devices=len(sup.alive())
            ):
                assignment = assign_waves(wave_costs, sup.alive())
            queues = {
                device: deque((ordinal, 0) for ordinal in ordinals)
                for device, ordinals in assignment.items()
            }
        dispatched = {device: 0 for device in range(self.num_devices)}

        # drain device queues; an eviction re-packs (and may refill an
        # already-passed device's queue), so the outer loop re-scans
        # until every queue is dry
        while any(queues.values()):
            for device in sorted(queues):
                queue = queues[device]
                while queue:
                    ordinal, start_episode = queue[0]
                    indices = waves[ordinal]
                    done = self._dispatch_wave(
                        generation,
                        device,
                        indices,
                        [runnable[i] for i in indices],
                        [configs[i] for i in indices],
                        start_episode,
                        lengths,
                        rewards,
                        dispatched,
                        queue,
                    )
                    if not done:
                        self._repack(generation, device, queues, wave_costs)
                        break
                    queue.popleft()

        for genome, reward in zip(runnable, rewards):
            genome.fitness = reward / self.episodes_per_genome
        record = self._record(
            configs,
            lengths,
            keys=keys,
            predicted_costs=predicted,
            analytic=False,
        )
        record.cycle_report = self._finish_generation(generation)
        self._publish_cycle_gauges(record.cycle_report)

    def _dispatch_wave(
        self,
        generation: int,
        device: int,
        indices: list[int],
        wave_genomes: list[Genome],
        wave_configs,
        start_episode: int,
        lengths: list[int],
        rewards: list[float],
        dispatched: dict[int, int],
        queue: deque,
    ) -> bool:
        """Run one queued wave's remaining episodes on ``device``.

        Returns True when the wave completed; False when the device was
        evicted mid-wave — the queue's head entry is rewound to the
        first unfinished episode so the re-pack resumes exactly there.
        """
        for episode in range(start_episode, self.episodes_per_genome):
            if not self.fabric.probe(generation, device):
                queue[0] = (queue[0][0], episode)
                return False
            prefetched = self.pipeline.prefetch and dispatched[device] > 0
            try:
                records = self._device_wave_episode(
                    self.farm[device],
                    wave_genomes,
                    wave_configs,
                    episode,
                    prefetched=prefetched,
                )
            except (DeviceFault, BufferOverflowError) as error:
                self.farm[device].abort_wave()
                if self.fabric.fail(generation, device, type(error).__name__):
                    queue[0] = (queue[0][0], episode)
                    return False
                # eviction refused (last alive device): degrade to the
                # software ladder on this device, like the single-device
                # backend
                if self.fallback is None:
                    raise
                self.fallback_waves += 1
                self.fallback_genomes += len(wave_genomes)
                self._event(
                    "fallback.wave",
                    f"gen={generation}|offset={indices[0]}|episode={episode}",
                    error=type(error).__name__,
                    genomes=len(wave_genomes),
                )
                records = self._fallback_wave_episode(wave_genomes, episode)
            dispatched[device] += 1
            for slot, record in enumerate(records):
                rewards[indices[slot]] += record.total_reward
                lengths[indices[slot]] += record.steps
        return True

    def _repack(
        self,
        generation: int,
        device: int,
        queues: dict[int, deque],
        wave_costs: list[float],
    ) -> None:
        """Move an evicted device's queue onto the survivors (LPT).

        Load is measured over *remaining* queued work only — already-
        evaluated waves are sunk cost; the result is still a pure
        function of (plan, topology) because everything upstream is.
        """
        orphans = list(queues[device])
        queues[device].clear()
        if not orphans:
            return
        survivors = self.fabric.alive()
        load = {
            s: sum(wave_costs[ordinal] for ordinal, _ in queues.get(s, ()))
            for s in survivors
        }
        for entry in sorted(
            orphans, key=lambda e: (-wave_costs[e[0]], e[0])
        ):
            target = min(survivors, key=lambda s: (load[s], s))
            queues.setdefault(target, deque()).append(entry)
            load[target] += wave_costs[entry[0]]
        self.fabric.repacked_waves += len(orphans)
        self._event(
            "fabric.repack",
            f"gen={generation}|device={device}",
            waves=len(orphans),
            survivors=len(survivors),
        )

    # ----------------------------------------------------- cycle account
    def _finish_generation(self, generation: int):
        """Close the generation: walls, gauges, the ``fabric.gen`` marker.

        Returns the critical-path device's cycle report (the farm's
        wall-clock determinant) for the generation record.
        """
        sup = self.fabric
        walls = {
            d: self.farm[d].report.total_cycles + sup.penalty_cycles(d)
            for d in range(self.num_devices)
        }
        critical = max(range(self.num_devices), key=lambda d: (walls[d], -d))
        self.last_wall_cycles = float(walls[critical])
        self.last_device_walls = {d: float(w) for d, w in walls.items()}
        counters = sup.counters()
        registry = get_metrics()
        if registry is not None:
            registry.gauge("fabric.wall_cycles").set(self.last_wall_cycles)
            for name, value in counters.items():
                registry.gauge(f"fabric.{name}").set(value)
        tracer = get_tracer()
        if tracer is not None:
            tracer.add_span(
                "fabric.gen",
                start=tracer.now(),
                duration=0.0,
                site=f"gen={generation}",
                generation=generation,
                wall_cycles=self.last_wall_cycles,
                **counters,
            )
        return self.farm[critical].report

    # ----------------------------------------------------------- surface
    def reporter_columns(self) -> dict[str, float]:
        columns = super().reporter_columns()
        # farm-wide occupancy (the parent's column reads device 0 only)
        live = sum(dev.report.live_slot_steps for dev in self.farm)
        provisioned = sum(
            dev.report.slot_steps_provisioned for dev in self.farm
        )
        columns["pack_eff"] = live / provisioned if provisioned else 0.0
        columns.update(self.fabric.counters())
        return columns

    def resilience_log(self) -> list[dict]:
        """Backend + fabric supervisor + plan events (replay identity)."""
        events = [event.to_dict() for event in self.resilience_events]
        events.extend(event.to_dict() for event in self.fabric.events)
        if self.fault_plan is not None:
            events.extend(self.fault_plan.event_log())
        return events


# --------------------------------------------------------------- pricing
def price_farm(
    inax_config: INAXConfig,
    net_configs: list,
    episode_lengths: list[int],
    devices: int,
    pipeline: PipelineConfig | None = None,
) -> dict:
    """Analytic farm pricing: the scaling-bench twin of the farm.

    Packs the workload into waves exactly like one device, LPT-assigns
    them across ``devices`` healthy devices, and prices each device's
    subset through :func:`~repro.inax.accelerator.schedule_waves` — so
    the multi-device scaling numbers use the identical per-wave cycle
    semantics as a functional run.  Wall-clock is the max over devices
    (they run in parallel in the cycle domain).
    """
    pipeline = pipeline if pipeline is not None else PipelineConfig()
    step_fn = lambda c: _static_step_cycles(  # noqa: E731
        c, inax_config.num_pes_per_pu, inax_config.pe_costs,
        inax_config.pu_costs,
    )
    pack_costs: list
    if pipeline.schedule == "arrival":
        pack_costs = [None] * len(net_configs)
    else:
        pack_costs = [
            float(length) * step_fn(config)
            for config, length in zip(net_configs, episode_lengths)
        ]
    waves = pack_waves(pack_costs, inax_config.num_pus, pipeline.schedule)
    wave_costs = [
        max((pack_costs[i] or 1.0) for i in indices) for indices in waves
    ]
    assignment = assign_waves(wave_costs, list(range(devices)))
    reports = {}
    for device, ordinals in sorted(assignment.items()):
        reports[device] = schedule_waves(
            inax_config,
            net_configs,
            episode_lengths,
            [waves[ordinal] for ordinal in ordinals],
            prefetch=pipeline.prefetch,
        )
    device_walls = {
        device: report.total_cycles for device, report in reports.items()
    }
    return {
        "devices": devices,
        "waves": len(waves),
        "per_device": reports,
        "device_walls": device_walls,
        "wall_cycles": max(device_walls.values()) if device_walls else 0.0,
    }


# registered here (not in the BACKENDS literal) so the core module
# never imports the fabric package; importing repro.fabric — which
# repro.core.platform does — makes "fabric" selectable by name
BACKENDS["fabric"] = FabricINAXBackend
