"""Farm topology and deterministic cross-device wave assignment.

The fabric scales the single simulated INAX device into an N-device
farm (ROADMAP item 1; PAPERS.md's distributed-FPGA neuroevolution ran
432 of them).  Two pure functions define how work lands on devices:

* :func:`repro.inax.pipeline.pack_waves` packs individuals into waves
  exactly as on one device — the farm never changes wave composition,
  only wave *placement*;
* :func:`assign_waves` LPT-assigns those waves onto the currently-alive
  devices.

Both are pure functions of their inputs, so re-running
:func:`assign_waves` over the survivor set after an eviction *is* the
deterministic re-pack rule — recovery is a function of
``(seed, farm topology, FaultPlan)``, never of host timing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

__all__ = ["FarmTopology", "assign_waves"]


@dataclass(frozen=True)
class FarmTopology:
    """Shape of the simulated INAX farm.

    ``devices`` INAX devices evaluate waves in (cycle-domain) parallel.
    ``islands`` sub-populations evolve independently; island ``i`` is
    homed on device ``i % devices``, and that home decides whether the
    island's migration edges are healthy at a barrier.  Migration moves
    ``migration_size`` champions around the island ring every
    ``migration_interval`` generations (0 disables migration).
    """

    devices: int = 1
    islands: int = 1
    migration_interval: int = 0
    migration_size: int = 0

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.islands < 1:
            raise ValueError(f"islands must be >= 1, got {self.islands}")
        if self.migration_interval < 0:
            raise ValueError(
                f"migration_interval must be >= 0, got {self.migration_interval}"
            )
        if self.migration_size < 0:
            raise ValueError(
                f"migration_size must be >= 0, got {self.migration_size}"
            )

    def island_device(self, island: int) -> int:
        """The device an island is homed on (migration health rule)."""
        return island % self.devices

    def migrates(self, generation: int) -> bool:
        """Is the end of ``generation`` a migration barrier?"""
        return (
            self.islands > 1
            and self.migration_interval > 0
            and self.migration_size > 0
            and (generation + 1) % self.migration_interval == 0
        )

    def to_dict(self) -> dict:
        return asdict(self)


def assign_waves(
    costs: Sequence[float], alive: Sequence[int]
) -> dict[int, list[int]]:
    """LPT-assign wave ordinals onto the alive devices.

    The second scheduling level on top of ``pack_waves``: each wave
    (heaviest predicted cost first, ties by lower ordinal) goes to the
    least-loaded alive device (ties by lower device id).  Each device's
    list comes back in ordinal order, preserving the single-device
    dispatch order within a device.

    Pure function of ``(costs, alive)``: eviction re-packs by calling
    this again over the orphaned ordinals and the survivor set, so a
    replay reproduces every placement decision bit for bit.
    """
    devices = sorted(alive)
    if not devices:
        raise ValueError("assign_waves needs at least one alive device")
    load = {device: 0.0 for device in devices}
    queues: dict[int, list[int]] = {device: [] for device in devices}
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    for ordinal in order:
        target = min(devices, key=lambda d: (load[d], d))
        queues[target].append(ordinal)
        load[target] += costs[ordinal]
    for device in devices:
        queues[device].sort()
    return queues
