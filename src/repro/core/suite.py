"""Suite runner: the paper's Env1..Env7 evaluation in one call.

Both the benchmark harness (capped, ~2 minutes) and the paper-scale
example (population 200, long) are the same loop with different knobs;
this module is that loop, so there is exactly one definition of "run
the suite and price it on all platforms".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.experiment import ExperimentResult, run_experiment
from repro.envs.registry import ENV_SUITE
from repro.neat.config import NEATConfig

__all__ = ["SuiteSettings", "run_suite", "BENCH_SETTINGS", "PAPER_SETTINGS"]


@dataclass(frozen=True)
class SuiteSettings:
    """Scale knobs for a suite run."""

    population_size: int
    #: per-environment generation caps; envs not listed are skipped
    generations: dict[str, int] = field(default_factory=dict)
    seed: int = 7
    episodes_per_genome: int = 1

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        unknown = set(self.generations) - {s.name for s in ENV_SUITE}
        if unknown:
            raise ValueError(f"unknown suite environments: {sorted(unknown)}")


#: the benchmark harness's capped scale (finishes in ~2 minutes)
BENCH_SETTINGS = SuiteSettings(
    population_size=100,
    generations={
        "cartpole": 15,
        "acrobot": 8,
        "mountain_car": 8,
        "bipedal_walker": 3,
        "lunar_lander": 5,
        "pendulum": 8,
        "pong": 5,
    },
)

#: the paper's own scale (§VI-C population 200; expect a long run)
PAPER_SETTINGS = SuiteSettings(
    population_size=200,
    generations={
        "cartpole": 50,
        "acrobot": 50,
        "mountain_car": 80,
        "bipedal_walker": 40,
        "lunar_lander": 60,
        "pendulum": 60,
        "pong": 60,
    },
)


def run_suite(
    settings: SuiteSettings = BENCH_SETTINGS,
    environments: list[str] | None = None,
) -> dict[str, ExperimentResult]:
    """Run NEAT on every (selected) suite env, priced on all platforms.

    Returns ``{env_name: ExperimentResult}`` in suite order.
    """
    chosen = set(environments) if environments is not None else None
    results: dict[str, ExperimentResult] = {}
    for spec in ENV_SUITE:
        if spec.name not in settings.generations:
            continue
        if chosen is not None and spec.name not in chosen:
            continue
        results[spec.name] = run_experiment(
            spec.name,
            seed=settings.seed,
            neat_config=NEATConfig(population_size=settings.population_size),
            max_generations=settings.generations[spec.name],
            episodes_per_genome=settings.episodes_per_genome,
        )
    return results
