"""The E3 platform (Eval-Evol-Engine, §IV-B).

``E3`` wires the pieces of Fig 5 together: a NEAT population ("evolve",
on the CPU), an evaluation backend ("evaluate", on the CPU or on the
INAX device), and an interactive environment (on the CPU).  One call to
:meth:`E3.run` executes the full closed loop of Fig 1(a) until the
task's required fitness is reached.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.core.backends import (
    BACKENDS,
    EvaluationBackend,
    FastCPUBackend,
    GenerationRecord,
)
from repro.core.profiler import PhaseProfiler
from repro.envs.registry import make, spec
from repro.inax.accelerator import INAXConfig
from repro.inax.heuristics import choose_num_pes
from repro.inax.pipeline import PipelineConfig
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork
from repro.neat.population import GenerationStats, Population
from repro.telemetry import RunManifest, TelemetrySession
from repro.telemetry.metrics import TeeRecorder

__all__ = [
    "E3",
    "E3RunResult",
    "default_inax_config",
    "effective_neat_config",
]


def default_inax_config(num_outputs: int, num_pus: int = 50) -> INAXConfig:
    """The paper's §VI-C configuration: PU=50, PE=#output nodes."""
    return INAXConfig(
        num_pus=num_pus, num_pes_per_pu=choose_num_pes(num_outputs)
    )


def effective_neat_config(
    env_name: str, base: NEATConfig | None = None
) -> NEATConfig:
    """``base`` with the env's I/O dimensions and fitness threshold
    applied — the exact config :class:`E3` runs with.

    Factored out so the serve layer's :class:`~repro.serve.pool.
    BackendPool` can key leased backends on the *same* config E3 will
    use, guaranteeing a pooled backend and the job that leases it agree
    on every decode-relevant field.
    """
    env_spec = spec(env_name)
    env = make(env_name)
    return replace(
        base or NEATConfig(),
        num_inputs=env.num_inputs,
        num_outputs=env.num_outputs,
        fitness_threshold=env_spec.required_fitness,
    )


@dataclass
class E3RunResult:
    """Everything a finished E3 run produced."""

    env_name: str
    backend_name: str
    best_genome: Genome
    best_fitness: float
    solved: bool
    generations: int
    neat_config: NEATConfig
    history: list[GenerationStats] = field(default_factory=list)
    records: list[GenerationRecord] = field(default_factory=list)
    profiler: PhaseProfiler = field(default_factory=PhaseProfiler)
    #: the run's telemetry session, when one was attached
    telemetry: TelemetrySession | None = None

    def best_network(self) -> FeedForwardNetwork:
        """Decode the champion genome into an executable network."""
        return FeedForwardNetwork.create(self.best_genome, self.neat_config)


class E3:
    """The HW/SW co-designed autonomous-learning platform."""

    def __init__(
        self,
        env_name: str,
        backend: str | EvaluationBackend = "cpu",
        neat_config: NEATConfig | None = None,
        inax_config: INAXConfig | None = None,
        episodes_per_genome: int = 1,
        seed: int = 0,
        env_kwargs: dict | None = None,
        seed_genome=None,
        workers: int = 0,
        telemetry: TelemetrySession | None = None,
        fault_plan=None,
        fallback: str | None = None,
        supervisor=None,
        pipeline: PipelineConfig | None = None,
        health=None,
        devices: int = 1,
        population: Population | None = None,
    ):
        """``env_kwargs`` override the environment's physics (the
        model-tuning plant perturbation); ``seed_genome`` warm-starts
        the population from a deployed champion (§I's model-tuning
        use-case — see ``examples/model_tuning.py``); ``workers``
        shards the ``cpu-fast`` backend's evaluation across that many
        worker processes (ignored by the other backends); ``telemetry``
        attaches a :class:`~repro.telemetry.TelemetrySession` — it is
        installed for the duration of :meth:`run`, phase timings tee
        into its metrics registry, and the backend's cache/shard
        statistics are published into it at run end.

        The resilience knobs (see ``docs/resilience.md``): ``fault_plan``
        arms a seeded :class:`~repro.resilience.faults.FaultPlan` for
        chaos runs; ``fallback`` (``"cpu-fast"`` or ``"cpu"``) lets the
        ``inax`` backend degrade faulted waves to the software path;
        ``supervisor`` tunes the ``cpu-fast`` shard watchdog *and* the
        fabric device supervisor — the shared
        :class:`~repro.resilience.supervisor.SupervisorConfig`.

        ``devices`` sizes the ``fabric`` backend's simulated INAX farm
        (``docs/fabric.md``); the other backends ignore it.

        ``pipeline`` (a :class:`~repro.inax.pipeline.PipelineConfig`)
        selects the generation-pipelining policies: LPT wave packing,
        double-buffered DMA/decode prefetch, and evolve/evaluate
        overlap — all default to the paper's sequential baseline and
        none of them can change a fitness bit.

        ``health`` attaches a :class:`~repro.obs.monitor.HealthMonitor`
        (the run-health watchtower, ``docs/observability.md``): it is
        wired in as a population reporter and probes this backend each
        generation; call ``health.write(path)`` after :meth:`run` for
        the ``health.json`` verdict.

        ``population`` adopts an existing :class:`Population` — a
        checkpoint restored by :func:`~repro.neat.checkpoint.
        load_checkpoint` (the serve layer's resume path) — instead of
        creating a fresh one; its config must match the environment's
        I/O dimensions, and ``neat_config``/``seed``/``seed_genome``
        are ignored in favor of the adopted population's own state."""
        env_spec = spec(env_name)  # validates the name early
        env_kwargs = dict(env_kwargs or {})
        env = make(env_name, **env_kwargs)
        self.env_name = env_name
        self.required_fitness = env_spec.required_fitness
        if population is not None:
            adopted = population.config
            if (
                adopted.num_inputs != env.num_inputs
                or adopted.num_outputs != env.num_outputs
            ):
                raise ValueError(
                    f"adopted population is {adopted.num_inputs}-in/"
                    f"{adopted.num_outputs}-out but {env_name!r} needs "
                    f"{env.num_inputs}-in/{env.num_outputs}-out"
                )
            self.neat_config = adopted
        else:
            base = neat_config or NEATConfig()
            self.neat_config = replace(
                base,
                num_inputs=env.num_inputs,
                num_outputs=env.num_outputs,
                fitness_threshold=env_spec.required_fitness,
            )
        if inax_config is None:
            inax_config = default_inax_config(env.num_outputs)
        self.inax_config = inax_config
        self.profiler = PhaseProfiler()
        self.seed = seed
        self.telemetry = telemetry

        if isinstance(backend, EvaluationBackend):
            self.backend = backend
        elif backend in BACKENDS:
            backend_cls = BACKENDS[backend]
            kwargs = dict(
                episodes_per_genome=episodes_per_genome,
                base_seed=seed,
                inax_config=inax_config,
                env_kwargs=env_kwargs,
                fault_plan=fault_plan,
                pipeline=pipeline,
            )
            if issubclass(backend_cls, FastCPUBackend):
                kwargs["workers"] = workers
                if supervisor is not None:
                    kwargs["supervisor"] = supervisor
            if backend in ("inax", "fabric"):
                kwargs["fallback"] = fallback
            if backend == "fabric":
                kwargs["devices"] = devices
                if supervisor is not None:
                    kwargs["supervisor"] = supervisor
            self.backend = backend_cls(env_name, self.neat_config, **kwargs)
        else:
            names = ", ".join(repr(n) for n in sorted(BACKENDS))
            raise ValueError(
                f"unknown backend {backend!r}; use one of {names} "
                "or an EvaluationBackend instance"
            )
        recorder = (
            self.profiler
            if telemetry is None
            else TeeRecorder(self.profiler, telemetry.phase_timer)
        )
        if population is not None:
            population.profiler = recorder
            self.population = population
        else:
            self.population = Population(
                self.neat_config,
                seed=seed,
                profiler=recorder,
                seed_genome=seed_genome,
            )
        if hasattr(self.backend, "reporter_columns"):
            self.population.stat_sources.append(self.backend.reporter_columns)
        self.health = health
        if health is not None:
            health.attach(self.population, self.backend)

    # ------------------------------------------------------------- run
    def run(
        self,
        max_generations: int | None = None,
        fitness_threshold: float | None = None,
        stop=None,
    ) -> E3RunResult:
        """Run evaluate/evolve until solved or out of generations.

        ``stop`` (a zero-arg callable returning bool) is checked at
        each generation boundary for cooperative cancellation — see
        :meth:`Population.run`."""
        session = self.telemetry
        if session is not None:
            if session.manifest is None:
                supervisor_config = getattr(
                    self.backend, "supervisor_config", None
                )
                session.manifest = RunManifest.collect(
                    command="e3.run",
                    env=self.env_name,
                    backend=self.backend.name,
                    workers=getattr(self.backend, "workers", 0),
                    population=self.neat_config.population_size,
                    generations=max_generations or 0,
                    episodes_per_genome=self.backend.episodes_per_genome,
                    seed=self.seed,
                    devices=getattr(self.backend, "num_devices", 1),
                    supervisor=(
                        asdict(supervisor_config)
                        if supervisor_config is not None
                        else {}
                    ),
                )
            session.install()
        backend_pipeline = getattr(self.backend, "pipeline", None)
        drain = (
            self.backend.drain
            if backend_pipeline is not None and backend_pipeline.overlap
            else None
        )
        try:
            result = self.population.run(
                self.backend.evaluate,
                max_generations=max_generations,
                fitness_threshold=fitness_threshold,
                drain=drain,
                stop=stop,
            )
        finally:
            if self.health is not None:
                # before uninstall, so end-of-run detector events still
                # land in this session's trace
                self.health.finalize()
            if session is not None:
                self._publish_backend_telemetry(session)
                session.uninstall()
        return E3RunResult(
            env_name=self.env_name,
            backend_name=self.backend.name,
            best_genome=result.best_genome,
            best_fitness=float(result.best_genome.fitness or 0.0),
            solved=result.solved,
            generations=result.generations,
            neat_config=self.neat_config,
            history=result.history,
            records=list(self.backend.records),
            profiler=self.profiler,
            telemetry=session,
        )

    def _publish_backend_telemetry(self, session: TelemetrySession) -> None:
        """Publish end-of-run backend statistics into the session."""
        registry = session.metrics
        backend = self.backend
        if hasattr(backend, "cache_info"):
            info = backend.cache_info()
            registry.gauge("fastcpu.cache.hits").set(info["hits"])
            registry.gauge("fastcpu.cache.misses").set(info["misses"])
            registry.gauge("fastcpu.cache.size").set(info["size"])
        if hasattr(backend, "compile_cache_info"):
            info = backend.compile_cache_info()
            registry.gauge("compile.cache.hits").set(info["hits"])
            registry.gauge("compile.cache.misses").set(info["misses"])
            registry.gauge("compile.cache.size").set(info["size"])
        if getattr(backend, "oversize_count", 0):
            registry.gauge("inax.oversize_genomes").set(backend.oversize_count)
        if getattr(backend, "quarantine_count", 0):
            registry.gauge("resilience.quarantined_genomes").set(
                backend.quarantine_count
            )
        if getattr(backend, "fallback_waves", 0):
            registry.gauge("inax.fallback_waves").set(backend.fallback_waves)
        fabric = getattr(backend, "fabric", None)
        if fabric is not None:
            for name, value in fabric.counters().items():
                registry.gauge(f"fabric.{name}").set(value)


# bottom import, deliberately: registering the fabric backend pulls in
# repro.fabric, which itself imports repro.core submodules — importing
# it after this module's definitions keeps the cycle harmless whichever
# package is imported first
import repro.fabric.backend  # noqa: E402,F401  (registers BACKENDS["fabric"])
