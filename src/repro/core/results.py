"""Result formatting: the tables and series the paper prints.

The benchmark harnesses use these helpers so every regenerated table
and figure prints the same row/series structure the paper reports
(Fig 9(b)'s runtime table, normalized-breakdown bars, Fig 10(a)'s
energy bars, Fig 11's cycle series).
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "format_table",
    "format_seconds",
    "format_breakdown",
    "to_json",
]


def format_seconds(seconds: float) -> str:
    """Human scale: '0.02 (s)' style used in Fig 9(b)."""
    if seconds >= 100:
        return f"{seconds:,.0f}"
    if seconds >= 1:
        return f"{seconds:.1f}"
    return f"{seconds:.2g}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_breakdown(fractions: Mapping[str, float]) -> str:
    """'evaluate 96.7% | evolve 2.1% | ...' one-liner."""
    return " | ".join(f"{k} {v * 100:.1f}%" for k, v in fractions.items())


def to_json(obj: object, indent: int = 2) -> str:
    """Serialize results (dataclasses included) to JSON."""

    def default(o: object):
        if is_dataclass(o) and not isinstance(o, type):
            return asdict(o)
        if hasattr(o, "tolist"):
            return o.tolist()
        raise TypeError(f"cannot serialize {type(o).__name__}")

    return json.dumps(obj, indent=indent, default=default)
