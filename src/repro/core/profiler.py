"""Phase profiler for the E3 timing breakdowns.

Accumulates wall-clock seconds per named phase.  The NEAT population
reports "evaluate" / "speciate" / "reproduce" into it; backends report
their sub-phases.  Fig 1(b) (NEAT's evaluate-dominated profile) and
Fig 9(d) (E3's balanced profile after acceleration) are both just
:meth:`PhaseProfiler.fractions` over different platforms.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates seconds per named phase."""

    def __init__(self):
        self._seconds: dict[str, float] = {}

    def record(self, phase: str, seconds: float) -> None:
        """Add ``seconds`` to ``phase`` (creates the phase on first use)."""
        if seconds < 0:
            raise ValueError(f"negative duration for {phase!r}: {seconds}")
        self._seconds[phase] = self._seconds.get(phase, 0.0) + seconds

    @contextmanager
    def phase(self, name: str):
        """Context manager timing a block into ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - t0)

    # -------------------------------------------------------------- views
    @property
    def phases(self) -> dict[str, float]:
        """Copy of the phase -> seconds mapping."""
        return dict(self._seconds)

    def seconds(self, phase: str) -> float:
        return self._seconds.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self._seconds.values())

    def fractions(self) -> dict[str, float]:
        """Phase fractions of total time (a Fig 1(b)-style pie)."""
        total = self.total
        if total <= 0:
            return {k: 0.0 for k in self._seconds}
        return {k: v / total for k, v in self._seconds.items()}

    def merge(self, other: "PhaseProfiler") -> None:
        for phase, seconds in other.phases.items():
            self.record(phase, seconds)

    def reset(self) -> None:
        self._seconds.clear()
