"""End-to-end experiment driver for the Fig 9 / Fig 10 comparisons.

The methodology: run the NEAT loop **once** (functionally, on the CPU
backend — the evolved genomes, episode lengths, and fitness trajectory
are backend-independent), record the per-generation workload, then
price that identical workload on all three platforms:

* E3-CPU  — :class:`repro.hw.cpu_model.CPUModel`
* E3-GPU  — :class:`repro.hw.gpu_model.GPUModel`
* E3-INAX — INAX cycle reports x the FPGA clock, host phases on CPU

This mirrors the paper's setup where all three platforms solve the same
tasks, while making the comparison exactly workload-controlled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backends import GenerationRecord
from repro.core.energy import EnergyReport, energy_report
from repro.core.platform import E3, E3RunResult, default_inax_config
from repro.envs.registry import make, spec
from repro.hw.cpu_model import CPUModel, PhaseTimes
from repro.hw.fpga_model import INAXPlatformModel
from repro.hw.gpu_model import GPUModel
from repro.inax.accelerator import INAXConfig
from repro.inax.timing import CycleReport
from repro.neat.config import NEATConfig

__all__ = [
    "PlatformResult",
    "ExperimentResult",
    "cpu_model_for",
    "price_run",
    "run_experiment",
]

PLATFORMS = ("cpu", "gpu", "inax")


def cpu_model_for(env_name: str) -> CPUModel:
    """A CPU model with the environment's own env.step() cost."""
    from repro.hw import calibration as cal

    return CPUModel(
        seconds_per_env_step=cal.ENV_STEP_SECONDS.get(
            env_name, cal.CPU_SECONDS_PER_ENV_STEP
        )
    )


@dataclass
class PlatformResult:
    """One platform's pricing of a run."""

    platform: str
    times: PhaseTimes
    energy: EnergyReport

    @property
    def runtime_seconds(self) -> float:
        return self.times.total

    @property
    def energy_joules(self) -> float:
        return self.energy.total


@dataclass
class ExperimentResult:
    """One environment's full three-platform comparison."""

    env_name: str
    paper_id: str | None
    solved: bool
    generations: int
    best_fitness: float
    platforms: dict[str, PlatformResult] = field(default_factory=dict)
    inax_report: CycleReport = field(default_factory=CycleReport)
    run: E3RunResult | None = None

    # ------------------------------------------------------- comparisons
    def speedup(self, over: str = "cpu", of: str = "inax") -> float:
        """Runtime ratio, e.g. E3-CPU / E3-INAX (the paper's 30x)."""
        return (
            self.platforms[over].runtime_seconds
            / self.platforms[of].runtime_seconds
        )

    def energy_ratio(self, of: str, over: str = "cpu") -> float:
        """Energy of one platform relative to another."""
        return (
            self.platforms[of].energy_joules
            / self.platforms[over].energy_joules
        )


def price_run(
    records: list[GenerationRecord],
    inax_config: INAXConfig,
    cpu_model: CPUModel | None = None,
    gpu_model: GPUModel | None = None,
    inax_model: INAXPlatformModel | None = None,
) -> tuple[dict[str, PlatformResult], CycleReport]:
    """Price a recorded run on all three platforms."""
    cpu_model = cpu_model or CPUModel()
    gpu_model = gpu_model or GPUModel(host=cpu_model)
    inax_model = inax_model or INAXPlatformModel(inax_config, host=cpu_model)

    cpu_times, gpu_times, inax_times = PhaseTimes(), PhaseTimes(), PhaseTimes()
    merged_report = CycleReport()
    for record in records:
        cpu_times.merge(cpu_model.generation_times(record.workload))
        gpu_times.merge(gpu_model.generation_times(record.workload))
        if record.cycle_report is None:
            raise ValueError(
                "record has no INAX cycle report; evaluate with an "
                "inax_config attached"
            )
        inax_times.merge(
            inax_model.generation_times(record.workload, record.cycle_report)
        )
        merged_report.merge(record.cycle_report)

    platforms = {
        "cpu": PlatformResult("cpu", cpu_times, energy_report(cpu_times, "cpu")),
        "gpu": PlatformResult("gpu", gpu_times, energy_report(gpu_times, "gpu")),
        "inax": PlatformResult(
            "inax", inax_times, energy_report(inax_times, "inax")
        ),
    }
    return platforms, merged_report


def run_experiment(
    env_name: str,
    seed: int = 0,
    neat_config: NEATConfig | None = None,
    inax_config: INAXConfig | None = None,
    max_generations: int | None = None,
    episodes_per_genome: int = 1,
    backend: str = "cpu",
    fitness_threshold: float | None = None,
    workers: int = 0,
) -> ExperimentResult:
    """Run NEAT on ``env_name`` and price it on all three platforms.

    ``backend`` picks where the functional run executes — ``cpu-fast``
    prices identically to ``cpu`` because the fitness trajectory,
    workloads, and episode lengths are bit-identical; it just finishes
    the functional run sooner.  ``workers`` shards ``cpu-fast``
    evaluation across processes.
    """
    env_spec = spec(env_name)
    env = make(env_name)
    if inax_config is None:
        inax_config = default_inax_config(env.num_outputs)

    platform = E3(
        env_name,
        backend=backend,
        neat_config=neat_config,
        inax_config=inax_config,
        episodes_per_genome=episodes_per_genome,
        seed=seed,
        workers=workers,
    )
    run = platform.run(
        max_generations=max_generations, fitness_threshold=fitness_threshold
    )
    platform.backend.close()
    platforms, merged = price_run(
        run.records, inax_config, cpu_model=cpu_model_for(env_name)
    )
    return ExperimentResult(
        env_name=env_name,
        paper_id=env_spec.paper_id,
        solved=run.solved,
        generations=run.generations,
        best_fitness=run.best_fitness,
        platforms=platforms,
        inax_report=merged,
        run=run,
    )
