"""Evaluation backends: where the "evaluate" phase actually runs.

The E3 platform (Fig 5) keeps "evolve" on the CPU and chooses where to
run "evaluate":

* :class:`CPUBackend` — the SW-only baseline (E3-CPU): decode each
  genome and run its episodes with the software forward pass;
* :class:`INAXBackend` — the co-designed path (E3-INAX): compile each
  genome to a HW configuration, dispatch the population in waves to the
  functional INAX device, and drive the closed CPU<->FPGA loop: the CPU
  scatters observations, the device infers, the CPU steps the envs with
  the returned actions, until every individual's episode terminates.

Both backends evaluate episodes under the same per-genome seeds, so a
NEAT run's fitness trajectory is identical regardless of backend — the
property the integration tests pin down.

Every backend also records the generation's *workload* (for the
CPU/GPU cost models) and, when an INAX configuration is attached, the
analytic cycle report (for E3-INAX pricing) — this is what the Fig 9/10
benchmark harnesses consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.envs.base import Environment
from repro.envs.registry import make
from repro.envs.rollout import decode_action
from repro.hw.workload import GenerationWorkload, IndividualWork
from repro.inax.accelerator import INAX, INAXConfig, schedule_generation
from repro.inax.compiler import HWNetConfig, compile_genome
from repro.inax.pu import BufferOverflowError
from repro.inax.timing import CycleReport
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork

__all__ = ["GenerationRecord", "EvaluationBackend", "CPUBackend", "INAXBackend"]


@dataclass
class GenerationRecord:
    """Everything recorded while evaluating one generation."""

    workload: GenerationWorkload
    #: compiled individuals, aligned with workload.individuals
    configs: list[HWNetConfig]
    episode_lengths: list[int]
    #: analytic INAX cycles (filled when an INAX config is attached)
    cycle_report: CycleReport | None = None


class EvaluationBackend:
    """Base backend: owns env construction, seeding, and recording."""

    name = "backend"

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        inax_config: INAXConfig | None = None,
        env_kwargs: dict | None = None,
    ):
        self.env_name = env_name
        self.neat_config = neat_config
        self.episodes_per_genome = episodes_per_genome
        self.base_seed = base_seed
        self.inax_config = inax_config
        self.env_kwargs = dict(env_kwargs or {})
        self.records: list[GenerationRecord] = []
        self._generation = 0

    # ------------------------------------------------------------ hooks
    def evaluate(self, genomes: list[Genome]) -> None:
        """Set ``fitness`` on every genome; record the workload."""
        raise NotImplementedError

    # ---------------------------------------------------------- helpers
    def _episode_seed(self, genome: Genome, episode: int) -> int:
        # deterministic per (run, genome, episode); independent of backend
        return (self.base_seed * 1_000_003 + genome.key * 31 + episode) % (2**31)

    def _make_env(self) -> Environment:
        return make(self.env_name, **self.env_kwargs)

    def _record(
        self,
        configs: list[HWNetConfig],
        episode_lengths: list[int],
    ) -> GenerationRecord:
        workload = GenerationWorkload(
            individuals=[
                IndividualWork.from_config(cfg, steps)
                for cfg, steps in zip(configs, episode_lengths)
            ]
        )
        report = None
        if self.inax_config is not None:
            report = schedule_generation(
                self.inax_config, configs, episode_lengths
            )
        record = GenerationRecord(
            workload=workload,
            configs=configs,
            episode_lengths=episode_lengths,
            cycle_report=report,
        )
        self.records.append(record)
        self._generation += 1
        return record


class CPUBackend(EvaluationBackend):
    """SW-only evaluation: the E3-CPU baseline."""

    name = "cpu"

    def evaluate(self, genomes: list[Genome]) -> None:
        configs: list[HWNetConfig] = []
        lengths: list[int] = []
        for genome in genomes:
            net = FeedForwardNetwork.create(genome, self.neat_config)
            configs.append(compile_genome(genome, self.neat_config))
            total_reward = 0.0
            total_steps = 0
            for episode in range(self.episodes_per_genome):
                env = self._make_env()
                obs = env.reset(seed=self._episode_seed(genome, episode))
                done = False
                while not done:
                    action = decode_action(env, net.activate(obs))
                    obs, reward, done, _ = env.step(action)
                    total_reward += reward
                    total_steps += 1
            genome.fitness = total_reward / self.episodes_per_genome
            lengths.append(total_steps)
        self._record(configs, lengths)


class GPUBackend(CPUBackend):
    """The E3-GPU reference setting (§VI-A).

    Functionally identical to the CPU backend — a GPU computes the same
    forward passes, just (per the paper) *slower* for this workload —
    so evaluation reuses the software path while the platform pricing
    (:class:`repro.hw.gpu_model.GPUModel`) charges GPU rates.  Exists so
    all three of the paper's settings are addressable as backends.
    """

    name = "gpu"


class INAXBackend(EvaluationBackend):
    """HW/SW co-designed evaluation on the functional INAX device.

    Episodes run in lock-step across a wave of PUs: each synchronized
    device step infers every still-alive individual, then the CPU steps
    each individual's environment with the decoded action.  Early
    terminations drop out of subsequent steps (the §V-B2 idle-PU
    effect), and the device's cycle report reflects it.
    """

    name = "inax"

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        inax_config: INAXConfig | None = None,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        env_kwargs: dict | None = None,
        oversize_policy: str = "raise",
        oversize_penalty: float = -1e9,
    ):
        """``oversize_policy`` decides what happens when an evolved
        genome no longer fits the PUs' weight/value buffers (a real
        failure mode once buffer capacities are finite): ``"raise"``
        aborts the run; ``"penalize"`` assigns ``oversize_penalty`` as
        the fitness without evaluating, so selection prunes oversized
        topologies — the resource pressure a deployed E3 would apply."""
        if oversize_policy not in ("raise", "penalize"):
            raise ValueError(
                f"unknown oversize_policy {oversize_policy!r}; "
                "use 'raise' or 'penalize'"
            )
        inax_config = inax_config or INAXConfig()
        super().__init__(
            env_name,
            neat_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
            inax_config=inax_config,
            env_kwargs=env_kwargs,
        )
        self.device = INAX(inax_config)
        self.oversize_policy = oversize_policy
        self.oversize_penalty = oversize_penalty
        self.oversize_count = 0

    def _fits_buffers(self, config: HWNetConfig) -> bool:
        limits = self.inax_config
        if (
            limits.weight_buffer_capacity is not None
            and config.weight_buffer_words > limits.weight_buffer_capacity
        ):
            return False
        if (
            limits.value_buffer_capacity is not None
            and config.value_buffer_words > limits.value_buffer_capacity
        ):
            return False
        return True

    def evaluate(self, genomes: list[Genome]) -> None:
        assert self.inax_config is not None
        all_configs = [compile_genome(g, self.neat_config) for g in genomes]

        # buffer-capacity gate (§IV-D: finite weight/value buffers)
        runnable: list[Genome] = []
        configs: list[HWNetConfig] = []
        for genome, config in zip(genomes, all_configs):
            if self._fits_buffers(config):
                runnable.append(genome)
                configs.append(config)
            elif self.oversize_policy == "raise":
                raise BufferOverflowError(
                    f"genome {genome.key} needs {config.weight_buffer_words} "
                    "weight-buffer words; raise the capacity or use "
                    "oversize_policy='penalize'"
                )
            else:
                genome.fitness = self.oversize_penalty
                self.oversize_count += 1

        lengths = [0] * len(runnable)
        rewards = [0.0] * len(runnable)
        num_pus = self.inax_config.num_pus

        self.device.reset_report()
        for start in range(0, len(runnable), num_pus):
            wave_genomes = runnable[start : start + num_pus]
            wave_configs = configs[start : start + num_pus]
            for episode in range(self.episodes_per_genome):
                self._run_wave_episode(
                    start, wave_genomes, wave_configs, episode, lengths, rewards
                )

        for genome, reward in zip(runnable, rewards):
            genome.fitness = reward / self.episodes_per_genome
        record = self._record(configs, lengths)
        # the functional device's own report supersedes the analytic one
        record.cycle_report = self.device.report

    def _run_wave_episode(
        self,
        offset: int,
        genomes: list[Genome],
        configs: list[HWNetConfig],
        episode: int,
        lengths: list[int],
        rewards: list[float],
    ) -> None:
        self.device.begin_wave(configs)
        envs: list[Environment] = []
        observations: list[np.ndarray] = []
        for genome in genomes:
            env = self._make_env()
            envs.append(env)
            observations.append(
                env.reset(seed=self._episode_seed(genome, episode))
            )
        alive = set(range(len(genomes)))
        while alive:
            inputs = {slot: observations[slot] for slot in alive}
            outputs = self.device.step(inputs)
            for slot, raw in outputs.items():
                env = envs[slot]
                action = decode_action(env, raw)
                obs, reward, done, _ = env.step(action)
                observations[slot] = obs
                rewards[offset + slot] += reward
                lengths[offset + slot] += 1
                if done:
                    alive.discard(slot)
        self.device.end_wave()
