"""Evaluation backends: where the "evaluate" phase actually runs.

The E3 platform (Fig 5) keeps "evolve" on the CPU and chooses where to
run "evaluate":

* :class:`CPUBackend` — the SW-only baseline (E3-CPU): decode each
  genome and run its episodes with the interpreted per-node forward
  pass;
* :class:`FastCPUBackend` — the production software path (``cpu-fast``):
  decode each genome **once** per generation into a
  :class:`~repro.neat.vectorized.VectorizedNetwork` (an LRU cache keyed
  on the genome's structural hash carries elites' decoded networks
  across generations), run the whole population's episodes in lock-step
  through one :class:`~repro.neat.vectorized.PopulationEvaluator`, and
  optionally shard the population across a ``multiprocessing`` pool.
  Fitness trajectories are bit-identical to :class:`CPUBackend`;
* :class:`INAXBackend` — the co-designed path (E3-INAX): compile each
  genome to a HW configuration, dispatch the population in waves to the
  functional INAX device, and drive the closed CPU<->FPGA loop until
  every individual's episode terminates.

All backends drive episodes through the shared rollout machinery
(:func:`repro.envs.rollout.run_episode` for sequential evaluation,
:func:`repro.envs.rollout.run_lockstep` for wave evaluation) and
evaluate under the same per-(genome, episode) seeds, so a NEAT run's
fitness trajectory is identical regardless of backend — the property
the integration tests pin down.

Every backend also records the generation's *workload* (for the
CPU/GPU cost models) and, when an INAX configuration is attached, the
analytic cycle report (for E3-INAX pricing) — this is what the Fig 9/10
benchmark harnesses consume.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.compile import CompileCache, CompiledPopulationEvaluator
from repro.core.profiler import PhaseProfiler
from repro.envs.base import Environment
from repro.envs.registry import make
from repro.envs.rollout import run_episode, run_lockstep
from repro.hw.workload import GenerationWorkload, IndividualWork
from repro.inax.accelerator import INAX, INAXConfig, schedule_generation
from repro.inax.compiler import HWNetConfig, compile_genome
from repro.inax.pipeline import PipelineConfig, pack_waves, predict_costs
from repro.inax.pu import BufferOverflowError
from repro.inax.timing import CycleReport
from repro.neat.config import NEATConfig
from repro.neat.genome import Genome
from repro.neat.network import FeedForwardNetwork
from repro.neat.vectorized import PopulationEvaluator, VectorizedNetwork
from repro.resilience.faults import (
    DeviceFault,
    FaultPlan,
    ResilienceEvent,
    emit_event,
    maybe_fail_worker,
)
from repro.resilience.injectors import (
    DeviceFaultInjector,
    has_device_faults,
    wrap_env,
)
from repro.resilience.quarantine import DEFAULT_PENALTY, quarantine_nonfinite
from repro.resilience.supervisor import ShardSupervisor, SupervisorConfig
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import span as _span

__all__ = [
    "GenerationRecord",
    "EvaluationBackend",
    "CPUBackend",
    "FastCPUBackend",
    "CompiledCPUBackend",
    "GPUBackend",
    "INAXBackend",
    "BACKENDS",
]


@dataclass
class GenerationRecord:
    """Everything recorded while evaluating one generation."""

    workload: GenerationWorkload
    #: compiled individuals, aligned with workload.individuals
    configs: list[HWNetConfig]
    episode_lengths: list[int]
    #: analytic INAX cycles (filled when an INAX config is attached;
    #: with evolve/evaluate overlap the fill is deferred until the
    #: backend's :meth:`EvaluationBackend.drain` runs)
    cycle_report: CycleReport | None = None
    #: the per-individual cost predictions the wave packer used
    #: (``schedule="lpt"`` only), so the dispatch can be replayed
    predicted_costs: list[float | None] | None = None


class EvaluationBackend:
    """Base backend: owns env construction, seeding, and recording."""

    name = "backend"

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        inax_config: INAXConfig | None = None,
        env_kwargs: dict | None = None,
        fault_plan: FaultPlan | None = None,
        quarantine_penalty: float = DEFAULT_PENALTY,
        pipeline: PipelineConfig | None = None,
    ):
        self.env_name = env_name
        self.neat_config = neat_config
        self.episodes_per_genome = episodes_per_genome
        self.base_seed = base_seed
        self.inax_config = inax_config
        self.env_kwargs = dict(env_kwargs or {})
        #: armed chaos faults (None = clean run, zero injection overhead)
        self.fault_plan = fault_plan
        #: sentinel fitness for genomes whose evaluation went non-finite
        self.quarantine_penalty = quarantine_penalty
        self.quarantine_count = 0
        #: backend-level resilience events (quarantine, fallback, oversize)
        self.resilience_events: list[ResilienceEvent] = []
        self.records: list[GenerationRecord] = []
        self._generation = 0
        #: pipelining policies (wave packing / prefetch / overlap)
        self.pipeline = pipeline if pipeline is not None else PipelineConfig()
        #: genome key -> total episode steps at its last evaluation (the
        #: LPT packer's cost predictor)
        self._last_lengths: dict[int, int] = {}
        #: deferred per-generation bookkeeping (see :meth:`drain`)
        self._pending_drain: list = []

    # ------------------------------------------------------------ hooks
    def evaluate(self, genomes: list[Genome]) -> None:
        """Set ``fitness`` on every genome; record the workload.

        Wraps the backend-specific :meth:`_evaluate` in a telemetry
        span so every backend's generation shows up on the trace
        timeline with the same name and attributes.  After evaluation,
        genomes whose fitness came back NaN/inf (faulty sensor, corrupt
        buffer) are quarantined to :attr:`quarantine_penalty` so they
        cannot poison selection.
        """
        generation = self._generation
        with _span(
            "backend.evaluate",
            backend=self.name,
            generation=generation,
            genomes=len(genomes),
        ):
            self._evaluate(genomes)
            nonfinite = [
                g.key
                for g in genomes
                if g.fitness is not None and not math.isfinite(g.fitness)
            ]
            quarantined = quarantine_nonfinite(
                genomes,
                penalty=self.quarantine_penalty,
                site_prefix=f"gen={generation}|",
            )
            if quarantined:
                self.quarantine_count += len(quarantined)
                self.resilience_events.extend(quarantined)
                # a quarantined genome's episode ran under fault
                # conditions (NaN rewards end episodes at whatever step
                # the fault fired), so its recorded length would poison
                # the LPT cost prediction for its key next generation;
                # dropping it falls back to arrival-order placement
                for key in nonfinite:
                    self._last_lengths.pop(key, None)
        if not self.pipeline.overlap:
            self.drain()

    def _evaluate(self, genomes: list[Genome]) -> None:
        raise NotImplementedError

    def warm_caches(self, genomes: list[Genome]) -> int:
        """Pre-populate structural caches from ``genomes`` (resume path).

        ``load_checkpoint`` restores the population but no cache state;
        without warming, the first post-resume generation silently
        re-decodes/re-compiles everything.  Returns how many cache
        entries were built; backends without structural caches warm
        nothing.
        """
        return 0

    def drain(self) -> None:
        """Run the generation's deferred bookkeeping (idempotent).

        Every fitness is already set *synchronously* by
        :meth:`evaluate` — reproduction needs them all — so what the
        evolve/evaluate overlap actually hides is this drain: the
        analytic :func:`schedule_generation` pricing of the generation
        record.  It touches no RNG, no genomes, and no telemetry
        tracer, so running it on a background thread while
        ``Population`` evolves cannot change a bit of the run.  With
        ``pipeline.overlap`` off, :meth:`evaluate` drains inline and
        behavior is exactly the pre-pipeline sequential loop.
        """
        pending, self._pending_drain = self._pending_drain, []
        for task in pending:
            task()

    def close(self) -> None:
        """Release any resources (worker pools, devices). Idempotent."""

    def reset_run_state(self, base_seed: int | None = None) -> None:
        """Clear per-run accumulators so the instance can host a new run.

        The serve-layer :class:`~repro.serve.pool.BackendPool` leases
        backends across jobs; this resets everything a run accumulates
        — generation records, the generation counter, LPT cost history,
        quarantine/resilience accounting — while deliberately keeping
        the *structural* caches (decoded networks, compiled shapes,
        live worker pools).  Those are keyed purely on genome content
        and cannot change fitness bits, so a reused backend is
        bit-identical to a fresh one but skips cold-start decode and
        pool-spawn costs.  ``base_seed`` rebinds the run seed (it feeds
        every per-episode seed draw) when the next job differs.
        """
        self.records = []
        self._generation = 0
        self._last_lengths = {}
        self._pending_drain = []
        self.quarantine_count = 0
        self.resilience_events = []
        if base_seed is not None:
            self.base_seed = base_seed

    # ---------------------------------------------------------- helpers
    def _episode_seed(self, genome: Genome, episode: int) -> int:
        """Deterministic per (run, genome, episode); independent of backend.

        The (base_seed, genome key, episode) triple is hashed through
        SHA-256 and truncated to 63 bits, so distinct triples get
        distinct, well-mixed seeds (the old ``key * 31 + episode``
        scheme collided for adjacent keys as soon as
        ``episodes_per_genome`` exceeded 31).
        """
        payload = f"{self.base_seed}|{genome.key}|{episode}".encode()
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "little") >> 1

    def _make_env(self) -> Environment:
        env = make(self.env_name, **self.env_kwargs)
        # env-level faults apply identically on every backend (and inside
        # cpu-fast workers): FaultySensor keys its draws off the episode
        # seed, so sharding/fallback cannot change what fires
        return wrap_env(env, self.fault_plan)

    def _event(self, kind: str, site: str, **details) -> ResilienceEvent:
        """Record one backend-level resilience event (+ telemetry)."""
        event = ResilienceEvent(kind=kind, site=site, details=dict(details))
        self.resilience_events.append(event)
        emit_event(kind, site)
        return event

    def reporter_columns(self) -> dict[str, float]:
        """Cumulative per-generation extras for reporters (see
        :attr:`repro.neat.population.Population.stat_sources`)."""
        return {"quarantined": float(self.quarantine_count)}

    def resilience_log(self) -> list[dict]:
        """Backend + fault-plan events as comparable dicts (replay tests)."""
        events = [event.to_dict() for event in self.resilience_events]
        if self.fault_plan is not None:
            events.extend(self.fault_plan.event_log())
        return events

    def _predict_costs(
        self, configs: list[HWNetConfig], keys: list[int]
    ) -> list[float | None] | None:
        """LPT cost predictions from last-generation lengths (or None)."""
        if self.pipeline.schedule != "lpt" or self.inax_config is None:
            return None
        hw = self.inax_config
        return predict_costs(
            configs,
            keys,
            self._last_lengths,
            hw.num_pes_per_pu,
            hw.pe_costs,
            hw.pu_costs,
        )

    def _record(
        self,
        configs: list[HWNetConfig],
        episode_lengths: list[int],
        keys: list[int] | None = None,
        predicted_costs: list[float | None] | None = None,
        analytic: bool = True,
    ) -> GenerationRecord:
        """Record the generation; analytic pricing may be deferred.

        ``keys`` (genome keys aligned with ``configs``) feed the LPT
        cost predictor for the *next* generation.  ``analytic=False``
        skips the closed-form :func:`schedule_generation` — the INAX
        backend supersedes it with the functional device's own report,
        so pricing the generation twice would be pure waste.
        """
        if predicted_costs is None and analytic:
            # software backends model the dispatch the device would run;
            # predictions must come from *pre-update* history, exactly
            # like the device packs before evaluating
            predicted_costs = (
                self._predict_costs(configs, keys) if keys else None
            )
        workload = GenerationWorkload(
            individuals=[
                IndividualWork.from_config(cfg, steps)
                for cfg, steps in zip(configs, episode_lengths)
            ]
        )
        record = GenerationRecord(
            workload=workload,
            configs=configs,
            episode_lengths=episode_lengths,
            cycle_report=None,
            predicted_costs=predicted_costs,
        )
        if analytic and self.inax_config is not None:
            inax_config = self.inax_config
            pipeline = self.pipeline

            def price() -> None:
                record.cycle_report = schedule_generation(
                    inax_config,
                    configs,
                    episode_lengths,
                    pipeline=pipeline,
                    predicted_costs=predicted_costs,
                )

            self._pending_drain.append(price)
        if keys is not None:
            for key, steps in zip(keys, episode_lengths):
                self._last_lengths[key] = steps
        self.records.append(record)
        self._generation += 1
        return record


class CPUBackend(EvaluationBackend):
    """SW-only evaluation: the E3-CPU baseline.

    Episodes run through the shared :func:`run_episode` driver with the
    interpreted per-node forward pass — deliberately the slow reference
    path the paper profiles in Fig 1(b).
    """

    name = "cpu"

    def _evaluate(self, genomes: list[Genome]) -> None:
        configs: list[HWNetConfig] = []
        lengths: list[int] = []
        for genome in genomes:
            net = FeedForwardNetwork.create(genome, self.neat_config)
            configs.append(compile_genome(genome, self.neat_config))
            total_reward = 0.0
            total_steps = 0
            for episode in range(self.episodes_per_genome):
                record = run_episode(
                    self._make_env(),
                    net,
                    seed=self._episode_seed(genome, episode),
                )
                total_reward += record.total_reward
                total_steps += record.steps
            genome.fitness = total_reward / self.episodes_per_genome
            lengths.append(total_steps)
        self._record(configs, lengths, keys=[g.key for g in genomes])


class GPUBackend(CPUBackend):
    """The E3-GPU reference setting (§VI-A).

    Functionally identical to the CPU backend — a GPU computes the same
    forward passes, just (per the paper) *slower* for this workload —
    so evaluation reuses the software path while the platform pricing
    (:class:`repro.hw.gpu_model.GPUModel`) charges GPU rates.  Exists so
    all three of the paper's settings are addressable as backends.
    """

    name = "gpu"


@dataclass
class _Decoded:
    """One genome's per-generation decode products, cached together."""

    config: HWNetConfig
    net: FeedForwardNetwork
    #: None when the genome's plan is not vectorizable (exotic
    #: aggregation/activation) — those fall back to the interpreted path.
    vnet: VectorizedNetwork | None


class _DecodeCache:
    """LRU of structural-hash -> :class:`_Decoded`.

    Elites are copied unchanged between generations, so their decoded
    networks and compiled HW configs hash identically and need decoding
    only once per run instead of once per generation.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: entries inserted by :meth:`warm` (resume warm-start); kept out
        #: of hits/misses so hit-rate telemetry stays honest
        self.warmed = 0
        self._entries: OrderedDict[str, _Decoded] = OrderedDict()

    def get(self, genome: Genome, config: NEATConfig) -> _Decoded:
        key = genome.structural_hash()
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        self._build(key, genome, config)
        return self._entries[key]

    def warm(self, genome: Genome, config: NEATConfig) -> bool:
        """Insert ``genome``'s decode without touching hit/miss counts.

        Returns True when an entry was actually built (False: already
        cached).
        """
        key = genome.structural_hash()
        if key in self._entries:
            self._entries.move_to_end(key)
            return False
        self.warmed += 1
        self._build(key, genome, config)
        return True

    def _build(self, key: str, genome: Genome, config: NEATConfig) -> None:
        net = FeedForwardNetwork.create(genome, config)
        try:
            vnet = VectorizedNetwork(net)
        except ValueError:
            vnet = None
        self._entries[key] = _Decoded(
            config=compile_genome(genome, config), net=net, vnet=vnet
        )
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


# ------------------------------------------------------------------ pool
class _WorkerState:
    """One worker process's state for FastCPUBackend's shards.

    Bundles the worker-local backend with the cumulative cache counters
    it has already reported, so each shard result ships a *delta* the
    parent can sum regardless of which worker the shard landed on.  The
    whole object is rebuilt by :func:`_fastcpu_worker_init` every time a
    pool (re)initializes its workers — counters can never leak between
    successive or concurrent runs in one process the way the former
    module-level dicts did.
    """

    __slots__ = ("backend", "reported_cache", "reported_compile")

    def __init__(self, backend: "FastCPUBackend") -> None:
        self.backend = backend
        self.reported_cache = {"hits": 0, "misses": 0}
        self.reported_compile = {"hits": 0, "misses": 0}


# per-process handle, set only inside pool worker processes by the pool
# initializer; replaced wholesale on every pool (re)spawn
_WORKER_STATE: _WorkerState | None = None


def _shard_slot(site: str) -> str:
    """The stable shard slot (``shard=N``) in a payload site.

    Attempt indices change across retries but the slot does not, so a
    retried shard's size report *replaces* its predecessor instead of
    accumulating.  Siteless legacy payloads share the anonymous slot.
    """
    for part in site.split("|"):
        if part.startswith("shard="):
            return part
    return ""


def _fastcpu_worker_init(
    env_name: str,
    neat_config: NEATConfig,
    episodes_per_genome: int,
    base_seed: int,
    env_kwargs: dict,
    cache_size: int,
    fault_plan: FaultPlan | None = None,
    backend_cls: "type[FastCPUBackend] | None" = None,
) -> None:
    global _WORKER_STATE
    # workers run the parent's own class (cpu-compiled shards must use
    # the compiled path), minus sharding — classes pickle by reference
    cls = backend_cls if backend_cls is not None else FastCPUBackend
    _WORKER_STATE = _WorkerState(
        cls(
            env_name,
            neat_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
            env_kwargs=env_kwargs,
            workers=0,
            cache_size=cache_size,
            fault_plan=fault_plan,
        )
    )


def _fastcpu_worker_evaluate(
    task: tuple[list[Genome], bool, str],
) -> tuple[list[tuple[int, float, int]], dict]:
    """Evaluate one shard; returns (per-genome rows, shard telemetry).

    The telemetry payload carries the worker-side wall seconds, the
    decode-cache activity since the worker's last report, and — when
    the parent has a metrics registry installed — a fresh worker-side
    registry snapshot (episode-step and wave-size histograms), so
    sharded evaluation no longer discards worker-side telemetry.

    ``task`` also carries the shard's fault site
    (``gen=G|shard=I|attempt=A``): any armed ``worker.*`` fault fires
    here, *before* evaluation — the attempt index is part of the draw,
    so a supervised retry of a crashed shard gets a fresh chance.
    """
    genomes, want_metrics, fault_site = task
    state = _WORKER_STATE
    assert state is not None, "worker pool not initialized"
    backend = state.backend
    maybe_fail_worker(backend.fault_plan, fault_site)
    from repro.telemetry.metrics import MetricsRegistry, set_metrics

    registry = MetricsRegistry() if want_metrics else None
    previous = set_metrics(registry) if want_metrics else None
    t0 = time.perf_counter()
    try:
        fitnesses, lengths = backend._fitness_for(genomes)
    finally:
        if want_metrics:
            set_metrics(previous)
    seconds = time.perf_counter() - t0
    info = backend.cache_info()
    cache_delta = {
        "hits": info["hits"] - state.reported_cache["hits"],
        "misses": info["misses"] - state.reported_cache["misses"],
    }
    state.reported_cache["hits"] = info["hits"]
    state.reported_cache["misses"] = info["misses"]
    telemetry = {
        # the shard's unique site (gen=G|shard=I|attempt=A) rides along
        # so the parent can merge each payload exactly once even if a
        # supervisor retry path ever hands the same result back twice
        "site": fault_site,
        "phase_seconds": {"evaluate": seconds},
        "cache_delta": cache_delta,
        "cache_size": info["size"],
        "genomes": len(genomes),
        "metrics": registry.snapshot() if registry is not None else None,
    }
    compile_cache = getattr(backend, "_compile_cache", None)
    if compile_cache is not None:
        compile_info = compile_cache.info()
        telemetry["compile_delta"] = {
            "hits": compile_info["hits"] - state.reported_compile["hits"],
            "misses": (
                compile_info["misses"] - state.reported_compile["misses"]
            ),
        }
        state.reported_compile["hits"] = compile_info["hits"]
        state.reported_compile["misses"] = compile_info["misses"]
        telemetry["compile_size"] = compile_info["size"]
    rows = [
        (genome.key, fitness, length)
        for genome, fitness, length in zip(genomes, fitnesses, lengths)
    ]
    return rows, telemetry


class FastCPUBackend(CPUBackend):
    """Vectorized + sharded + cached software evaluation (``cpu-fast``).

    Three optimizations over :class:`CPUBackend`, none of which change a
    single bit of any fitness value:

    1. **Vectorized inference** — each genome decodes once into a
       :class:`VectorizedNetwork`; the whole population's episodes run
       in lock-step through one :class:`PopulationEvaluator`, so a
       generation's forward passes cost a handful of NumPy ops per
       environment tick instead of a Python per-node loop per
       individual.
    2. **Sharding** — with ``workers > 1`` the population splits across
       a persistent ``multiprocessing`` pool.  Per-(genome, episode)
       seeding makes shard placement irrelevant to results.
    3. **Decode caching** — an LRU keyed on
       :meth:`Genome.structural_hash` carries elites' decoded networks
       and compiled HW configs across generations.

    Genomes whose plans cannot vectorize (exotic aggregations) fall back
    to the interpreted :func:`run_episode` path, which produces the same
    bits by construction.
    """

    name = "cpu-fast"

    #: below this many alive episodes, a lock-step tick dispatches to the
    #: interpreted nets instead of the population evaluator — the flat
    #: tensors' fixed per-tick cost only pays off on wide waves, and the
    #: two paths produce identical bits, so the crossover is pure tuning
    SMALL_WAVE = 12

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        inax_config: INAXConfig | None = None,
        env_kwargs: dict | None = None,
        workers: int = 0,
        cache_size: int = 512,
        fault_plan: FaultPlan | None = None,
        quarantine_penalty: float = DEFAULT_PENALTY,
        supervisor: SupervisorConfig | None = None,
        pipeline: PipelineConfig | None = None,
    ):
        """``workers`` > 1 shards evaluation across that many worker
        processes; 0 or 1 evaluates in-process.  ``cache_size`` bounds
        the decoded-network LRU (structural hashes -> decoded nets).
        ``supervisor`` tunes the shard watchdog/retry policy (a default
        :class:`SupervisorConfig` is used when omitted)."""
        super().__init__(
            env_name,
            neat_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
            inax_config=inax_config,
            env_kwargs=env_kwargs,
            fault_plan=fault_plan,
            quarantine_penalty=quarantine_penalty,
            pipeline=pipeline,
        )
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.supervisor_config = (
            supervisor if supervisor is not None else SupervisorConfig()
        )
        self._cache = _DecodeCache(cache_size)
        self._supervisor: ShardSupervisor | None = None
        #: worker-side phase seconds, merged back from every shard call
        #: (parallel CPU-seconds, not wall time — the parent's own
        #: "evaluate" wall span already covers the blocking map call)
        self.shard_profiler = PhaseProfiler()
        self._shard_cache = {"hits": 0, "misses": 0, "size": 0}
        #: latest reported cache size per shard slot (``shard=N`` parsed
        #: from the payload site); ``_shard_cache["size"]`` is their sum,
        #: so the aggregate is deterministic regardless of the order
        #: shard payloads arrive in
        self._shard_sizes: dict[str, int] = {}
        #: compile-cache deltas folded back from compiled shards (stays
        #: zero for plain ``cpu-fast`` workers, which have no compile
        #: cache)
        self._shard_compile = {"hits": 0, "misses": 0}
        self._shard_compile_sizes: dict[str, int] = {}

    # --------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Tear the worker pool down with a *bounded* join; idempotent.

        ``Pool.join`` has no timeout, so the supervisor joins on a
        daemon thread and gives up after ``join_timeout`` — a hung
        worker can never wedge interpreter shutdown.
        """
        if self._supervisor is not None:
            # keep the supervisor object: its counters/events survive
            # close() for end-of-run reporting, and close stays idempotent
            self._supervisor.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:  # repro: noqa[RES001] -- interpreter teardown
            pass

    def reset_run_state(self, base_seed: int | None = None) -> None:
        """Reset run accumulators; keep decode cache + worker pool warm.

        Cache *entries* survive (structural, content-keyed, bit-safe)
        but the hit/miss/warmed counters restart so the next run's
        cache stats cover only its own activity.  Worker-side sizes are
        still live (the pool persists), so the aggregate ``size`` stays
        truthful; worker deltas keep flowing against the workers' own
        cumulative reported counters, which the run boundary does not
        disturb.
        """
        super().reset_run_state(base_seed=base_seed)
        self._cache.hits = 0
        self._cache.misses = 0
        self._cache.warmed = 0
        self.shard_profiler = PhaseProfiler()
        self._shard_cache = {
            "hits": 0,
            "misses": 0,
            "size": sum(self._shard_sizes.values()),
        }
        self._shard_compile = {"hits": 0, "misses": 0}
        if self._supervisor is not None:
            # per-run resilience accounting; the pool itself stays warm
            self._supervisor.retries = 0
            self._supervisor.degraded_shards = 0
            self._supervisor.events = []

    def cache_info(self) -> dict[str, int]:
        """Decode-cache statistics: hits, misses, current size.

        With ``workers > 1`` the counts combine the parent cache with
        every worker shard's (workers report deltas back with each
        evaluated shard; ``size`` **sums each shard slot's most recent
        report**, so the aggregate is deterministic no matter what
        order payloads arrive in).  ``warmed`` counts entries built by
        :meth:`warm_caches` (resume warm-start), which are deliberately
        excluded from hits/misses.
        """
        return {
            "hits": self._cache.hits + self._shard_cache["hits"],
            "misses": self._cache.misses + self._shard_cache["misses"],
            "size": len(self._cache) + self._shard_cache["size"],
            "warmed": self._cache.warmed,
        }

    def warm_caches(self, genomes: list[Genome]) -> int:
        built = 0
        for genome in genomes:
            if self._cache.warm(genome, self.neat_config):
                built += 1
        return built

    def reporter_columns(self) -> dict[str, float]:
        columns = super().reporter_columns()
        if self.workers > 1:
            supervisor = self._supervisor
            columns["shard_retries"] = (
                float(supervisor.retries) if supervisor is not None else 0.0
            )
            columns["shard_degraded"] = (
                float(supervisor.degraded_shards)
                if supervisor is not None
                else 0.0
            )
        return columns

    def resilience_log(self) -> list[dict]:
        events = super().resilience_log()
        if self._supervisor is not None:
            events.extend(e.to_dict() for e in self._supervisor.events)
        return events

    # -------------------------------------------------------- evaluation
    def _evaluate(self, genomes: list[Genome]) -> None:
        with _span("fastcpu.decode", genomes=len(genomes)):
            decoded = [self._cache.get(g, self.neat_config) for g in genomes]
        configs = [d.config for d in decoded]
        if self.workers > 1 and len(genomes) > 1:
            fitnesses, lengths = self._fitness_sharded(genomes)
        else:
            fitnesses, lengths = self._fitness_for(genomes, decoded)
        for genome, fitness in zip(genomes, fitnesses):
            genome.fitness = fitness
        self._publish_metrics()
        self._record(configs, lengths, keys=[g.key for g in genomes])

    def _publish_metrics(self) -> None:
        registry = get_metrics()
        if registry is None:
            return
        info = self.cache_info()
        registry.gauge("fastcpu.cache.hits").set(info["hits"])
        registry.gauge("fastcpu.cache.misses").set(info["misses"])
        registry.gauge("fastcpu.cache.size").set(info["size"])

    def _fitness_for(
        self,
        genomes: list[Genome],
        decoded: list[_Decoded] | None = None,
    ) -> tuple[list[float], list[int]]:
        """Evaluate ``genomes`` in-process; returns (fitnesses, lengths).

        Reward/step accumulation mirrors :class:`CPUBackend` exactly:
        per-episode totals in step order, summed in episode order, then
        one division — so the resulting floats are bit-identical.
        """
        if decoded is None:
            decoded = [self._cache.get(g, self.neat_config) for g in genomes]
        episodes = self.episodes_per_genome

        vector_ids = [i for i, d in enumerate(decoded) if d.vnet is not None]
        records: dict[tuple[int, int], object] = {}
        if vector_ids:
            slots: list[tuple[int, int]] = [
                (i, episode)
                for i in vector_ids
                for episode in range(episodes)
            ]
            envs = [self._make_env() for _ in slots]
            seeds = [
                self._episode_seed(genomes[i], episode)
                for i, episode in slots
            ]
            evaluator = PopulationEvaluator(
                [decoded[i].vnet for i, _ in slots]
            )
            interpreted = [decoded[i].net for i, _ in slots]

            def infer(observations):
                if len(observations) >= self.SMALL_WAVE:
                    return evaluator.infer(observations)
                return {
                    m: interpreted[m].activate(obs)
                    for m, obs in observations.items()
                }

            for slot, record in zip(
                slots, run_lockstep(envs, infer, seeds=seeds)
            ):
                records[slot] = record

        fitnesses: list[float] = []
        lengths: list[int] = []
        for i, genome in enumerate(genomes):
            total_reward = 0.0
            total_steps = 0
            for episode in range(episodes):
                record = records.get((i, episode))
                if record is None:  # non-vectorizable genome: reference path
                    record = run_episode(
                        self._make_env(),
                        decoded[i].net,
                        seed=self._episode_seed(genome, episode),
                    )
                total_reward += record.total_reward
                total_steps += record.steps
            fitnesses.append(total_reward / episodes)
            lengths.append(total_steps)
        return fitnesses, lengths

    def _make_pool(self):
        """Build a fresh initialized worker pool (supervisor factory)."""
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        return context.Pool(
            self.workers,
            initializer=_fastcpu_worker_init,
            initargs=(
                self.env_name,
                self.neat_config,
                self.episodes_per_genome,
                self.base_seed,
                self.env_kwargs,
                self._cache.capacity,
                self.fault_plan,
                type(self),
            ),
        )

    def _shard_fallback(
        self, genomes: list[Genome], site: str = ""
    ) -> tuple[list, dict]:
        """In-process degradation: worker-shaped result, identical bits.

        The per-(genome, episode) seeding contract means this produces
        exactly the floats the dead shard would have — degradation is
        invisible in the fitness trajectory.  Cache activity lands on
        the parent's own cache (counted by :meth:`cache_info` already),
        so the telemetry payload carries zero deltas.
        """
        fitnesses, lengths = self._fitness_for(genomes)
        rows = [
            (genome.key, fitness, length)
            for genome, fitness, length in zip(genomes, fitnesses, lengths)
        ]
        telemetry = {
            "site": site,
            "phase_seconds": {},
            "cache_delta": {"hits": 0, "misses": 0},
            "cache_size": 0,
            "genomes": len(genomes),
            "metrics": None,
        }
        return rows, telemetry

    def _fitness_sharded(
        self, genomes: list[Genome]
    ) -> tuple[list[float], list[int]]:
        """Shard the population across the supervised worker pool.

        The :class:`ShardSupervisor` watches each shard with a timeout,
        retries failures on a respawned pool with backoff, degrades to
        :meth:`_shard_fallback` after ``max_retries``, and disables
        sharding entirely after ``disable_after`` consecutive degraded
        generations — the generation always completes, bit-identically.
        """
        if self._supervisor is None:
            self._supervisor = ShardSupervisor(
                self._make_pool,
                _fastcpu_worker_evaluate,
                self.supervisor_config,
            )
        supervisor = self._supervisor
        if supervisor.disabled:
            return self._fitness_for(genomes)
        shards = [
            shard
            for shard in (
                genomes[i :: self.workers] for i in range(self.workers)
            )
            if shard
        ]
        want_metrics = get_metrics() is not None
        generation = self._generation

        def build_task(index: int, attempt: int):
            site = f"gen={generation}|shard={index}|attempt={attempt}"
            return (shards[index], want_metrics, site)

        def fallback(index: int):
            return self._shard_fallback(
                shards[index], site=f"gen={generation}|shard={index}|fallback"
            )

        results = supervisor.run(
            len(shards),
            build_task,
            fallback,
            site_prefix=f"gen={generation}|",
        )
        merged: dict[int, tuple[float, int]] = {}
        payloads: list[dict] = []
        for shard_rows, shard_telemetry in results:
            for key, fitness, length in shard_rows:
                merged[key] = (fitness, length)
            payloads.append(shard_telemetry)
        self._merge_shard_telemetry(payloads)
        fitnesses = [merged[g.key][0] for g in genomes]
        lengths = [merged[g.key][1] for g in genomes]
        return fitnesses, lengths

    def _merge_shard_telemetry(self, payloads: list[dict]) -> None:
        """Fold worker-side telemetry into the parent's accumulators.

        Phase seconds merge into :attr:`shard_profiler` (so
        ``fractions()`` over worker CPU time is available next to the
        population's wall-clock profile instead of being lost), cache
        deltas into the combined :meth:`cache_info`, and — when a
        metrics registry is installed — counters/histograms for the
        shard workload.

        The merge is *idempotent per site*: each payload carries the
        unique ``gen|shard|attempt`` site it was produced under, and a
        site is folded in at most once — a crashed-then-respawned
        worker's retry has a fresh attempt index, while any duplicate
        delivery of the same payload is dropped instead of double
        counting cache/metric deltas.

        Cache *sizes* (unlike deltas) are absolute snapshots, so they
        aggregate as the **sum over shard slots of each slot's most
        recent report** — never by folding payloads in arrival order,
        which made the reported size jitter with delivery order.
        Fallback payloads (site ``...|fallback``) leave the slot's size
        untouched: degradation ran in-parent, so the dead worker's
        cache did not change.  Siteless legacy payloads share one
        anonymous slot.
        """
        registry = get_metrics()
        seen_sites: set[str] = set()
        for payload in payloads:
            site = payload.get("site") or ""
            if site:
                if site in seen_sites:
                    continue
                seen_sites.add(site)
            shard = PhaseProfiler()
            for phase, seconds in payload["phase_seconds"].items():
                shard.record(phase, seconds)
            self.shard_profiler.merge(shard)
            self._shard_cache["hits"] += payload["cache_delta"]["hits"]
            self._shard_cache["misses"] += payload["cache_delta"]["misses"]
            compile_delta = payload.get("compile_delta")
            if compile_delta is not None:
                self._shard_compile["hits"] += compile_delta["hits"]
                self._shard_compile["misses"] += compile_delta["misses"]
            if not site or "attempt=" in site.split("|")[-1]:
                slot = _shard_slot(site)
                self._shard_sizes[slot] = payload["cache_size"]
                if "compile_size" in payload:
                    self._shard_compile_sizes[slot] = payload["compile_size"]
            if registry is not None:
                registry.counter("fastcpu.shard.evaluate_seconds").inc(
                    payload["phase_seconds"].get("evaluate", 0.0)
                )
                registry.histogram("fastcpu.shard.genomes").observe(
                    payload["genomes"]
                )
                if payload.get("metrics"):
                    registry.merge_snapshot(payload["metrics"])
        self._shard_cache["size"] = sum(self._shard_sizes.values())


class CompiledCPUBackend(FastCPUBackend):
    """Structural-batching software evaluation (``cpu-compiled``).

    Where ``cpu-fast`` decodes every genome whose *weighted* structural
    hash is new — i.e. the weight-mutated bulk of every generation —
    this backend buckets genomes by the weights-excluded
    :meth:`Genome.shape_key` and compiles each shape **once** into a
    :class:`~repro.compile.CompiledStructure` held in a
    cross-generation :class:`~repro.compile.CompileCache`.  A
    generation's members then become stacked weight/bias tensors over
    the shared plans (:class:`~repro.compile.CompiledPopulationEvaluator`),
    so a bucket advances one lock-step env step in a single batched
    matmul, and steady-state generations compile almost nothing.

    The arithmetic is the same flattened engine ``cpu-fast`` uses —
    identical term order, identical activation kernels — and the HW
    configs lower through the shapes' fill recipes to exactly what
    :func:`compile_genome` produces, so fitness trajectories and
    workload records are bit-identical to ``cpu``/``cpu-fast``.
    Non-vectorizable shapes (exotic aggregations) fall back to the
    interpreted reference path, which produces the same bits by
    construction.  Sharding, supervision, and fault semantics are
    inherited unchanged; shards run the compiled path with their own
    compile caches and report deltas like the decode cache does.
    """

    name = "cpu-compiled"

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        inax_config: INAXConfig | None = None,
        env_kwargs: dict | None = None,
        workers: int = 0,
        cache_size: int = 512,
        fault_plan: FaultPlan | None = None,
        quarantine_penalty: float = DEFAULT_PENALTY,
        supervisor: SupervisorConfig | None = None,
        pipeline: PipelineConfig | None = None,
    ):
        """``cache_size`` bounds the shape-keyed compile cache (shapes
        are far fewer than weighted structural hashes, so the same
        capacity goes much further than the decode LRU's)."""
        super().__init__(
            env_name,
            neat_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
            inax_config=inax_config,
            env_kwargs=env_kwargs,
            workers=workers,
            cache_size=cache_size,
            fault_plan=fault_plan,
            quarantine_penalty=quarantine_penalty,
            supervisor=supervisor,
            pipeline=pipeline,
        )
        self._compile_cache = CompileCache(cache_size)

    def reset_run_state(self, base_seed: int | None = None) -> None:
        super().reset_run_state(base_seed=base_seed)
        # compiled structures survive across leased runs; counters don't
        self._compile_cache.hits = 0
        self._compile_cache.misses = 0
        self._compile_cache.warmed = 0

    # ------------------------------------------------------------- stats
    def compile_cache_info(self) -> dict[str, int]:
        """Compile-cache statistics, shaped like :meth:`cache_info`.

        With ``workers > 1`` the counts combine the parent cache with
        every compiled shard's (deltas per payload; ``size`` sums each
        shard slot's most recent report, like the decode cache).
        """
        info = self._compile_cache.info()
        return {
            "hits": info["hits"] + self._shard_compile["hits"],
            "misses": info["misses"] + self._shard_compile["misses"],
            "size": info["size"] + sum(self._shard_compile_sizes.values()),
            "warmed": info["warmed"],
        }

    def warm_caches(self, genomes: list[Genome]) -> int:
        # the decode LRU is unused here; the compile cache is the
        # structural cache that must survive a resume
        built = 0
        for genome in genomes:
            if self._compile_cache.warm(genome, self.neat_config):
                built += 1
        return built

    def _publish_metrics(self) -> None:
        super()._publish_metrics()
        registry = get_metrics()
        if registry is None:
            return
        info = self.compile_cache_info()
        registry.gauge("compile.cache.hits").set(info["hits"])
        registry.gauge("compile.cache.misses").set(info["misses"])
        registry.gauge("compile.cache.size").set(info["size"])

    # -------------------------------------------------------- evaluation
    def _evaluate(self, genomes: list[Genome]) -> None:
        with _span("compile.lookup", genomes=len(genomes)):
            entries = [
                self._compile_cache.get(g, self.neat_config) for g in genomes
            ]
        # workload records lower through the fill recipes — equal to
        # compile_genome() field for field, without re-running CreateNet
        configs = [
            entry.hw_config(genome)
            for entry, genome in zip(entries, genomes)
        ]
        if self.workers > 1 and len(genomes) > 1:
            fitnesses, lengths = self._fitness_sharded(genomes)
        else:
            fitnesses, lengths = self._fitness_for(genomes, entries=entries)
        for genome, fitness in zip(genomes, fitnesses):
            genome.fitness = fitness
        self._publish_metrics()
        self._record(configs, lengths, keys=[g.key for g in genomes])

    def _fitness_for(
        self,
        genomes: list[Genome],
        decoded: list[_Decoded] | None = None,
        entries=None,
    ) -> tuple[list[float], list[int]]:
        """Compiled in-process evaluation; returns (fitnesses, lengths).

        ``decoded`` is accepted (and ignored) for signature parity with
        the sharded driver; the compiled path derives everything from
        the compile cache.
        """
        if entries is None:
            entries = [
                self._compile_cache.get(g, self.neat_config) for g in genomes
            ]
        episodes = self.episodes_per_genome

        vector_ids = [
            i for i, entry in enumerate(entries) if entry.plan is not None
        ]
        records: dict[tuple[int, int], object] = {}
        if vector_ids:
            slots = [
                (i, episode)
                for i in vector_ids
                for episode in range(episodes)
            ]
            envs = [self._make_env() for _ in slots]
            seeds = [
                self._episode_seed(genomes[i], episode)
                for i, episode in slots
            ]
            buckets = len({id(entries[i]) for i, _ in slots})
            with _span(
                "compile.batch_step", slots=len(slots), buckets=buckets
            ):
                evaluator = CompiledPopulationEvaluator(
                    [(entries[i], genomes[i]) for i, _ in slots]
                )
                for slot, record in zip(
                    slots, run_lockstep(envs, evaluator.infer, seeds=seeds)
                ):
                    records[slot] = record

        fitnesses: list[float] = []
        lengths: list[int] = []
        interpreted: dict[int, FeedForwardNetwork] = {}
        for i, genome in enumerate(genomes):
            total_reward = 0.0
            total_steps = 0
            for episode in range(episodes):
                record = records.get((i, episode))
                if record is None:  # non-vectorizable shape: reference path
                    net = interpreted.get(i)
                    if net is None:
                        net = FeedForwardNetwork.create(
                            genome, self.neat_config
                        )
                        interpreted[i] = net
                    record = run_episode(
                        self._make_env(),
                        net,
                        seed=self._episode_seed(genome, episode),
                    )
                total_reward += record.total_reward
                total_steps += record.steps
            fitnesses.append(total_reward / episodes)
            lengths.append(total_steps)
        return fitnesses, lengths


class INAXBackend(EvaluationBackend):
    """HW/SW co-designed evaluation on the functional INAX device.

    Episodes run in lock-step across a wave of PUs: each synchronized
    device step infers every still-alive individual, then the CPU steps
    each individual's environment with the decoded action.  Early
    terminations drop out of subsequent steps (the §V-B2 idle-PU
    effect), and the device's cycle report reflects it.  The wave loop
    itself is the shared :func:`run_lockstep` driver with the device as
    the inference function.
    """

    name = "inax"

    def __init__(
        self,
        env_name: str,
        neat_config: NEATConfig,
        inax_config: INAXConfig | None = None,
        episodes_per_genome: int = 1,
        base_seed: int = 0,
        env_kwargs: dict | None = None,
        oversize_policy: str = "raise",
        oversize_penalty: float = -1e9,
        fallback: str | None = None,
        fault_plan: FaultPlan | None = None,
        quarantine_penalty: float = DEFAULT_PENALTY,
        pipeline: PipelineConfig | None = None,
    ):
        """``oversize_policy`` decides what happens when an evolved
        genome no longer fits the PUs' weight/value buffers (a real
        failure mode once buffer capacities are finite): ``"raise"``
        aborts the run; ``"penalize"`` assigns ``oversize_penalty`` as
        the fitness without evaluating, so selection prunes oversized
        topologies — the resource pressure a deployed E3 would apply.

        ``fallback`` (``"cpu-fast"`` or ``"cpu"``) arms graceful
        degradation: a wave that hits a device fault
        (:class:`DeviceFault`, :class:`BufferOverflowError`) re-runs on
        the bit-identical software path instead of aborting, and an
        oversized genome under ``oversize_policy="raise"`` is evaluated
        in software rather than killing the run.  :attr:`oversize_count`
        is cumulative over the backend's lifetime — it is never reset,
        so per-generation deltas come from successive reporter rows."""
        if oversize_policy not in ("raise", "penalize"):
            raise ValueError(
                f"unknown oversize_policy {oversize_policy!r}; "
                "use 'raise' or 'penalize'"
            )
        if fallback not in (None, "cpu-fast", "cpu"):
            raise ValueError(
                f"unknown fallback {fallback!r}; use 'cpu-fast', 'cpu', "
                "or None"
            )
        inax_config = inax_config or INAXConfig()
        super().__init__(
            env_name,
            neat_config,
            episodes_per_genome=episodes_per_genome,
            base_seed=base_seed,
            inax_config=inax_config,
            env_kwargs=env_kwargs,
            fault_plan=fault_plan,
            quarantine_penalty=quarantine_penalty,
            pipeline=pipeline,
        )
        injector = (
            DeviceFaultInjector(fault_plan)
            if fault_plan is not None and has_device_faults(fault_plan)
            else None
        )
        self.device = INAX(inax_config, fault_injector=injector)
        self.oversize_policy = oversize_policy
        self.oversize_penalty = oversize_penalty
        self.oversize_count = 0
        self.fallback = fallback
        self.fallback_waves = 0
        self.fallback_genomes = 0

    def reset_run_state(self, base_seed: int | None = None) -> None:
        super().reset_run_state(base_seed=base_seed)
        # the device itself carries no cross-generation run state (its
        # report resets per wave batch); only the gate/fallback tallies do
        self.oversize_count = 0
        self.fallback_waves = 0
        self.fallback_genomes = 0

    def _fits_buffers(self, config: HWNetConfig) -> bool:
        limits = self.inax_config
        if (
            limits.weight_buffer_capacity is not None
            and config.weight_buffer_words > limits.weight_buffer_capacity
        ):
            return False
        if (
            limits.value_buffer_capacity is not None
            and config.value_buffer_words > limits.value_buffer_capacity
        ):
            return False
        return True

    def _gate_oversize(
        self, genomes: list[Genome]
    ) -> tuple[list[Genome], list[HWNetConfig]]:
        """Compile and apply the buffer-capacity gate (§IV-D).

        Returns the runnable (genome, config) subset; oversized genomes
        are resolved here (software fallback or penalty) per
        ``oversize_policy``.
        """
        all_configs = [compile_genome(g, self.neat_config) for g in genomes]
        runnable: list[Genome] = []
        configs: list[HWNetConfig] = []
        for genome, config in zip(genomes, all_configs):
            if self._fits_buffers(config):
                runnable.append(genome)
                configs.append(config)
                continue
            site = f"gen={self._generation}|genome={genome.key}"
            if self.oversize_policy == "raise" and self.fallback is None:
                raise BufferOverflowError(
                    f"genome {genome.key} needs {config.weight_buffer_words} "
                    "weight-buffer words; raise the capacity or use "
                    "oversize_policy='penalize'"
                )
            self.oversize_count += 1
            self._publish_oversize()
            if self.oversize_policy == "raise":
                # degradation ladder: an unrunnable genome evaluates in
                # software instead of aborting the whole run
                genome.fitness = self._software_fitness(genome)
                self.fallback_genomes += 1
                self._event(
                    "fallback.oversize", site,
                    weight_words=config.weight_buffer_words,
                )
            else:
                genome.fitness = self.oversize_penalty
                self._event(
                    "inax.oversize", site,
                    penalty=self.oversize_penalty,
                )
        return runnable, configs

    def _evaluate(self, genomes: list[Genome]) -> None:
        assert self.inax_config is not None
        # buffer-capacity gate (§IV-D: finite weight/value buffers)
        runnable, configs = self._gate_oversize(genomes)

        lengths = [0] * len(runnable)
        rewards = [0.0] * len(runnable)
        num_pus = self.inax_config.num_pus
        keys = [g.key for g in runnable]

        # wave packing happens *before* evaluation, off last-generation
        # episode lengths — exactly what the analytic scheduler replays
        with _span("inax.pack", genomes=len(runnable)):
            predicted = self._predict_costs(configs, keys)
            waves = pack_waves(
                predicted
                if predicted is not None
                else [None] * len(runnable),
                num_pus,
                self.pipeline.schedule,
            )

        self.device.reset_report()
        dispatched = 0
        for indices in waves:
            wave_genomes = [runnable[i] for i in indices]
            wave_configs = [configs[i] for i in indices]
            for episode in range(self.episodes_per_genome):
                prefetched = self.pipeline.prefetch and dispatched > 0
                self._run_wave_episode(
                    indices,
                    wave_genomes,
                    wave_configs,
                    episode,
                    lengths,
                    rewards,
                    prefetched=prefetched,
                )
                dispatched += 1

        for genome, reward in zip(runnable, rewards):
            genome.fitness = reward / self.episodes_per_genome
        record = self._record(
            configs,
            lengths,
            keys=keys,
            predicted_costs=predicted,
            analytic=False,
        )
        # the functional device's own report supersedes the analytic one
        record.cycle_report = self.device.report
        self._publish_cycle_gauges(record.cycle_report)

    def _publish_cycle_gauges(self, report) -> None:
        """Per-generation pipeline gauges (watchtower detector inputs)."""
        registry = get_metrics()
        if registry is None:
            return
        registry.gauge("inax.wave_occupancy").set(report.packing_efficiency)
        registry.gauge("inax.waves").set(float(report.waves))
        registry.gauge("inax.setup_cycles").set(report.setup_cycles)
        registry.gauge("inax.prefetch_hidden_cycles").set(
            report.prefetch_hidden_cycles
        )

    def _publish_oversize(self) -> None:
        registry = get_metrics()
        if registry is not None:
            registry.counter("inax.oversize.count").inc()

    def reporter_columns(self) -> dict[str, float]:
        columns = super().reporter_columns()
        columns["oversize"] = float(self.oversize_count)
        # count-based wave occupancy of the generation just evaluated —
        # the knob the LPT packer moves (the device report was reset at
        # the top of this generation's _evaluate, so this is per-gen)
        columns["pack_eff"] = self.device.report.packing_efficiency
        if self.fallback is not None:
            columns["fallback_waves"] = float(self.fallback_waves)
        return columns

    def _software_fitness(self, genome: Genome) -> float:
        """All-episode software evaluation (oversize degradation path)."""
        net = FeedForwardNetwork.create(genome, self.neat_config)
        total_reward = 0.0
        for episode in range(self.episodes_per_genome):
            record = run_episode(
                self._make_env(),
                net,
                seed=self._episode_seed(genome, episode),
            )
            total_reward += record.total_reward
        return total_reward / self.episodes_per_genome

    def _fallback_wave_episode(self, genomes: list[Genome], episode: int):
        """Re-run one wave's episode on the software path.

        Fresh envs + the same per-(genome, episode) seeds make this
        bit-identical to what the device would have produced (the
        backend-parity contract), no matter how far the faulted wave
        got.  ``fallback="cpu-fast"`` uses the vectorized evaluator
        when every genome vectorizes; otherwise — and for
        ``fallback="cpu"`` — the interpreted per-node path runs.
        """
        envs = [self._make_env() for _ in genomes]
        seeds = [self._episode_seed(genome, episode) for genome in genomes]
        nets = [
            FeedForwardNetwork.create(genome, self.neat_config)
            for genome in genomes
        ]
        if self.fallback == "cpu-fast":
            vnets = []
            for net in nets:
                try:
                    vnets.append(VectorizedNetwork(net))
                except ValueError:
                    vnets.append(None)
            if all(vnet is not None for vnet in vnets):
                evaluator = PopulationEvaluator(vnets)
                return run_lockstep(envs, evaluator.infer, seeds=seeds)

        def infer(observations):
            return {
                slot: nets[slot].activate(obs)
                for slot, obs in observations.items()
            }

        return run_lockstep(envs, infer, seeds=seeds)

    def _device_wave_episode(
        self,
        device: INAX,
        genomes: list[Genome],
        configs: list[HWNetConfig],
        episode: int,
        prefetched: bool = False,
    ):
        """One wave's episode on one device; raises on device faults.

        The fresh-env + per-(genome, episode) seed discipline lives
        here, so any device (the single INAX or any fabric farm member)
        produces bit-identical episode records for the same wave.
        """
        device.begin_wave(configs, prefetched=prefetched)
        envs = [self._make_env() for _ in genomes]
        seeds = [self._episode_seed(genome, episode) for genome in genomes]
        episode_records = run_lockstep(envs, device.step, seeds=seeds)
        device.end_wave()
        return episode_records

    def _run_wave_episode(
        self,
        indices: list[int],
        genomes: list[Genome],
        configs: list[HWNetConfig],
        episode: int,
        lengths: list[int],
        rewards: list[float],
        prefetched: bool = False,
    ) -> None:
        """Run one wave's episode; ``indices`` maps wave slot ->
        population index, so any packing order lands results on the
        right individual."""
        try:
            episode_records = self._device_wave_episode(
                self.device, genomes, configs, episode, prefetched=prefetched
            )
        except (DeviceFault, BufferOverflowError) as error:
            self.device.abort_wave()
            if self.fallback is None:
                raise
            self.fallback_waves += 1
            self.fallback_genomes += len(genomes)
            self._event(
                "fallback.wave",
                f"gen={self._generation}|offset={indices[0]}|episode={episode}",
                error=type(error).__name__,
                genomes=len(genomes),
            )
            episode_records = self._fallback_wave_episode(genomes, episode)
        for slot, record in enumerate(episode_records):
            rewards[indices[slot]] += record.total_reward
            lengths[indices[slot]] += record.steps


#: CLI/platform name -> backend class, for everything that selects a
#: backend by string.
BACKENDS: dict[str, type[EvaluationBackend]] = {
    "cpu": CPUBackend,
    "cpu-fast": FastCPUBackend,
    "cpu-compiled": CompiledCPUBackend,
    "gpu": GPUBackend,
    "inax": INAXBackend,
}
