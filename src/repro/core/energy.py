"""Energy accounting (Fig 10(a)).

Energy = sum over phases of (phase power x phase seconds).  Each
platform assigns different power to the "evaluate" phase (that is where
the platforms differ); env/CreateNet/evolve always run on a CPU.

The E3-INAX preset prices its host phases at the desktop-CPU power by
default, matching the paper's measurement setup (the SW program ran on
the desktop i7 even in the E3-INAX configuration); an edge preset with
the ZCU104's ARM cores is provided for the deployment scenario the
intro motivates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import calibration as cal
from repro.hw.cpu_model import PhaseTimes

__all__ = ["PhasePower", "EnergyReport", "energy_report", "PLATFORM_POWER"]


@dataclass(frozen=True)
class PhasePower:
    """Watts per E3 phase."""

    evaluate: float
    env: float
    createnet: float
    evolve: float


#: Per-platform phase power presets (see module docstring).
PLATFORM_POWER: dict[str, PhasePower] = {
    "cpu": PhasePower(
        evaluate=cal.CPU_POWER_WATTS,
        env=cal.CPU_POWER_WATTS,
        createnet=cal.CPU_POWER_WATTS,
        evolve=cal.CPU_POWER_WATTS,
    ),
    "gpu": PhasePower(
        evaluate=cal.GPU_PLATFORM_POWER_WATTS,
        env=cal.CPU_POWER_WATTS,
        createnet=cal.CPU_POWER_WATTS,
        evolve=cal.CPU_POWER_WATTS,
    ),
    "inax": PhasePower(
        evaluate=cal.FPGA_POWER_WATTS,
        env=cal.CPU_POWER_WATTS,
        createnet=cal.CPU_POWER_WATTS,
        evolve=cal.CPU_POWER_WATTS,
    ),
    "inax-edge": PhasePower(
        evaluate=cal.FPGA_POWER_WATTS,
        env=cal.EDGE_CPU_POWER_WATTS,
        createnet=cal.EDGE_CPU_POWER_WATTS,
        evolve=cal.EDGE_CPU_POWER_WATTS,
    ),
}


@dataclass
class EnergyReport:
    """Joules per phase plus the total."""

    evaluate: float
    env: float
    createnet: float
    evolve: float

    @property
    def total(self) -> float:
        return self.evaluate + self.env + self.createnet + self.evolve

    def fractions(self) -> dict[str, float]:
        total = self.total or 1.0
        return {
            "evaluate": self.evaluate / total,
            "env": self.env / total,
            "createnet": self.createnet / total,
            "evolve": self.evolve / total,
        }


def energy_report(times: PhaseTimes, power: PhasePower | str) -> EnergyReport:
    """Integrate phase times against phase powers.

    ``power`` may be a preset name from :data:`PLATFORM_POWER`.
    """
    if isinstance(power, str):
        try:
            power = PLATFORM_POWER[power]
        except KeyError:
            known = ", ".join(sorted(PLATFORM_POWER))
            raise KeyError(
                f"unknown power preset {power!r}; known: {known}"
            ) from None
    return EnergyReport(
        evaluate=times.evaluate * power.evaluate,
        env=times.env * power.env,
        createnet=times.createnet * power.createnet,
        evolve=times.evolve * power.evolve,
    )
