"""E3 core: the paper's primary contribution, assembled.

``E3`` runs the closed evaluate/evolve loop with a pluggable evaluation
backend (software CPU or the functional INAX device);
``run_experiment`` prices a finished run on the E3-CPU / E3-GPU /
E3-INAX platform models, producing the Fig 9/10 comparisons.
"""

from repro.core.backends import (
    BACKENDS,
    CPUBackend,
    EvaluationBackend,
    FastCPUBackend,
    GPUBackend,
    GenerationRecord,
    INAXBackend,
)
from repro.core.energy import (
    EnergyReport,
    PhasePower,
    PLATFORM_POWER,
    energy_report,
)
from repro.core.experiment import (
    ExperimentResult,
    PlatformResult,
    cpu_model_for,
    price_run,
    run_experiment,
)
from repro.core.platform import E3, E3RunResult, default_inax_config
from repro.core.profiler import PhaseProfiler
from repro.core.suite import (
    BENCH_SETTINGS,
    PAPER_SETTINGS,
    SuiteSettings,
    run_suite,
)
from repro.core.results import (
    format_breakdown,
    format_seconds,
    format_table,
    to_json,
)

__all__ = [
    "BACKENDS",
    "BENCH_SETTINGS",
    "CPUBackend",
    "E3",
    "E3RunResult",
    "EnergyReport",
    "EvaluationBackend",
    "ExperimentResult",
    "FastCPUBackend",
    "GPUBackend",
    "GenerationRecord",
    "INAXBackend",
    "PLATFORM_POWER",
    "PhasePower",
    "PAPER_SETTINGS",
    "PhaseProfiler",
    "PlatformResult",
    "cpu_model_for",
    "default_inax_config",
    "energy_report",
    "format_breakdown",
    "format_seconds",
    "format_table",
    "price_run",
    "SuiteSettings",
    "run_experiment",
    "run_suite",
    "to_json",
]
