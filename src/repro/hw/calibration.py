"""Calibration constants for the platform cost models.

The paper measured wall-clock seconds on a desktop i7 (SW), a GTX 1080
(GPU reference), and a ZCU104 FPGA (INAX) — hardware this offline
reproduction does not have.  Instead, every platform's runtime is a
*cost model* over the same workload counts (environment steps, MACs,
genome sizes, accelerator cycles), and all free constants live here.

The constants were set **once**, from first principles (interpreted
per-node dispatch ~ microseconds, framework dispatch on a dynamic GPU
graph ~ milliseconds, 200 MHz FPGA fabric clock, published package
powers), then cross-checked against the paper's own ratios (E3-CPU
runtime column of Fig 9(b), the ~60%/~97% profile splits, the 30x /
71x / 97% headlines) and never tuned per-experiment.  Absolute seconds
are not expected to match the authors' testbed; EXPERIMENTS.md records
paper-vs-measured for every figure.

Derivations
-----------
* neat-python's ``activate`` walks per-node Python lists and dicts:
  ~8 us per node and ~2 us per connection at ~2.3 GHz, plus ~20 us of
  call marshalling — an evolved 10-node/20-connection network costs
  ~140 us per inference, which against a ~4 us NumPy env step gives the
  ~30:1 evaluate:env ratio Fig 1(b) implies.
* a GPU "evaluate" of a NEAT genome cannot use a static batched graph
  (every individual's topology differs and changes each generation), so
  each step pays framework dispatch on a freshly-wired dynamic graph
  (~2.5 ms, TF-session / per-node-kernel class) plus PCIe latency —
  matching Fig 9(b), where E3-GPU is ~20-40x *slower* than E3-CPU.
"""

from __future__ import annotations

__all__ = [
    "FPGA_CLOCK_HZ",
    "CPU_SECONDS_PER_MAC",
    "CPU_SECONDS_PER_NODE",
    "CPU_SECONDS_PER_ACTIVATE_CALL",
    "CPU_SECONDS_PER_ENV_STEP",
    "ENV_STEP_SECONDS",
    "CPU_SECONDS_PER_GENOME_EVOLVE",
    "CPU_SECONDS_PER_CONN_CREATENET",
    "GPU_DISPATCH_SECONDS",
    "GPU_KERNEL_LAUNCH_SECONDS",
    "GPU_TRANSFER_SECONDS_PER_BYTE",
    "GPU_SECONDS_PER_MAC",
    "CPU_POWER_WATTS",
    "GPU_PLATFORM_POWER_WATTS",
    "FPGA_POWER_WATTS",
    "EDGE_CPU_POWER_WATTS",
]

# ------------------------------------------------------------------ clocks
#: INAX fabric clock on the ZCU104 (typical timing closure for a 16 nm
#: UltraScale+ dataflow design).
FPGA_CLOCK_HZ: float = 200e6

# ----------------------------------------------------------- CPU (python)
# The paper's SW baseline is neat-python [25]: an interpreted, per-node
# dict-driven forward pass.
CPU_SECONDS_PER_MAC: float = 2.0e-6
CPU_SECONDS_PER_NODE: float = 8.0e-6
#: fixed overhead per activate() call (argument marshalling, list setup)
CPU_SECONDS_PER_ACTIVATE_CALL: float = 2.0e-5
#: one env.step() of a Gym classic-control task (NumPy-backed)
CPU_SECONDS_PER_ENV_STEP: float = 4.0e-6

#: per-environment env.step() costs: the two Box2D tasks pay a contact
#: solver per step, classic control is a handful of NumPy ops
ENV_STEP_SECONDS: dict[str, float] = {
    "cartpole": 3.0e-6,
    "acrobot": 8.0e-6,  # RK4 integration
    "mountain_car": 3.0e-6,
    "bipedal_walker": 5.0e-5,  # Box2D articulated contact solve
    "lunar_lander": 2.5e-5,  # Box2D rigid body + contacts
    "pendulum": 4.0e-6,
    "pong": 1.0e-5,  # ALE-class emulator step
    "mountain_car_continuous": 3.0e-6,
}
#: evolve-side cost per genome per generation (mutation, crossover,
#: speciation distance computations), amortized
CPU_SECONDS_PER_GENOME_EVOLVE: float = 1.0e-4
#: CreateNet cost per connection (dependency solve + decode)
CPU_SECONDS_PER_CONN_CREATENET: float = 2.0e-6

# ------------------------------------------------------------------- GPU
# NEAT is "generally not efficient on GPUs [36], because of small batch
# size and dynamic topology" (§VI-A): every individual is its own tiny
# dynamic graph, so framework dispatch dominates.
GPU_DISPATCH_SECONDS: float = 2.5e-3  # per individual per env step
GPU_KERNEL_LAUNCH_SECONDS: float = 6.0e-5  # per layer kernel
GPU_TRANSFER_SECONDS_PER_BYTE: float = 1.0e-9  # ~1 GB/s effective PCIe
GPU_SECONDS_PER_MAC: float = 1.0e-9  # compute is never the bottleneck

# ------------------------------------------------------------------ power
#: desktop i7 package power under single-core CPython load
CPU_POWER_WATTS: float = 25.0
#: GTX 1080 board (non-idle, small-kernel regime) plus its host core
GPU_PLATFORM_POWER_WATTS: float = 95.0
#: ZCU104 programmable-logic power for the INAX design (Vivado
#: post-routing class estimate; the PS side is accounted separately)
FPGA_POWER_WATTS: float = 4.0
#: the ZCU104's embedded ARM cores running evolve + env in the E3 setting
EDGE_CPU_POWER_WATTS: float = 6.0
