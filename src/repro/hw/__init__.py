"""Platform cost models: CPU (E3-CPU), GPU (E3-GPU), FPGA (E3-INAX).

All three price the same :mod:`repro.hw.workload` records in seconds
and watts; the calibration constants live in
:mod:`repro.hw.calibration` and are documented there.
"""

from repro.hw import calibration
from repro.hw.bp_fpga_model import (
    BPAcceleratorSpec,
    estimate_bp_accelerator_resources,
)
from repro.hw.clan_model import CLANConfig, CLANModel, workers_needed_for_speedup
from repro.hw.cpu_model import CPUModel, PhaseTimes
from repro.hw.fpga_model import (
    FPGADevice,
    INAXPlatformModel,
    ResourceEstimate,
    ZCU104,
    estimate_fpga_power,
    estimate_inax_resources,
)
from repro.hw.gpu_model import GPUModel
from repro.hw.workload import GenerationWorkload, IndividualWork, RunWorkload

__all__ = [
    "BPAcceleratorSpec",
    "CLANConfig",
    "CLANModel",
    "CPUModel",
    "FPGADevice",
    "GPUModel",
    "GenerationWorkload",
    "INAXPlatformModel",
    "IndividualWork",
    "PhaseTimes",
    "ResourceEstimate",
    "RunWorkload",
    "ZCU104",
    "calibration",
    "estimate_bp_accelerator_resources",
    "estimate_fpga_power",
    "estimate_inax_resources",
    "workers_needed_for_speedup",
]
