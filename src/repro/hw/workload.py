"""Workload accounting shared by all platform cost models.

A *workload* is the platform-independent record of what one NEAT run
actually computed: per individual per generation, the decoded network's
size (MACs, nodes, layers, config words) and how many environment steps
its episode lasted.  The CPU, GPU, and INAX models each price the same
workload in seconds — that is what makes the Fig 9/10 comparisons
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.inax.compiler import HWNetConfig

__all__ = ["IndividualWork", "GenerationWorkload", "RunWorkload"]


@dataclass(frozen=True)
class IndividualWork:
    """One individual's evaluation workload in one generation."""

    macs: int
    nodes: int
    layers: int
    config_words: int
    num_inputs: int
    num_outputs: int
    steps: int

    @classmethod
    def from_config(cls, net: HWNetConfig, steps: int) -> "IndividualWork":
        return cls(
            macs=net.num_connections,
            nodes=net.num_nodes,
            layers=net.num_layers,
            config_words=net.config_words,
            num_inputs=net.num_inputs,
            num_outputs=net.num_outputs,
            steps=steps,
        )


@dataclass
class GenerationWorkload:
    """All individuals of one generation."""

    individuals: list[IndividualWork] = field(default_factory=list)

    @property
    def population_size(self) -> int:
        return len(self.individuals)

    @property
    def total_env_steps(self) -> int:
        return sum(w.steps for w in self.individuals)

    @property
    def total_inference_macs(self) -> int:
        return sum(w.steps * w.macs for w in self.individuals)

    @property
    def total_inference_nodes(self) -> int:
        return sum(w.steps * w.nodes for w in self.individuals)

    @property
    def total_config_words(self) -> int:
        return sum(w.config_words for w in self.individuals)


@dataclass
class RunWorkload:
    """A full run: one workload record per generation."""

    generations: list[GenerationWorkload] = field(default_factory=list)

    @property
    def num_generations(self) -> int:
        return len(self.generations)

    @property
    def total_env_steps(self) -> int:
        return sum(g.total_env_steps for g in self.generations)

    @property
    def total_inference_macs(self) -> int:
        return sum(g.total_inference_macs for g in self.generations)

    @property
    def total_individuals(self) -> int:
        return sum(g.population_size for g in self.generations)
