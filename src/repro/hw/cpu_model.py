"""CPU runtime model — the E3-CPU (SW-only) baseline platform.

Prices a workload the way neat-python on a desktop i7 pays for it:
an interpreted per-node, per-connection forward pass, a CPython env
step, per-connection CreateNet decoding, and amortized per-genome
evolve costs.  Every constant is documented in
:mod:`repro.hw.calibration`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import calibration as cal
from repro.hw.workload import GenerationWorkload, RunWorkload

__all__ = ["PhaseTimes", "CPUModel"]


@dataclass
class PhaseTimes:
    """Seconds per E3 phase (the Fig 9(c)/(d) breakdown buckets)."""

    evaluate: float = 0.0
    env: float = 0.0
    createnet: float = 0.0
    evolve: float = 0.0

    @property
    def total(self) -> float:
        return self.evaluate + self.env + self.createnet + self.evolve

    def fractions(self) -> dict[str, float]:
        total = self.total or 1.0
        return {
            "evaluate": self.evaluate / total,
            "env": self.env / total,
            "createnet": self.createnet / total,
            "evolve": self.evolve / total,
        }

    def merge(self, other: "PhaseTimes") -> None:
        self.evaluate += other.evaluate
        self.env += other.env
        self.createnet += other.createnet
        self.evolve += other.evolve


class CPUModel:
    """Prices workloads at interpreted-CPU rates."""

    def __init__(
        self,
        seconds_per_mac: float = cal.CPU_SECONDS_PER_MAC,
        seconds_per_node: float = cal.CPU_SECONDS_PER_NODE,
        seconds_per_call: float = cal.CPU_SECONDS_PER_ACTIVATE_CALL,
        seconds_per_env_step: float = cal.CPU_SECONDS_PER_ENV_STEP,
        seconds_per_genome_evolve: float = cal.CPU_SECONDS_PER_GENOME_EVOLVE,
        seconds_per_conn_createnet: float = cal.CPU_SECONDS_PER_CONN_CREATENET,
        power_watts: float = cal.CPU_POWER_WATTS,
    ):
        self.seconds_per_mac = seconds_per_mac
        self.seconds_per_node = seconds_per_node
        self.seconds_per_call = seconds_per_call
        self.seconds_per_env_step = seconds_per_env_step
        self.seconds_per_genome_evolve = seconds_per_genome_evolve
        self.seconds_per_conn_createnet = seconds_per_conn_createnet
        self.power_watts = power_watts

    # ----------------------------------------------------------- pricing
    def generation_times(self, gen: GenerationWorkload) -> PhaseTimes:
        evaluate = (
            gen.total_inference_macs * self.seconds_per_mac
            + gen.total_inference_nodes * self.seconds_per_node
            + gen.total_env_steps * self.seconds_per_call
        )
        env = gen.total_env_steps * self.seconds_per_env_step
        createnet = sum(
            w.macs * self.seconds_per_conn_createnet for w in gen.individuals
        )
        evolve = gen.population_size * self.seconds_per_genome_evolve
        return PhaseTimes(
            evaluate=evaluate, env=env, createnet=createnet, evolve=evolve
        )

    def run_times(self, run: RunWorkload) -> PhaseTimes:
        total = PhaseTimes()
        for gen in run.generations:
            total.merge(self.generation_times(gen))
        return total
