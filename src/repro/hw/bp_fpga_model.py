"""BP-on-FPGA accelerator model — the FA3C / PPO-FPGA class (Table VI).

Those systems put *training* (inference + backprop + optimizer) on the
FPGA for a fixed MLP policy.  The paper's Table VI claim is that "the
BP step costs more buffer and high demand of resources owing to the
need of high complexity calculation".  This model makes the claim
checkable: given the policy MLP and the training batch, it estimates
the on-chip state a BP datapath must hold and the MAC engines it must
provision, for comparison against INAX's footprint.

State a BP accelerator keeps on chip (per §II-A's description of BP):

* weights (forward + the transposed access pattern for backward);
* **all forward activations for the whole batch** — the defining
  backward-path cost;
* weight gradients, plus optimizer state (2 Adam moments per weight).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.fpga_model import (
    ResourceEstimate,
    _BRAM36_WORDS,
    _PE_DSPS,
    _PE_FFS,
    _PE_LUTS,
    _TOP_BRAM,
    _TOP_FFS,
    _TOP_LUTS,
)

__all__ = ["BPAcceleratorSpec", "estimate_bp_accelerator_resources"]


@dataclass(frozen=True)
class BPAcceleratorSpec:
    """A FA3C-class training accelerator for one MLP policy."""

    #: MLP layer sizes, inputs first (e.g. [4, 64, 64, 2])
    layer_sizes: tuple[int, ...]
    #: training minibatch held on chip
    batch_size: int = 32
    #: MAC engines (the systolic/PE array doing fwd + bwd GEMMs)
    num_macs: int = 256

    def __post_init__(self) -> None:
        if len(self.layer_sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_macs < 1:
            raise ValueError("num_macs must be >= 1")

    @property
    def num_weights(self) -> int:
        return sum(
            a * b for a, b in zip(self.layer_sizes, self.layer_sizes[1:])
        ) + sum(self.layer_sizes[1:])

    @property
    def activation_words(self) -> int:
        """Forward activations stored for backward, whole batch."""
        return self.batch_size * sum(self.layer_sizes)

    @property
    def onchip_words(self) -> int:
        """Total resident words: weights + grads + 2 Adam moments +
        batch activations."""
        return 4 * self.num_weights + self.activation_words


def estimate_bp_accelerator_resources(
    spec: BPAcceleratorSpec,
) -> ResourceEstimate:
    """Resource estimate for a FA3C-class BP accelerator.

    Uses the same per-MAC fabric costs as INAX's PEs (they are both
    DSP-slice MAC engines), so the comparison isolates what BP itself
    adds: the batch-activation buffers and the 4x weight-state."""
    bram = _TOP_BRAM + math.ceil(spec.onchip_words / _BRAM36_WORDS)
    return ResourceEstimate(
        luts=_TOP_LUTS + spec.num_macs * _PE_LUTS,
        ffs=_TOP_FFS + spec.num_macs * _PE_FFS,
        bram36=bram,
        dsps=spec.num_macs * _PE_DSPS,
    )
