"""FPGA platform model — resources, power, and E3-INAX pricing.

Covers three needs of the evaluation section:

* **Fig 10(b)** — FPGA resource utilization of an INAX configuration on
  the ZCU104's XCZU7EV device (LUT/FF/BRAM/DSP percentages for configs
  ``E3_a`` and ``E3_b``);
* **Fig 9(b-d)** — converting INAX cycle reports to seconds and
  attaching the host-CPU phases (env, CreateNet, evolve) to form the
  E3-INAX platform times;
* **Fig 10(a)** — the per-phase power numbers the energy comparison
  integrates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw import calibration as cal
from repro.hw.cpu_model import CPUModel, PhaseTimes
from repro.hw.workload import GenerationWorkload
from repro.inax.accelerator import INAXConfig
from repro.inax.timing import CycleReport

__all__ = [
    "FPGADevice",
    "ZCU104",
    "ResourceEstimate",
    "estimate_inax_resources",
    "estimate_fpga_power",
    "INAXPlatformModel",
]


@dataclass(frozen=True)
class FPGADevice:
    """Resource capacities of one FPGA part."""

    name: str
    luts: int
    ffs: int
    bram36: int
    dsps: int


#: Zynq UltraScale+ XCZU7EV (the ZCU104's device, 16 nm).
ZCU104 = FPGADevice(
    name="XCZU7EV", luts=230_400, ffs=460_800, bram36=312, dsps=1_728
)


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated resource usage of a design."""

    luts: int
    ffs: int
    bram36: int
    dsps: int

    def utilization(self, device: FPGADevice = ZCU104) -> dict[str, float]:
        """Fractional utilization per resource class (Fig 10(b) bars)."""
        return {
            "LUT": self.luts / device.luts,
            "FF": self.ffs / device.ffs,
            "BRAM": self.bram36 / device.bram36,
            "DSP": self.dsps / device.dsps,
        }

    def fits(self, device: FPGADevice = ZCU104) -> bool:
        return all(v <= 1.0 for v in self.utilization(device).values())


# per-block component estimates (post-synthesis class numbers for a
# 32-bit fixed-point datapath at 200 MHz; the DSP slice carries the
# arithmetic, fabric only sequences and holds the activation LUT)
_PE_LUTS = 200  # MAC sequencing + activation lookup
_PE_FFS = 300
_PE_DSPS = 1
_PU_LUTS = 300  # layer sequencer, buffer addressing
_PU_FFS = 500
_TOP_LUTS = 6_000  # controller, DMA engines, AXI plumbing
_TOP_FFS = 8_000
_TOP_BRAM = 4
_BRAM36_WORDS = 1_024  # 36 Kb / 32-bit words (ECC bits unused)


def estimate_inax_resources(
    num_pus: int,
    num_pes_per_pu: int,
    weight_buffer_words: int = 2_048,
    value_buffer_words: int = 512,
    overlap_io: bool = False,
) -> ResourceEstimate:
    """Resource estimate for an INAX configuration.

    Each PU owns a weight buffer and a value buffer sized in 32-bit
    words (§IV-D); both round up to whole BRAM36 blocks.  Double-
    buffered I/O (``overlap_io``) duplicates the value buffer so the
    next step's inputs stream in behind the current compute.
    """
    if num_pus < 1 or num_pes_per_pu < 1:
        raise ValueError("need at least one PU and one PE per PU")
    value_buffers = 2 if overlap_io else 1
    bram_per_pu = math.ceil(
        weight_buffer_words / _BRAM36_WORDS
    ) + value_buffers * math.ceil(value_buffer_words / _BRAM36_WORDS)
    total_pes = num_pus * num_pes_per_pu
    return ResourceEstimate(
        luts=_TOP_LUTS + num_pus * _PU_LUTS + total_pes * _PE_LUTS,
        ffs=_TOP_FFS + num_pus * _PU_FFS + total_pes * _PE_FFS,
        bram36=_TOP_BRAM + num_pus * bram_per_pu,
        dsps=total_pes * _PE_DSPS,
    )


def estimate_fpga_power(resources: ResourceEstimate) -> float:
    """Watts for a design at 200 MHz (static + per-resource dynamic)."""
    static = 0.7
    dynamic = (
        resources.luts * 6e-6
        + resources.ffs * 2e-6
        + resources.bram36 * 4e-3
        + resources.dsps * 2.5e-3
    )
    return static + dynamic


class INAXPlatformModel:
    """The E3-INAX platform: INAX cycles + host CPU for evolve/env.

    In the E3 deployment the "CPU" side is the board's embedded ARM
    cores, so host phases are priced at the edge-CPU power; the fabric
    is priced at the design's estimated power.
    """

    def __init__(
        self,
        inax_config: INAXConfig,
        clock_hz: float = cal.FPGA_CLOCK_HZ,
        host: CPUModel | None = None,
        fpga_power_watts: float | None = None,
        host_power_watts: float = cal.CPU_POWER_WATTS,
    ):
        self.inax_config = inax_config
        self.clock_hz = clock_hz
        self.host = host or CPUModel()
        if fpga_power_watts is None:
            resources = estimate_inax_resources(
                inax_config.num_pus, inax_config.num_pes_per_pu
            )
            fpga_power_watts = estimate_fpga_power(resources)
        self.fpga_power_watts = fpga_power_watts
        self.host_power_watts = host_power_watts

    # ----------------------------------------------------------- pricing
    def evaluate_seconds(self, report: CycleReport) -> float:
        """Wall seconds INAX spends on a cycle report."""
        return report.total_cycles / self.clock_hz

    def generation_times(
        self, gen: GenerationWorkload, report: CycleReport
    ) -> PhaseTimes:
        """E3-INAX phase times: evaluate on fabric, the rest on host."""
        host = self.host.generation_times(gen)
        return PhaseTimes(
            evaluate=self.evaluate_seconds(report),
            env=host.env,
            createnet=host.createnet,
            evolve=host.evolve,
        )
