"""GPU runtime model — the E3-GPU reference platform (§VI-A).

"NEAT algorithm is generally not efficient on GPUs [36], because of
small batch size and dynamic topology."  The model captures why: every
individual is a distinct tiny computation graph, so each env step costs
one kernel launch per layer plus a PCIe round-trip for the observation
and the action, and the actual MACs are negligible.  Weights are
uploaded once per individual per generation.
"""

from __future__ import annotations

from repro.hw import calibration as cal
from repro.hw.cpu_model import CPUModel, PhaseTimes
from repro.hw.workload import GenerationWorkload, RunWorkload

__all__ = ["GPUModel"]

_FLOAT_BYTES = 4


class GPUModel:
    """Prices the evaluate phase at GPU (launch-bound) rates.

    Env, CreateNet, and evolve stay on the host CPU, priced by a
    :class:`~repro.hw.cpu_model.CPUModel`.
    """

    def __init__(
        self,
        dispatch_seconds: float = cal.GPU_DISPATCH_SECONDS,
        kernel_launch_seconds: float = cal.GPU_KERNEL_LAUNCH_SECONDS,
        transfer_seconds_per_byte: float = cal.GPU_TRANSFER_SECONDS_PER_BYTE,
        seconds_per_mac: float = cal.GPU_SECONDS_PER_MAC,
        power_watts: float = cal.GPU_PLATFORM_POWER_WATTS,
        host: CPUModel | None = None,
    ):
        self.dispatch_seconds = dispatch_seconds
        self.kernel_launch_seconds = kernel_launch_seconds
        self.transfer_seconds_per_byte = transfer_seconds_per_byte
        self.seconds_per_mac = seconds_per_mac
        self.power_watts = power_watts
        self.host = host or CPUModel()

    # ----------------------------------------------------------- pricing
    def generation_times(self, gen: GenerationWorkload) -> PhaseTimes:
        host = self.host.generation_times(gen)
        evaluate = 0.0
        for w in gen.individuals:
            # one-time weight upload for the generation
            evaluate += (
                w.config_words * _FLOAT_BYTES * self.transfer_seconds_per_byte
            )
            # per env step: framework dispatch on the individual's dynamic
            # graph, a kernel chain (one launch per layer), and the
            # observation upload / action download round-trip
            per_step = (
                self.dispatch_seconds
                + max(w.layers, 1) * self.kernel_launch_seconds
                + (w.num_inputs + w.num_outputs)
                * _FLOAT_BYTES
                * self.transfer_seconds_per_byte
                + w.macs * self.seconds_per_mac
            )
            evaluate += w.steps * per_step
        return PhaseTimes(
            evaluate=evaluate,
            env=host.env,
            createnet=host.createnet,
            evolve=host.evolve,
        )

    def run_times(self, run: RunWorkload) -> PhaseTimes:
        total = PhaseTimes()
        for gen in run.generations:
            total.merge(self.generation_times(gen))
        return total
