"""CLAN-style distributed-learning platform model (Table VI).

CLAN [24] runs NEAT on a cluster of commodity edge CPUs (Raspberry-Pi
class): the population is sharded across workers, each worker evaluates
its shard locally, and a coordinator gathers fitnesses and runs evolve.
The paper contrasts E3 against it qualitatively in Table VI; this model
makes the contrast quantitative so the comparison bench can reproduce
the "who wins where" — CLAN scales with worker count until the
per-generation communication round dominates, while E3 accelerates the
same evaluate phase inside one device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import calibration as cal
from repro.hw.cpu_model import CPUModel, PhaseTimes
from repro.hw.workload import GenerationWorkload

__all__ = ["CLANConfig", "CLANModel"]

_FLOAT_BYTES = 4


@dataclass(frozen=True)
class CLANConfig:
    """Cluster parameters for the CLAN platform model."""

    num_workers: int = 4
    #: per-op slowdown of an edge CPU vs the desktop baseline
    edge_slowdown: float = 4.0
    #: one network round-trip (coordinator <-> worker)
    network_latency_seconds: float = 2e-4
    #: effective LAN throughput
    network_bytes_per_second: float = 10e6
    #: board power per worker node (Pi-class)
    worker_power_watts: float = 4.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.edge_slowdown <= 0:
            raise ValueError("edge_slowdown must be > 0")


class CLANModel:
    """Prices NEAT generations on a CLAN-style edge cluster."""

    def __init__(
        self,
        config: CLANConfig | None = None,
        host: CPUModel | None = None,
    ):
        self.config = config or CLANConfig()
        # the per-op cost basis; scaled by the edge slowdown per worker
        self.host = host or CPUModel()

    # ----------------------------------------------------------- pricing
    def generation_times(self, gen: GenerationWorkload) -> PhaseTimes:
        """Phase times for one generation on the cluster.

        Evaluate wall-clock follows the slowest worker's shard (static
        round-robin assignment, as CLAN's asynchronous queue converges
        to under uniform episodes), plus the genome broadcast and the
        fitness gather.
        """
        cfg = self.config
        slowdown = cfg.edge_slowdown

        # per-individual evaluate seconds at edge rates (incl. env)
        per_individual = []
        for w in gen.individuals:
            inference = w.steps * (
                self.host.seconds_per_call
                + w.macs * self.host.seconds_per_mac
                + w.nodes * self.host.seconds_per_node
            )
            env = w.steps * self.host.seconds_per_env_step
            per_individual.append(slowdown * (inference + env))

        # round-robin sharding: worker k gets individuals k, k+W, ...
        shard_times = [0.0] * cfg.num_workers
        for i, seconds in enumerate(per_individual):
            shard_times[i % cfg.num_workers] += seconds
        evaluate_wall = max(shard_times)

        # communication: broadcast every genome config + gather one
        # fitness per individual; one round-trip per worker per phase
        payload_bytes = gen.total_config_words * _FLOAT_BYTES
        gather_bytes = gen.population_size * _FLOAT_BYTES
        comm = (
            2 * cfg.num_workers * cfg.network_latency_seconds
            + (payload_bytes + gather_bytes) / cfg.network_bytes_per_second
        )

        host = self.host.generation_times(gen)
        return PhaseTimes(
            evaluate=evaluate_wall + comm,
            env=0.0,  # env runs inside each worker's evaluate slice
            createnet=host.createnet * slowdown,
            evolve=host.evolve * slowdown,  # evolve on the coordinator Pi
        )

    def communication_seconds(self, gen: GenerationWorkload) -> float:
        """The per-generation communication round alone."""
        cfg = self.config
        payload_bytes = gen.total_config_words * _FLOAT_BYTES
        gather_bytes = gen.population_size * _FLOAT_BYTES
        return (
            2 * cfg.num_workers * cfg.network_latency_seconds
            + (payload_bytes + gather_bytes) / cfg.network_bytes_per_second
        )

    # ------------------------------------------------------------ energy
    def energy_joules(self, times: PhaseTimes) -> float:
        """Whole-cluster energy: every node is powered for the full
        generation (workers idle during evolve still draw power)."""
        cfg = self.config
        cluster_power = (cfg.num_workers + 1) * cfg.worker_power_watts
        return times.total * cluster_power

    # ----------------------------------------------------------- scaling
    def scaling_efficiency(
        self, gen: GenerationWorkload, max_workers: int = 64
    ) -> list[tuple[int, float]]:
        """(workers, speedup vs 1 worker) — where communication bites."""
        base = CLANModel(
            CLANConfig(
                num_workers=1,
                edge_slowdown=self.config.edge_slowdown,
                network_latency_seconds=self.config.network_latency_seconds,
                network_bytes_per_second=self.config.network_bytes_per_second,
            ),
            host=self.host,
        ).generation_times(gen).total
        out = []
        workers = 1
        while workers <= max_workers:
            model = CLANModel(
                CLANConfig(
                    num_workers=workers,
                    edge_slowdown=self.config.edge_slowdown,
                    network_latency_seconds=self.config.network_latency_seconds,
                    network_bytes_per_second=self.config.network_bytes_per_second,
                ),
                host=self.host,
            )
            total = model.generation_times(gen).total
            out.append((workers, base / total))
            workers *= 2
        return out


def workers_needed_for_speedup(
    model: CLANModel, gen: GenerationWorkload, target_speedup: float
) -> int | None:
    """Smallest power-of-two worker count reaching ``target_speedup``,
    or None if communication overhead caps the cluster below it."""
    for workers, speedup in model.scaling_efficiency(gen, max_workers=1024):
        if speedup >= target_speedup:
            return workers
    return None
