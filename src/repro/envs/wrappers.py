"""Environment wrappers.

Small composable transforms over any :class:`~repro.envs.base.Environment`.
They exist for the paper's robustness narrative — "the environment is
full of variance" (§I) — and for experiment control:

* :class:`ObservationNoise` — additive Gaussian sensor noise, the
  cheapest model of a degraded edge sensor;
* :class:`ActionRepeat` — hold each decision for ``k`` physics steps
  (the classic Atari frame-skip, and a knob that divides the number of
  network inferences per episode);
* :class:`TimeLimitOverride` — change the episode cap without touching
  the environment class;
* :class:`FaultySensor` — deterministic seeded NaN/inf corruption for
  chaos testing (:mod:`repro.resilience`): the broken-sensor model a
  quarantine pipeline must survive.

Wrappers duck-type the environment interface (reset/step/spaces/
metadata) and delegate everything else to the wrapped instance.
"""

from __future__ import annotations

import hashlib
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult

__all__ = [
    "Wrapper",
    "ObservationNoise",
    "ActionRepeat",
    "TimeLimitOverride",
    "FaultySensor",
]


class Wrapper:
    """Base delegating wrapper."""

    def __init__(self, env: Environment):
        self.env = env

    # ------------------------------------------------------- delegation
    def reset(self, seed: int | None = None) -> np.ndarray:
        return self.env.reset(seed=seed)

    def step(self, action: Any) -> StepResult:
        return self.env.step(action)

    @property
    def observation_space(self):
        return self.env.observation_space

    @property
    def action_space(self):
        return self.env.action_space

    @property
    def max_episode_steps(self) -> int:
        return self.env.max_episode_steps

    @property
    def reward_threshold(self) -> float:
        return self.env.reward_threshold

    @property
    def name(self) -> str:
        return self.env.name

    @property
    def num_inputs(self) -> int:
        return self.env.num_inputs

    @property
    def num_outputs(self) -> int:
        return self.env.num_outputs

    @property
    def rng(self) -> np.random.Generator:
        return self.env.rng

    @property
    def elapsed_steps(self) -> int:
        return self.env.elapsed_steps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.env!r})"


class ObservationNoise(Wrapper):
    """Additive Gaussian noise on every observation.

    Noise draws come from the wrapped environment's own RNG stream, so
    a seeded episode stays fully reproducible.
    """

    def __init__(self, env: Environment, std: float = 0.05):
        if std < 0:
            raise ValueError("std must be >= 0")
        super().__init__(env)
        self.std = std

    def _corrupt(self, obs: np.ndarray) -> np.ndarray:
        if self.std == 0:
            return obs
        return obs + self.env.rng.normal(0.0, self.std, size=obs.shape)

    def reset(self, seed: int | None = None) -> np.ndarray:
        return self._corrupt(self.env.reset(seed=seed))

    def step(self, action: Any) -> StepResult:
        obs, reward, done, info = self.env.step(action)
        return self._corrupt(obs), reward, done, info


class ActionRepeat(Wrapper):
    """Hold each action for ``k`` underlying steps, summing rewards.

    Terminates immediately when the inner episode ends mid-repeat.
    From the accelerator's point of view this divides the number of
    inferences per episode by ``k`` — a SW knob with the same effect as
    a k-times-faster device.
    """

    def __init__(self, env: Environment, repeats: int = 2):
        if repeats < 1:
            raise ValueError("repeats must be >= 1")
        super().__init__(env)
        self.repeats = repeats

    def step(self, action: Any) -> StepResult:
        total = 0.0
        obs, done, info = None, False, {}
        for _ in range(self.repeats):
            obs, reward, done, info = self.env.step(action)
            total += reward
            if done:
                break
        return obs, total, done, info


class TimeLimitOverride(Wrapper):
    """Replace the wrapped environment's episode cap.

    Shortening always works; *extending* is bounded by the inner
    environment's own limit (its TimeLimit fires first), so pass a cap
    at or below ``env.max_episode_steps`` for exact control.
    """

    def __init__(self, env: Environment, max_episode_steps: int):
        if max_episode_steps < 1:
            raise ValueError("max_episode_steps must be >= 1")
        super().__init__(env)
        self._limit = max_episode_steps
        self._steps = 0

    @property
    def max_episode_steps(self) -> int:
        return self._limit

    def reset(self, seed: int | None = None) -> np.ndarray:
        self._steps = 0
        return self.env.reset(seed=seed)

    def step(self, action: Any) -> StepResult:
        obs, reward, done, info = self.env.step(action)
        self._steps += 1
        if not done and self._steps >= self._limit:
            done = True
            info = dict(info)
            info["truncated"] = True
        return obs, reward, done, info


class FaultySensor(Wrapper):
    """Deterministic seeded NaN/inf corruption of observations/rewards.

    Models a glitching edge sensor for chaos testing: with probability
    ``obs_nan`` (``obs_inf``) per step, one observation element is
    replaced with NaN (a random-sign inf); with probability
    ``reward_nan`` the step's reward becomes NaN.  The corruption
    stream is derived by hashing the wrapper ``seed`` together with the
    episode's reset seed, so it is independent of the wrapped
    environment's own RNG (physics stay identical to the fault-free
    run) and replays exactly for a given (seed, episode-seed) pair —
    the determinism contract in :doc:`docs/resilience`.

    Reward NaN matters for quarantine coverage: environments with
    constant survival rewards (CartPole) produce *finite* fitness from
    NaN observations, so observation faults alone never exercise the
    NaN-fitness path.
    """

    def __init__(
        self,
        env: Environment,
        obs_nan: float = 0.0,
        obs_inf: float = 0.0,
        reward_nan: float = 0.0,
        seed: int = 0,
    ):
        for name, p in (
            ("obs_nan", obs_nan),
            ("obs_inf", obs_inf),
            ("reward_nan", reward_nan),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        super().__init__(env)
        self.obs_nan = obs_nan
        self.obs_inf = obs_inf
        self.reward_nan = reward_nan
        self.seed = seed
        self._fault_rng = self._derive_rng(None)

    def _derive_rng(self, episode_seed: int | None) -> np.random.Generator:
        digest = hashlib.sha256(
            f"{self.seed}|faulty_sensor|{episode_seed}".encode()
        ).digest()
        return np.random.default_rng(
            int.from_bytes(digest[:8], "little")
        )

    def _corrupt_obs(self, obs: np.ndarray) -> np.ndarray:
        rng = self._fault_rng
        if self.obs_nan > 0.0 and rng.random() < self.obs_nan:
            obs = np.array(obs, dtype=np.float64, copy=True)
            obs[int(rng.integers(obs.size))] = np.nan
        if self.obs_inf > 0.0 and rng.random() < self.obs_inf:
            obs = np.array(obs, dtype=np.float64, copy=True)
            sign = 1.0 if rng.random() < 0.5 else -1.0
            obs[int(rng.integers(obs.size))] = sign * np.inf
        return obs

    def reset(self, seed: int | None = None) -> np.ndarray:
        self._fault_rng = self._derive_rng(seed)
        return self._corrupt_obs(self.env.reset(seed=seed))

    def step(self, action: Any) -> StepResult:
        obs, reward, done, info = self.env.step(action)
        obs = self._corrupt_obs(obs)
        if self.reward_nan > 0.0 and self._fault_rng.random() < self.reward_nan:
            reward = float("nan")
        return obs, reward, done, info
