"""Base environment protocol.

All environments in this substrate follow the classic Gym episodic
interface::

    obs = env.reset(seed=0)
    obs, reward, done, info = env.step(action)

Each environment also publishes the metadata the rest of the system needs:

* ``observation_space`` / ``action_space`` — used by NEAT to size the
  initial genome (inputs = observation dim, outputs = action dim) and by
  the RL baselines to build their MLP policies;
* ``max_episode_steps`` — the episode cap (Gym's ``TimeLimit`` wrapper is
  folded into the environment here);
* ``reward_threshold`` — the paper's "required fitness" per task; a NEAT
  or RL run stops once the averaged episode reward reaches it.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.envs.spaces import Space

__all__ = ["Environment", "StepResult"]

StepResult = tuple[np.ndarray, float, bool, dict[str, Any]]


class Environment:
    """Abstract episodic environment.

    Subclasses implement :meth:`_reset` and :meth:`_step`; this base class
    owns seeding, step counting, and the episode time limit so each
    environment's physics code stays free of bookkeeping.
    """

    #: Environment identifier used by the registry.
    name: str = "environment"
    observation_space: Space
    action_space: Space
    #: Hard cap on episode length (Gym TimeLimit equivalent).
    max_episode_steps: int = 1000
    #: Episode reward at which the task counts as solved.
    reward_threshold: float = 0.0

    def __init__(self, seed: int | None = None):
        self._rng = np.random.default_rng(seed)
        self._elapsed_steps = 0
        self._needs_reset = True

    # ------------------------------------------------------------------ API
    def reset(self, seed: int | None = None) -> np.ndarray:
        """Start a new episode and return the initial observation."""
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._elapsed_steps = 0
        self._needs_reset = False
        obs = self._reset()
        return np.asarray(obs, dtype=np.float64)

    def step(self, action: Any) -> StepResult:
        """Advance one timestep.

        Returns ``(observation, reward, done, info)``.  ``info["truncated"]``
        is set when the episode ended only because of the time limit.
        """
        if self._needs_reset:
            raise RuntimeError(
                f"{self.name}: step() called before reset() or after the "
                "episode terminated"
            )
        obs, reward, done, info = self._step(action)
        self._elapsed_steps += 1
        truncated = False
        if not done and self._elapsed_steps >= self.max_episode_steps:
            done = True
            truncated = True
        info.setdefault("truncated", truncated)
        if done:
            self._needs_reset = True
        return np.asarray(obs, dtype=np.float64), float(reward), bool(done), info

    @property
    def elapsed_steps(self) -> int:
        return self._elapsed_steps

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    # ------------------------------------------------- subclass extension
    def _reset(self) -> np.ndarray:
        raise NotImplementedError

    def _step(self, action: Any) -> StepResult:
        raise NotImplementedError

    # ----------------------------------------------------------- helpers
    @property
    def num_inputs(self) -> int:
        """Network input width implied by the observation space."""
        return self.observation_space.flat_dim

    @property
    def num_outputs(self) -> int:
        """Network output width implied by the action space.

        Discrete action spaces get one output node per action (argmax
        policy); continuous spaces get one node per action dimension.
        This matches the paper's per-environment PE counts (Fig 10's
        footnote: cartpole 3 outputs, pendulum 1, ...).
        """
        from repro.envs.spaces import Discrete

        if isinstance(self.action_space, Discrete):
            return self.action_space.n
        return self.action_space.flat_dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(obs={self.observation_space}, "
            f"act={self.action_space})"
        )
