"""Acrobot swing-up task (paper's Env2).

A two-link underactuated pendulum; torque is applied only at the joint
between the links, and the goal is to swing the free end above a target
height.  The dynamics are Sutton's acrobot equations as used by Gym's
``Acrobot-v1``, integrated with fourth-order Runge-Kutta.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box, Discrete

__all__ = ["Acrobot"]


def _wrap(x: float, low: float, high: float) -> float:
    """Wrap ``x`` into the half-open interval ``[low, high)``."""
    diff = high - low
    while x >= high:
        x -= diff
    while x < low:
        x += diff
    return x


class Acrobot(Environment):
    """Two-link acrobot with the book (Sutton & Barto) dynamics."""

    name = "acrobot"
    max_episode_steps = 500
    reward_threshold = -100.0

    DT = 0.2
    LINK_LENGTH_1 = 1.0
    LINK_LENGTH_2 = 1.0
    LINK_MASS_1 = 1.0
    LINK_MASS_2 = 1.0
    LINK_COM_POS_1 = 0.5
    LINK_COM_POS_2 = 0.5
    LINK_MOI = 1.0
    GRAVITY = 9.8

    MAX_VEL_1 = 4 * math.pi
    MAX_VEL_2 = 9 * math.pi

    TORQUES = (-1.0, 0.0, 1.0)

    def __init__(self, seed: int | None = None):
        super().__init__(seed)
        high = np.array([1.0, 1.0, 1.0, 1.0, self.MAX_VEL_1, self.MAX_VEL_2])
        self.observation_space = Box(-high, high)
        self.action_space = Discrete(3)
        # internal state: (theta1, theta2, dtheta1, dtheta2)
        self._state = np.zeros(4)

    def _reset(self) -> np.ndarray:
        self._state = self._rng.uniform(-0.1, 0.1, size=4)
        return self._observation()

    def _observation(self) -> np.ndarray:
        t1, t2, dt1, dt2 = self._state
        return np.array(
            [math.cos(t1), math.sin(t1), math.cos(t2), math.sin(t2), dt1, dt2]
        )

    def _step(self, action: Any) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self.action_space}")
        torque = self.TORQUES[int(action)]

        state = self._rk4(self._state, torque)
        t1 = _wrap(state[0], -math.pi, math.pi)
        t2 = _wrap(state[1], -math.pi, math.pi)
        dt1 = float(np.clip(state[2], -self.MAX_VEL_1, self.MAX_VEL_1))
        dt2 = float(np.clip(state[3], -self.MAX_VEL_2, self.MAX_VEL_2))
        self._state = np.array([t1, t2, dt1, dt2])

        done = self._terminal()
        reward = 0.0 if done else -1.0
        return self._observation(), reward, done, {}

    def _terminal(self) -> bool:
        t1, t2 = self._state[0], self._state[1]
        return -math.cos(t1) - math.cos(t2 + t1) > 1.0

    # ---------------------------------------------------------- dynamics
    def _dsdt(self, state: np.ndarray, torque: float) -> np.ndarray:
        m1, m2 = self.LINK_MASS_1, self.LINK_MASS_2
        l1 = self.LINK_LENGTH_1
        lc1, lc2 = self.LINK_COM_POS_1, self.LINK_COM_POS_2
        moi = self.LINK_MOI
        g = self.GRAVITY
        theta1, theta2, dtheta1, dtheta2 = state

        d1 = (
            m1 * lc1**2
            + m2 * (l1**2 + lc2**2 + 2 * l1 * lc2 * math.cos(theta2))
            + 2 * moi
        )
        d2 = m2 * (lc2**2 + l1 * lc2 * math.cos(theta2)) + moi
        phi2 = m2 * lc2 * g * math.cos(theta1 + theta2 - math.pi / 2.0)
        phi1 = (
            -m2 * l1 * lc2 * dtheta2**2 * math.sin(theta2)
            - 2 * m2 * l1 * lc2 * dtheta2 * dtheta1 * math.sin(theta2)
            + (m1 * lc1 + m2 * l1) * g * math.cos(theta1 - math.pi / 2)
            + phi2
        )
        ddtheta2 = (
            torque
            + d2 / d1 * phi1
            - m2 * l1 * lc2 * dtheta1**2 * math.sin(theta2)
            - phi2
        ) / (m2 * lc2**2 + moi - d2**2 / d1)
        ddtheta1 = -(d2 * ddtheta2 + phi1) / d1
        return np.array([dtheta1, dtheta2, ddtheta1, ddtheta2])

    def _rk4(self, state: np.ndarray, torque: float) -> np.ndarray:
        dt = self.DT
        k1 = self._dsdt(state, torque)
        k2 = self._dsdt(state + dt / 2 * k1, torque)
        k3 = self._dsdt(state + dt / 2 * k2, torque)
        k4 = self._dsdt(state + dt * k3, torque)
        return state + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4)
