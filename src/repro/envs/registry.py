"""Environment registry and the paper's benchmark suite.

The paper evaluates on six OpenAI environments, numbered Env1..Env6 in
Fig 9(b) (footnote 4): cartpole, acrobot, mountain car, bipedal walker,
lunar lander, pendulum.  :data:`ENV_SUITE` preserves that ordering so the
benchmark harnesses can print rows labelled the way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.envs.acrobot import Acrobot
from repro.envs.base import Environment
from repro.envs.bipedal_walker import BipedalWalker
from repro.envs.cartpole import CartPole
from repro.envs.lunar_lander import LunarLander
from repro.envs.mountain_car import MountainCar, MountainCarContinuous
from repro.envs.pendulum import Pendulum
from repro.envs.pong import Pong

__all__ = ["EnvSpec", "ENV_SUITE", "make", "registered_names", "spec"]


@dataclass(frozen=True)
class EnvSpec:
    """Registry entry for one environment."""

    name: str
    factory: Callable[..., Environment]
    #: Paper suite index ("Env1".."Env6"); None for extra environments.
    paper_id: str | None
    #: Required fitness (paper §III-A: "for each of the tasks, we set a
    #: required fitness value").  Mirrors each env's reward_threshold.
    required_fitness: float

    def make(self, seed: int | None = None, **kwargs) -> Environment:
        """Instantiate; extra kwargs reach the environment constructor
        (physics overrides for the model-tuning scenario)."""
        return self.factory(seed=seed, **kwargs)


_REGISTRY: dict[str, EnvSpec] = {}


def _register(
    factory: Callable[..., Environment], paper_id: str | None
) -> EnvSpec:
    env_spec = EnvSpec(
        name=factory.name,  # type: ignore[attr-defined]
        factory=factory,
        paper_id=paper_id,
        required_fitness=factory.reward_threshold,  # type: ignore[attr-defined]
    )
    _REGISTRY[env_spec.name] = env_spec
    return env_spec


#: The paper's evaluation suite, in Fig 9(b) order (Env1..Env6), plus
#: the Atari-class Env7 that Fig 11's caption averages over (§VI-A:
#: "a mix of control benchmarks and Atari games").
ENV_SUITE: tuple[EnvSpec, ...] = (
    _register(CartPole, "Env1"),
    _register(Acrobot, "Env2"),
    _register(MountainCar, "Env3"),
    _register(BipedalWalker, "Env4"),
    _register(LunarLander, "Env5"),
    _register(Pendulum, "Env6"),
    _register(Pong, "Env7"),
)

# Extra environments available but outside the paper's suite.
_register(MountainCarContinuous, None)


def make(name: str, seed: int | None = None, **kwargs) -> Environment:
    """Instantiate a registered environment by name.

    Extra keyword arguments reach the environment constructor, e.g.
    ``make("pendulum", mass=1.4)`` for a perturbed plant.
    """
    try:
        env_spec = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown environment {name!r}; known: {known}") from None
    return env_spec.make(seed=seed, **kwargs)


def spec(name: str) -> EnvSpec:
    """Look up the registry entry for ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown environment {name!r}; known: {known}") from None


def registered_names() -> list[str]:
    """All registered environment names."""
    return sorted(_REGISTRY)
