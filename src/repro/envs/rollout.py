"""Episode rollouts and fitness evaluation.

This module is the "Evaluate" glue from the paper's Table III: given a
policy (any callable mapping an observation vector to a raw output
vector), it runs episodes against an environment, converts raw network
outputs into environment actions, and reports the fitness along with the
step counts the hardware cost models need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete

__all__ = [
    "PolicyFn",
    "EpisodeRecord",
    "decode_action",
    "run_episode",
    "evaluate_policy",
]

PolicyFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class EpisodeRecord:
    """Outcome of one episode: fitness plus workload accounting."""

    total_reward: float
    steps: int
    truncated: bool
    #: Per-step rewards, kept for convergence-trace benches.
    rewards: list[float] = field(default_factory=list)


def decode_action(env: Environment, raw_output: np.ndarray):
    """Convert a raw network output vector into an environment action.

    * ``Discrete(n)`` — argmax over the ``n`` output nodes (the standard
      NEAT policy head, and how the paper sizes INAX's PE count per env);
    * ``Box`` — squash each output with tanh and scale to the bounds.
    """
    raw = np.asarray(raw_output, dtype=np.float64).reshape(-1)
    space = env.action_space
    if isinstance(space, Discrete):
        if raw.shape[0] < space.n:
            raise ValueError(
                f"policy produced {raw.shape[0]} outputs but {env.name} "
                f"needs {space.n}"
            )
        return int(np.argmax(raw[: space.n]))
    if isinstance(space, Box):
        dim = space.flat_dim
        if raw.shape[0] < dim:
            raise ValueError(
                f"policy produced {raw.shape[0]} outputs but {env.name} "
                f"needs {dim}"
            )
        squashed = np.tanh(raw[:dim])
        center = (space.high + space.low) / 2.0
        half_range = (space.high - space.low) / 2.0
        # unbounded dims pass through un-scaled
        half_range = np.where(np.isfinite(half_range), half_range, 1.0)
        center = np.where(np.isfinite(center), center, 0.0)
        return center + half_range * squashed.reshape(space.shape)
    raise TypeError(f"unsupported action space {space!r}")


def run_episode(
    env: Environment,
    policy: PolicyFn,
    seed: int | None = None,
    max_steps: int | None = None,
    keep_rewards: bool = False,
) -> EpisodeRecord:
    """Run one episode of ``policy`` in ``env`` and return its record."""
    obs = env.reset(seed=seed)
    total = 0.0
    steps = 0
    truncated = False
    rewards: list[float] = []
    limit = max_steps if max_steps is not None else env.max_episode_steps
    while True:
        action = decode_action(env, policy(obs))
        obs, reward, done, info = env.step(action)
        total += reward
        steps += 1
        if keep_rewards:
            rewards.append(reward)
        if done or steps >= limit:
            truncated = bool(info.get("truncated", False)) or steps >= limit
            break
    return EpisodeRecord(
        total_reward=total, steps=steps, truncated=truncated, rewards=rewards
    )


def evaluate_policy(
    env: Environment,
    policy: PolicyFn,
    episodes: int = 1,
    seeds: Sequence[int] | None = None,
    max_steps: int | None = None,
) -> float:
    """Average episode reward of ``policy`` over ``episodes`` runs.

    This is the fitness function NEAT maximizes; it is also used to
    check a trained RL policy against the task's required fitness.
    """
    if seeds is not None and len(seeds) != episodes:
        raise ValueError("seeds, when given, must have one entry per episode")
    total = 0.0
    for i in range(episodes):
        seed = seeds[i] if seeds is not None else None
        total += run_episode(env, policy, seed=seed, max_steps=max_steps).total_reward
    return total / episodes
