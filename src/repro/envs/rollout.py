"""Episode rollouts and fitness evaluation.

This module is the "Evaluate" glue from the paper's Table III: given a
policy (any callable mapping an observation vector to a raw output
vector), it runs episodes against an environment, converts raw network
outputs into environment actions, and reports the fitness along with the
step counts the hardware cost models need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.envs.base import Environment
from repro.envs.spaces import Box, Discrete
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import span as _span

__all__ = [
    "PolicyFn",
    "InferFn",
    "EpisodeRecord",
    "decode_action",
    "decode_action_batch",
    "run_episode",
    "run_lockstep",
    "evaluate_policy",
]

PolicyFn = Callable[[np.ndarray], np.ndarray]
#: Lock-step inference: ``{slot: observation} -> {slot: raw output}``
#: for every still-alive slot.  Both the INAX device's scatter/infer/
#: gather step and :class:`repro.neat.vectorized.PopulationEvaluator`
#: satisfy this signature.
InferFn = Callable[[dict[int, np.ndarray]], dict[int, np.ndarray]]


@dataclass
class EpisodeRecord:
    """Outcome of one episode: fitness plus workload accounting."""

    total_reward: float
    steps: int
    truncated: bool
    #: Per-step rewards, kept for convergence-trace benches.
    rewards: list[float] = field(default_factory=list)


def decode_action(env: Environment, raw_output: np.ndarray):
    """Convert a raw network output vector into an environment action.

    * ``Discrete(n)`` — argmax over the ``n`` output nodes (the standard
      NEAT policy head, and how the paper sizes INAX's PE count per env);
    * ``Box`` — squash each output with tanh and scale to the bounds.
    """
    raw = np.asarray(raw_output, dtype=np.float64).reshape(-1)
    space = env.action_space
    if isinstance(space, Discrete):
        if raw.shape[0] < space.n:
            raise ValueError(
                f"policy produced {raw.shape[0]} outputs but {env.name} "
                f"needs {space.n}"
            )
        return int(np.argmax(raw[: space.n]))
    if isinstance(space, Box):
        dim = space.flat_dim
        if raw.shape[0] < dim:
            raise ValueError(
                f"policy produced {raw.shape[0]} outputs but {env.name} "
                f"needs {dim}"
            )
        squashed = np.tanh(raw[:dim])
        center = (space.high + space.low) / 2.0
        half_range = (space.high - space.low) / 2.0
        # unbounded dims pass through un-scaled
        half_range = np.where(np.isfinite(half_range), half_range, 1.0)
        center = np.where(np.isfinite(center), center, 0.0)
        return center + half_range * squashed.reshape(space.shape)
    raise TypeError(f"unsupported action space {space!r}")


def decode_action_batch(env: Environment, raw_outputs: np.ndarray) -> list:
    """Decode a ``(batch, num_outputs)`` block of raw outputs at once.

    Bit-identical to calling :func:`decode_action` row by row (ties in
    the argmax resolve to the first maximum in both, and the Box path
    applies the same value-pure elementwise ops), but pays the NumPy
    call overhead once per lock-step tick instead of once per individual.
    """
    raw = np.atleast_2d(np.asarray(raw_outputs, dtype=np.float64))
    space = env.action_space
    if isinstance(space, Discrete):
        if raw.shape[1] < space.n:
            raise ValueError(
                f"policy produced {raw.shape[1]} outputs but {env.name} "
                f"needs {space.n}"
            )
        return [int(a) for a in np.argmax(raw[:, : space.n], axis=1)]
    if isinstance(space, Box):
        dim = space.flat_dim
        if raw.shape[1] < dim:
            raise ValueError(
                f"policy produced {raw.shape[1]} outputs but {env.name} "
                f"needs {dim}"
            )
        squashed = np.tanh(raw[:, :dim])
        center = (space.high + space.low) / 2.0
        half_range = (space.high - space.low) / 2.0
        half_range = np.where(np.isfinite(half_range), half_range, 1.0)
        center = np.where(np.isfinite(center), center, 0.0)
        actions = center + half_range * squashed.reshape(
            (raw.shape[0],) + space.shape
        )
        return [actions[i] for i in range(raw.shape[0])]
    raise TypeError(f"unsupported action space {space!r}")


def run_episode(
    env: Environment,
    policy: PolicyFn,
    seed: int | None = None,
    max_steps: int | None = None,
    keep_rewards: bool = False,
) -> EpisodeRecord:
    """Run one episode of ``policy`` in ``env`` and return its record.

    ``truncated`` reports the *environment's* truncation flag when the
    episode ends on its own (an episode that terminates naturally on
    exactly the last allowed step is **not** truncated), and is only
    forced ``True`` when the external ``max_steps`` cap cuts a
    still-running episode short.
    """
    obs = env.reset(seed=seed)
    total = 0.0
    steps = 0
    truncated = False
    rewards: list[float] = []
    limit = max_steps if max_steps is not None else env.max_episode_steps
    while True:
        action = decode_action(env, policy(obs))
        obs, reward, done, info = env.step(action)
        total += reward
        steps += 1
        if keep_rewards:
            rewards.append(reward)
        if done:
            truncated = bool(info.get("truncated", False))
            break
        if steps >= limit:
            truncated = True
            break
    registry = get_metrics()
    if registry is not None:
        registry.histogram("episode.steps").observe(steps)
        registry.counter("episode.count").inc()
    return EpisodeRecord(
        total_reward=total, steps=steps, truncated=truncated, rewards=rewards
    )


def run_lockstep(
    envs: Sequence[Environment],
    infer: InferFn,
    seeds: Sequence[int | None] | None = None,
    max_steps: int | None = None,
    keep_rewards: bool = False,
) -> list[EpisodeRecord]:
    """Run one episode per env, all in lock-step, and return the records.

    This is the shared multi-episode driver behind every batched
    evaluation path: each synchronized tick infers every still-alive
    slot at once (``infer`` maps ``{slot: obs}`` to ``{slot: raw
    output}``), decodes the whole wave's actions in one batch, then
    steps each slot's environment.  Slots whose episodes terminate drop
    out of subsequent ticks — the software analogue of the paper's
    §V-B2 idle-PU effect — so the INAX backend's device waves and the
    ``cpu-fast`` backend's population inference run through identical
    bookkeeping.

    Per-slot rewards accumulate in step order, and truncation follows
    :func:`run_episode`'s rule exactly, so a lock-step episode's record
    is bit-identical to running it alone.
    """
    if seeds is not None and len(seeds) != len(envs):
        raise ValueError("seeds, when given, must have one entry per env")
    n = len(envs)
    observations: list[np.ndarray] = [
        env.reset(seed=seeds[i] if seeds is not None else None)
        for i, env in enumerate(envs)
    ]
    limits = [
        max_steps if max_steps is not None else env.max_episode_steps
        for env in envs
    ]
    totals = [0.0] * n
    steps = [0] * n
    truncated = [False] * n
    rewards: list[list[float]] = [[] for _ in range(n)]
    alive = list(range(n))
    ticks = 0
    inferences = 0
    with _span("rollout.lockstep", envs=n):
        while alive:
            ticks += 1
            inferences += len(alive)
            outputs = infer({slot: observations[slot] for slot in alive})
            actions = decode_action_batch(
                envs[alive[0]], np.stack([outputs[slot] for slot in alive])
            )
            survivors = []
            for action, slot in zip(actions, alive):
                obs, reward, done, info = envs[slot].step(action)
                observations[slot] = obs
                totals[slot] += reward
                steps[slot] += 1
                if keep_rewards:
                    rewards[slot].append(reward)
                if done:
                    truncated[slot] = bool(info.get("truncated", False))
                elif steps[slot] >= limits[slot]:
                    truncated[slot] = True
                else:
                    survivors.append(slot)
            alive = survivors
    registry = get_metrics()
    if registry is not None:
        registry.histogram("rollout.wave_size").observe(n)
        registry.counter("rollout.ticks").inc(ticks)
        registry.counter("rollout.inferences").inc(inferences)
        registry.counter("episode.count").inc(n)
        episode_steps = registry.histogram("episode.steps")
        for count in steps:
            episode_steps.observe(count)
    return [
        EpisodeRecord(
            total_reward=totals[i],
            steps=steps[i],
            truncated=truncated[i],
            rewards=rewards[i],
        )
        for i in range(n)
    ]


def evaluate_policy(
    env: Environment,
    policy: PolicyFn,
    episodes: int = 1,
    seeds: Sequence[int] | None = None,
    max_steps: int | None = None,
) -> float:
    """Average episode reward of ``policy`` over ``episodes`` runs.

    This is the fitness function NEAT maximizes; it is also used to
    check a trained RL policy against the task's required fitness.
    """
    if seeds is not None and len(seeds) != episodes:
        raise ValueError("seeds, when given, must have one entry per episode")
    total = 0.0
    for i in range(episodes):
        seed = seeds[i] if seeds is not None else None
        total += run_episode(env, policy, seed=seed, max_steps=max_steps).total_reward
    return total / episodes
