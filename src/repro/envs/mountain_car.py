"""Mountain-car task (paper's Env3).

The Moore (1990) mountain car as implemented by Gym's
``MountainCar-v0``: an under-powered car in a valley must build momentum
to reach the flag on the right hill.  We also provide the continuous
variant used when a continuous-action baseline is wanted.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box, Discrete

__all__ = ["MountainCar", "MountainCarContinuous"]


class MountainCar(Environment):
    """Discrete-action mountain car (push left / coast / push right)."""

    name = "mountain_car"
    max_episode_steps = 200
    reward_threshold = -110.0

    MIN_POSITION = -1.2
    MAX_POSITION = 0.6
    MAX_SPEED = 0.07
    GOAL_POSITION = 0.5
    GOAL_VELOCITY = 0.0
    FORCE = 0.001
    GRAVITY = 0.0025

    def __init__(self, seed: int | None = None):
        super().__init__(seed)
        low = np.array([self.MIN_POSITION, -self.MAX_SPEED])
        high = np.array([self.MAX_POSITION, self.MAX_SPEED])
        self.observation_space = Box(low, high)
        self.action_space = Discrete(3)
        self._state = np.zeros(2)

    def _reset(self) -> np.ndarray:
        self._state = np.array([self._rng.uniform(-0.6, -0.4), 0.0])
        return self._state.copy()

    def _step(self, action: Any) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self.action_space}")
        position, velocity = self._state
        velocity += (int(action) - 1) * self.FORCE - self.GRAVITY * math.cos(
            3 * position
        )
        velocity = float(np.clip(velocity, -self.MAX_SPEED, self.MAX_SPEED))
        position = float(
            np.clip(position + velocity, self.MIN_POSITION, self.MAX_POSITION)
        )
        if position <= self.MIN_POSITION and velocity < 0:
            velocity = 0.0
        self._state = np.array([position, velocity])
        done = position >= self.GOAL_POSITION and velocity >= self.GOAL_VELOCITY
        return self._state.copy(), -1.0, done, {}


class MountainCarContinuous(Environment):
    """Continuous-force mountain car (Gym ``MountainCarContinuous-v0``)."""

    name = "mountain_car_continuous"
    max_episode_steps = 999
    reward_threshold = 90.0

    MIN_POSITION = -1.2
    MAX_POSITION = 0.6
    MAX_SPEED = 0.07
    GOAL_POSITION = 0.45
    POWER = 0.0015
    GRAVITY = 0.0025

    def __init__(self, seed: int | None = None):
        super().__init__(seed)
        low = np.array([self.MIN_POSITION, -self.MAX_SPEED])
        high = np.array([self.MAX_POSITION, self.MAX_SPEED])
        self.observation_space = Box(low, high)
        self.action_space = Box(np.array([-1.0]), np.array([1.0]))
        self._state = np.zeros(2)

    def _reset(self) -> np.ndarray:
        self._state = np.array([self._rng.uniform(-0.6, -0.4), 0.0])
        return self._state.copy()

    def _step(self, action: Any) -> StepResult:
        force = float(np.clip(np.asarray(action).reshape(-1)[0], -1.0, 1.0))
        position, velocity = self._state
        velocity += force * self.POWER - self.GRAVITY * math.cos(3 * position)
        velocity = float(np.clip(velocity, -self.MAX_SPEED, self.MAX_SPEED))
        position = float(
            np.clip(position + velocity, self.MIN_POSITION, self.MAX_POSITION)
        )
        if position <= self.MIN_POSITION and velocity < 0:
            velocity = 0.0
        self._state = np.array([position, velocity])
        done = position >= self.GOAL_POSITION
        reward = 100.0 if done else 0.0
        reward -= 0.1 * force**2
        return self._state.copy(), reward, done, {}
