"""Bipedal-walker task (paper's Env4) — Box2D substitution.

Gym's ``BipedalWalker-v3`` is a Box2D articulated biped with a
24-dimensional observation (hull angle/velocities, 4 joint angles and
speeds, 2 ground contacts, 10 lidar rangefinder returns) and 4
continuous joint-torque actions.  Box2D is unavailable offline, so this
module implements a planar torque-controlled biped with the **same
observation and action interface** and a reduced-order contact model:

* each leg has a hip and a knee joint driven by first-order torque
  dynamics with damping and joint limits;
* foot positions follow from leg kinematics; a foot in contact with the
  terrain acts as the stance foot, and the hull advances with the
  horizontal velocity the stance leg's joint motion sweeps out
  (a standard reduced-order "stance-leg" walking model);
* falling (hull pitch beyond the limit or hull touching the ground)
  terminates the episode with the Gym penalty of -100;
* reward is forward progress minus a small torque cost, as in Gym.

This keeps the properties the paper relies on: it is by far the hardest
of the six tasks (matching Table V, where evolved bipedal networks are
the largest), it has the widest network interface (24 in / 4 out), and
episode lengths vary strongly across individuals.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box

__all__ = ["BipedalWalker"]


class BipedalWalker(Environment):
    """Reduced-order planar biped with 4 torque-controlled joints."""

    name = "bipedal_walker"
    max_episode_steps = 1600
    reward_threshold = 300.0

    DT = 1.0 / 50.0
    THIGH_LENGTH = 0.45
    SHIN_LENGTH = 0.5
    # nominal hip height above ground; must sit below the fully-extended
    # leg reach (THIGH + SHIN = 0.95) or the feet can never touch down
    HULL_HEIGHT = 0.8
    HIP_LIMIT = (-0.8, 1.1)
    KNEE_LIMIT = (-1.6, -0.1)
    JOINT_SPEED_LIMIT = 4.0
    JOINT_GAIN = 6.0  # torque -> angular acceleration
    JOINT_DAMPING = 1.5
    PITCH_LIMIT = 1.0
    TORQUE_COST = 0.00035 * 80.0
    PROGRESS_SCALE = 130.0 / 30.0  # reward per unit of forward progress
    LIDAR_COUNT = 10
    LIDAR_RANGE = 1.6
    TRACK_LENGTH = 30.0
    TERRAIN_ROUGHNESS = 0.02

    def __init__(self, seed: int | None = None):
        super().__init__(seed)
        high = np.array([np.inf] * 24)
        self.observation_space = Box(-high, high)
        self.action_space = Box(np.full(4, -1.0), np.full(4, 1.0))
        # joints: [hip1, knee1, hip2, knee2] angles and speeds
        self._joints = np.zeros(4)
        self._joint_speeds = np.zeros(4)
        self._hull_x = 0.0
        self._hull_pitch = 0.0
        self._hull_pitch_rate = 0.0
        self._hull_vx = 0.0
        self._hull_vy = 0.0
        self._terrain_phase = 0.0

    # ------------------------------------------------------------- reset
    def _reset(self) -> np.ndarray:
        self._joints = np.array([0.3, -0.6, -0.3, -0.6]) + self._rng.uniform(
            -0.05, 0.05, size=4
        )
        self._joint_speeds = np.zeros(4)
        self._hull_x = 0.0
        self._hull_pitch = self._rng.uniform(-0.05, 0.05)
        self._hull_pitch_rate = 0.0
        self._hull_vx = 0.0
        self._hull_vy = 0.0
        self._terrain_phase = self._rng.uniform(0, 2 * math.pi)
        return self._observation()

    # ----------------------------------------------------------- terrain
    def terrain_height(self, x: float) -> float:
        """Mildly rolling terrain; flat enough to walk on, not trivial."""
        return self.TERRAIN_ROUGHNESS * (
            math.sin(1.7 * x + self._terrain_phase)
            + 0.5 * math.sin(3.1 * x + 2.0 * self._terrain_phase)
        )

    # -------------------------------------------------------- kinematics
    def _foot_position(self, leg: int) -> tuple[float, float]:
        """World-frame foot position for leg 0 or 1."""
        hip, knee = self._joints[2 * leg], self._joints[2 * leg + 1]
        thigh_angle = self._hull_pitch + hip
        shin_angle = thigh_angle + knee
        hip_x = self._hull_x
        hip_y = self.terrain_height(self._hull_x) + self.HULL_HEIGHT
        foot_x = (
            hip_x
            + self.THIGH_LENGTH * math.sin(thigh_angle)
            + self.SHIN_LENGTH * math.sin(shin_angle)
        )
        foot_y = (
            hip_y
            - self.THIGH_LENGTH * math.cos(thigh_angle)
            - self.SHIN_LENGTH * math.cos(shin_angle)
        )
        return foot_x, foot_y

    def _contacts(self) -> tuple[bool, bool]:
        out = []
        for leg in (0, 1):
            fx, fy = self._foot_position(leg)
            out.append(fy <= self.terrain_height(fx) + 0.02)
        return out[0], out[1]

    def _lidar(self) -> np.ndarray:
        """Forward-looking terrain probes, normalized to [0, 1]."""
        readings = np.empty(self.LIDAR_COUNT)
        base_y = self.terrain_height(self._hull_x) + self.HULL_HEIGHT
        for i in range(self.LIDAR_COUNT):
            # rays fan from straight down to ~45 degrees ahead
            frac = i / (self.LIDAR_COUNT - 1)
            dx = frac * self.LIDAR_RANGE
            ground = self.terrain_height(self._hull_x + dx)
            dist = math.hypot(dx, base_y - ground)
            readings[i] = min(dist / self.LIDAR_RANGE, 1.0)
        return readings

    # -------------------------------------------------------------- step
    def _observation(self) -> np.ndarray:
        left_contact, right_contact = self._contacts()
        return np.concatenate(
            [
                [
                    self._hull_pitch,
                    self._hull_pitch_rate,
                    self._hull_vx,
                    self._hull_vy,
                ],
                [
                    self._joints[0],
                    self._joint_speeds[0],
                    self._joints[1],
                    self._joint_speeds[1],
                    float(left_contact),
                ],
                [
                    self._joints[2],
                    self._joint_speeds[2],
                    self._joints[3],
                    self._joint_speeds[3],
                    float(right_contact),
                ],
                self._lidar(),
            ]
        )

    def _step(self, action: Any) -> StepResult:
        torques = np.clip(np.asarray(action, dtype=np.float64).reshape(-1), -1, 1)
        if torques.shape[0] != 4:
            raise ValueError(f"bipedal walker expects 4 torques, got {torques!r}")

        pre_contacts = self._contacts()
        pre_feet = [self._foot_position(0)[0], self._foot_position(1)[0]]

        # joint dynamics: torque-driven with damping and limits
        accel = self.JOINT_GAIN * torques - self.JOINT_DAMPING * self._joint_speeds
        self._joint_speeds = np.clip(
            self._joint_speeds + accel * self.DT,
            -self.JOINT_SPEED_LIMIT,
            self.JOINT_SPEED_LIMIT,
        )
        new_joints = self._joints + self._joint_speeds * self.DT
        for leg in (0, 1):
            lo, hi = self.HIP_LIMIT
            new_joints[2 * leg] = np.clip(new_joints[2 * leg], lo, hi)
            lo, hi = self.KNEE_LIMIT
            new_joints[2 * leg + 1] = np.clip(new_joints[2 * leg + 1], lo, hi)
        # zero speed at the stops
        hit = new_joints != self._joints + self._joint_speeds * self.DT
        self._joint_speeds[hit] = 0.0
        self._joints = new_joints

        # stance-leg propulsion: a foot in ground contact that sweeps
        # backward relative to the hull pushes the hull forward.
        propulsion = 0.0
        stance_legs = 0
        for leg in (0, 1):
            if pre_contacts[leg]:
                stance_legs += 1
                foot_dx = self._foot_position(leg)[0] - pre_feet[leg]
                propulsion += -foot_dx  # backward foot sweep -> forward hull
        if stance_legs:
            self._hull_vx += propulsion / stance_legs / self.DT * 0.9 * self.DT
            self._hull_vx *= 0.92  # stance friction
        else:
            self._hull_vx *= 0.995  # airborne: momentum mostly conserved

        dx = self._hull_vx * self.DT
        prev_height = self.terrain_height(self._hull_x)
        self._hull_x += dx
        self._hull_vy = (self.terrain_height(self._hull_x) - prev_height) / self.DT

        # hull pitch reacts to asymmetric leg configuration
        balance = (self._joints[0] + self._joints[2]) * 0.5
        pitch_accel = -3.0 * self._hull_pitch - 0.8 * self._hull_pitch_rate
        pitch_accel += 0.6 * balance + 0.08 * float(np.sum(torques[:1] - torques[2:3]))
        if not any(pre_contacts):
            pitch_accel -= 1.2  # unsupported hull tips forward
        self._hull_pitch_rate += pitch_accel * self.DT
        self._hull_pitch += self._hull_pitch_rate * self.DT

        # --- reward ---
        reward = self.PROGRESS_SCALE * dx
        reward -= self.TORQUE_COST * float(np.sum(np.abs(torques)))
        reward -= 0.05 * abs(self._hull_pitch)

        done = False
        if abs(self._hull_pitch) > self.PITCH_LIMIT:
            reward -= 100.0
            done = True
        if self._hull_x >= self.TRACK_LENGTH:
            done = True
        if self._hull_x < -0.5:
            done = True

        return self._observation(), reward, done, {"x": self._hull_x}
