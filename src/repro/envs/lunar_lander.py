"""Lunar-lander task (paper's Env5) — Box2D substitution.

Gym's ``LunarLander-v2`` simulates a rigid lander with two legs in Box2D.
Box2D is unavailable offline, so this module implements a simplified
rigid-body lander with the **same interface**: an 8-dimensional
observation ``(x, y, vx, vy, angle, angular velocity, left-leg contact,
right-leg contact)``, four discrete actions (no-op / left thruster /
main engine / right thruster), and the same reward structure (potential
shaping on position/velocity/angle, fuel cost per engine firing, +/-100
terminal bonus, +10 per leg touching down).

The dynamics are 2-D rigid-body mechanics integrated explicitly: gravity,
a main engine thrusting along the body axis, and side thrusters that
apply lateral force plus torque.  This preserves what the paper's
workload needs from the environment — an 8-input/4-output control task
whose episode lengths vary strongly across individuals — while replacing
the contact solver with an analytic touchdown test.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box, Discrete

__all__ = ["LunarLander"]


class LunarLander(Environment):
    """Simplified rigid-body lunar lander with discrete thruster actions."""

    name = "lunar_lander"
    max_episode_steps = 400
    reward_threshold = 200.0

    DT = 1.0 / 50.0
    GRAVITY = -1.6  # lunar gravity, scaled units
    MAIN_ENGINE_ACCEL = 4.0
    SIDE_ENGINE_ACCEL = 1.2
    SIDE_ENGINE_TORQUE = 1.6
    ANGULAR_DAMPING = 0.12
    LEG_SPAN = 0.18  # half-distance between the two leg tips
    HELIPAD_HALF_WIDTH = 0.25
    SAFE_LANDING_SPEED = 0.6
    SAFE_LANDING_ANGLE = 0.35
    FIELD_HALF_WIDTH = 1.5
    START_ALTITUDE = 1.4

    NOOP, LEFT_THRUSTER, MAIN_ENGINE, RIGHT_THRUSTER = range(4)

    def __init__(self, seed: int | None = None):
        super().__init__(seed)
        high = np.array([1.5, 1.5, 5.0, 5.0, math.pi, 5.0, 1.0, 1.0])
        self.observation_space = Box(-high, high)
        self.action_space = Discrete(4)
        # state: x, y, vx, vy, angle, angular velocity
        self._state = np.zeros(6)
        self._prev_shaping: float | None = None

    # ------------------------------------------------------------- reset
    def _reset(self) -> np.ndarray:
        x = self._rng.uniform(-0.3, 0.3)
        vx = self._rng.uniform(-0.4, 0.4)
        vy = self._rng.uniform(-0.4, 0.0)
        angle = self._rng.uniform(-0.1, 0.1)
        self._state = np.array([x, self.START_ALTITUDE, vx, vy, angle, 0.0])
        self._prev_shaping = None
        return self._observation()

    def _observation(self) -> np.ndarray:
        x, y, vx, vy, angle, omega = self._state
        left, right = self._leg_contacts()
        return np.array([x, y, vx, vy, angle, omega, float(left), float(right)])

    def _leg_contacts(self) -> tuple[bool, bool]:
        x, y, _, _, angle, _ = self._state
        # leg tips at +/- LEG_SPAN along the body's lateral axis, below hull
        lx = x - self.LEG_SPAN * math.cos(angle)
        rx = x + self.LEG_SPAN * math.cos(angle)
        ly = y - self.LEG_SPAN * math.sin(-angle)
        ry = y + self.LEG_SPAN * math.sin(-angle)
        del lx, rx  # legs only sense vertical proximity in this model
        return ly <= 0.01, ry <= 0.01

    # -------------------------------------------------------------- step
    def _step(self, action: Any) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self.action_space}")
        action = int(action)
        x, y, vx, vy, angle, omega = self._state

        ax, ay = 0.0, self.GRAVITY
        fuel_cost = 0.0
        if action == self.MAIN_ENGINE:
            # main engine thrusts along the body's "up" axis
            ax += -math.sin(angle) * self.MAIN_ENGINE_ACCEL
            ay += math.cos(angle) * self.MAIN_ENGINE_ACCEL
            fuel_cost = 0.30
        elif action == self.LEFT_THRUSTER:
            ax += self.SIDE_ENGINE_ACCEL * math.cos(angle)
            omega += self.SIDE_ENGINE_TORQUE * self.DT
            fuel_cost = 0.03
        elif action == self.RIGHT_THRUSTER:
            ax += -self.SIDE_ENGINE_ACCEL * math.cos(angle)
            omega -= self.SIDE_ENGINE_TORQUE * self.DT
            fuel_cost = 0.03

        vx += ax * self.DT
        vy += ay * self.DT
        x += vx * self.DT
        y += vy * self.DT
        omega *= 1.0 - self.ANGULAR_DAMPING * self.DT
        angle += omega * self.DT
        angle = ((angle + math.pi) % (2 * math.pi)) - math.pi
        self._state = np.array([x, y, vx, vy, angle, omega])

        # --- reward shaping (mirrors Gym's potential-based shaping) ---
        shaping = (
            -100.0 * math.sqrt(x * x + y * y)
            - 100.0 * math.sqrt(vx * vx + vy * vy)
            - 100.0 * abs(angle)
            + 10.0 * sum(self._leg_contacts())
        )
        reward = 0.0
        if self._prev_shaping is not None:
            reward = shaping - self._prev_shaping
        self._prev_shaping = shaping
        reward -= fuel_cost

        done = False
        if y <= 0.0:
            done = True
            if self._is_safe_landing():
                reward += 100.0
            else:
                reward -= 100.0
        elif abs(x) > self.FIELD_HALF_WIDTH or y > 2.0 * self.START_ALTITUDE:
            done = True
            reward -= 100.0

        return self._observation(), reward, done, {}

    def _is_safe_landing(self) -> bool:
        x, _, vx, vy, angle, _ = self._state
        speed = math.sqrt(vx * vx + vy * vy)
        return (
            abs(x) <= self.HELIPAD_HALF_WIDTH
            and speed <= self.SAFE_LANDING_SPEED
            and abs(angle) <= self.SAFE_LANDING_ANGLE
        )
