"""Environment substrate: from-scratch OpenAI-Gym-style benchmark tasks.

The paper (§VI-A) evaluates on six OpenAI environments.  This package
reimplements them with NumPy (classic-control tasks use the published
Gym dynamics; the two Box2D tasks use reduced-order physics with the
same observation/action interfaces — see DESIGN.md §2).
"""

from repro.envs.acrobot import Acrobot
from repro.envs.base import Environment, StepResult
from repro.envs.bipedal_walker import BipedalWalker
from repro.envs.cartpole import CartPole
from repro.envs.lunar_lander import LunarLander
from repro.envs.mountain_car import MountainCar, MountainCarContinuous
from repro.envs.pendulum import Pendulum
from repro.envs.pong import Pong
from repro.envs.registry import ENV_SUITE, EnvSpec, make, registered_names, spec
from repro.envs.rollout import (
    EpisodeRecord,
    PolicyFn,
    decode_action,
    evaluate_policy,
    run_episode,
)
from repro.envs.spaces import Box, Discrete, Space
from repro.envs.wrappers import (
    ActionRepeat,
    ObservationNoise,
    TimeLimitOverride,
    Wrapper,
)

__all__ = [
    "Acrobot",
    "ActionRepeat",
    "BipedalWalker",
    "Box",
    "CartPole",
    "Discrete",
    "ENV_SUITE",
    "EnvSpec",
    "Environment",
    "EpisodeRecord",
    "LunarLander",
    "MountainCar",
    "MountainCarContinuous",
    "ObservationNoise",
    "Pendulum",
    "Pong",
    "PolicyFn",
    "Space",
    "StepResult",
    "TimeLimitOverride",
    "Wrapper",
    "decode_action",
    "evaluate_policy",
    "make",
    "registered_names",
    "run_episode",
    "spec",
]
