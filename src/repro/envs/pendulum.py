"""Inverted-pendulum swing-up task (paper's Env6).

Gym's ``Pendulum-v1`` dynamics: a frictionless pendulum actuated by a
bounded torque must be swung upright and held there.  The reward is the
negative quadratic cost on angle, angular velocity, and applied torque,
so episode returns are always negative and "solving" means getting close
to zero.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box

__all__ = ["Pendulum"]


def _angle_normalize(x: float) -> float:
    return ((x + math.pi) % (2 * math.pi)) - math.pi


class Pendulum(Environment):
    """Torque-limited pendulum swing-up with quadratic cost."""

    name = "pendulum"
    max_episode_steps = 200
    # Gym defines no official threshold; the paper sets a per-task required
    # fitness.  An average return of -200 is the commonly used "solved" bar.
    reward_threshold = -200.0

    MAX_SPEED = 8.0
    MAX_TORQUE = 2.0
    DT = 0.05
    GRAVITY = 10.0
    MASS = 1.0
    LENGTH = 1.0

    def __init__(
        self,
        seed: int | None = None,
        mass: float | None = None,
        length: float | None = None,
        gravity: float | None = None,
    ):
        """Physics parameters are overridable to model the paper's
        model-tuning scenario (§I): a controller trained on the nominal
        plant is redeployed on a perturbed one (heavier bob, longer rod)
        and adapted in place."""
        super().__init__(seed)
        if mass is not None:
            if mass <= 0:
                raise ValueError("mass must be > 0")
            self.MASS = mass
        if length is not None:
            if length <= 0:
                raise ValueError("length must be > 0")
            self.LENGTH = length
        if gravity is not None:
            self.GRAVITY = gravity
        high = np.array([1.0, 1.0, self.MAX_SPEED])
        self.observation_space = Box(-high, high)
        self.action_space = Box(
            np.array([-self.MAX_TORQUE]), np.array([self.MAX_TORQUE])
        )
        self._state = np.zeros(2)  # (theta, theta_dot)

    def _reset(self) -> np.ndarray:
        theta = self._rng.uniform(-math.pi, math.pi)
        theta_dot = self._rng.uniform(-1.0, 1.0)
        self._state = np.array([theta, theta_dot])
        return self._observation()

    def _observation(self) -> np.ndarray:
        theta, theta_dot = self._state
        return np.array([math.cos(theta), math.sin(theta), theta_dot])

    def _step(self, action: Any) -> StepResult:
        torque = float(
            np.clip(
                np.asarray(action).reshape(-1)[0],
                -self.MAX_TORQUE,
                self.MAX_TORQUE,
            )
        )
        theta, theta_dot = self._state

        cost = (
            _angle_normalize(theta) ** 2
            + 0.1 * theta_dot**2
            + 0.001 * torque**2
        )

        g, m, length, dt = self.GRAVITY, self.MASS, self.LENGTH, self.DT
        theta_dot = theta_dot + (
            3 * g / (2 * length) * math.sin(theta)
            + 3.0 / (m * length**2) * torque
        ) * dt
        theta_dot = float(np.clip(theta_dot, -self.MAX_SPEED, self.MAX_SPEED))
        theta = theta + theta_dot * dt
        self._state = np.array([theta, theta_dot])

        return self._observation(), -cost, False, {}
