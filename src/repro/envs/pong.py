"""Pong-lite: the suite's Atari-class task (paper's Env7).

§VI-A says the evaluation used "a mix of control benchmarks and Atari
games", and Fig 11's caption averages over "Env1-Env7"; footnote 4 only
names the six control tasks, so the seventh is an unnamed Atari game.
The Atari Learning Environment is unavailable offline; this module
provides the closest self-contained equivalent: a RAM-observation Pong
against a tracking opponent.

* observation (6): ball x/y, ball vx/vy, own paddle y, opponent paddle y
  (the "RAM" view Atari agents commonly train on, normalized);
* actions (3): stay / up / down;
* reward: +1 per rally won, -1 per rally lost; an episode is a match to
  ``POINTS_TO_WIN`` points either way;
* the opponent tracks the ball with capped speed and a reaction delay,
  so it is beatable but not trivially.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box, Discrete

__all__ = ["Pong"]


class Pong(Environment):
    """Planar two-paddle pong with RAM-style observations."""

    name = "pong"
    max_episode_steps = 2000
    #: win a 5-point match with a 3-point margin on average
    reward_threshold = 3.0

    FIELD_W = 1.0
    FIELD_H = 1.0
    PADDLE_HALF = 0.1
    PADDLE_SPEED = 0.035
    OPPONENT_SPEED = 0.022
    BALL_SPEED = 0.03
    SPIN = 0.012  # paddle movement deflects the ball
    POINTS_TO_WIN = 5

    STAY, UP, DOWN = range(3)

    def __init__(self, seed: int | None = None):
        super().__init__(seed)
        high = np.array([1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        self.observation_space = Box(-high, high)
        self.action_space = Discrete(3)
        self._ball = np.zeros(2)
        self._ball_v = np.zeros(2)
        self._own_y = 0.5
        self._opp_y = 0.5
        self._own_score = 0
        self._opp_score = 0

    # ------------------------------------------------------------- reset
    def _reset(self) -> np.ndarray:
        self._own_y = 0.5
        self._opp_y = 0.5
        self._own_score = 0
        self._opp_score = 0
        self._serve(direction=1 if self._rng.random() < 0.5 else -1)
        return self._observation()

    def _serve(self, direction: int) -> None:
        self._ball = np.array([0.5, self._rng.uniform(0.3, 0.7)])
        angle = self._rng.uniform(-0.35, 0.35)
        self._ball_v = self.BALL_SPEED * np.array(
            [direction * np.cos(angle), np.sin(angle)]
        )

    def _observation(self) -> np.ndarray:
        # normalized to [-1, 1]-ish around the field center
        return np.array(
            [
                self._ball[0] * 2 - 1,
                self._ball[1] * 2 - 1,
                self._ball_v[0] / self.BALL_SPEED,
                self._ball_v[1] / self.BALL_SPEED,
                self._own_y * 2 - 1,
                self._opp_y * 2 - 1,
            ]
        )

    # -------------------------------------------------------------- step
    def _step(self, action: Any) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self.action_space}")
        action = int(action)

        own_move = 0.0
        if action == self.UP:
            own_move = self.PADDLE_SPEED
        elif action == self.DOWN:
            own_move = -self.PADDLE_SPEED
        self._own_y = float(
            np.clip(self._own_y + own_move, self.PADDLE_HALF,
                    self.FIELD_H - self.PADDLE_HALF)
        )

        # opponent: tracks the ball, but only when it approaches
        if self._ball_v[0] > 0:
            error = self._ball[1] - self._opp_y
            step = float(
                np.clip(error, -self.OPPONENT_SPEED, self.OPPONENT_SPEED)
            )
            self._opp_y = float(
                np.clip(self._opp_y + step, self.PADDLE_HALF,
                        self.FIELD_H - self.PADDLE_HALF)
            )

        self._ball += self._ball_v

        # wall bounces
        if self._ball[1] <= 0.0 or self._ball[1] >= self.FIELD_H:
            self._ball[1] = float(np.clip(self._ball[1], 0.0, self.FIELD_H))
            self._ball_v[1] = -self._ball_v[1]

        reward = 0.0
        # own paddle at x=0, opponent at x=FIELD_W
        if self._ball[0] <= 0.0:
            if abs(self._ball[1] - self._own_y) <= self.PADDLE_HALF:
                self._ball[0] = 0.0
                self._ball_v[0] = abs(self._ball_v[0])
                self._ball_v[1] += self.SPIN * np.sign(own_move)
            else:
                self._opp_score += 1
                reward = -1.0
                self._serve(direction=-1)
        elif self._ball[0] >= self.FIELD_W:
            if abs(self._ball[1] - self._opp_y) <= self.PADDLE_HALF:
                self._ball[0] = self.FIELD_W
                self._ball_v[0] = -abs(self._ball_v[0])
            else:
                self._own_score += 1
                reward = 1.0
                self._serve(direction=1)

        done = (
            self._own_score >= self.POINTS_TO_WIN
            or self._opp_score >= self.POINTS_TO_WIN
        )
        info = {"own_score": self._own_score, "opp_score": self._opp_score}
        return self._observation(), reward, done, info
