"""CartPole balance task (paper's Env1).

Dynamics follow the classic Barto, Sutton & Anderson cart-pole system as
implemented in OpenAI Gym's ``CartPole-v1``: a pole hinged on a cart that
moves along a frictionless track, with a binary push-left/push-right
action.  Reward is +1 per surviving step.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.envs.base import Environment, StepResult
from repro.envs.spaces import Box, Discrete

__all__ = ["CartPole"]


class CartPole(Environment):
    """Cart-pole balancing with Euler-integrated Gym dynamics."""

    name = "cartpole"
    max_episode_steps = 500
    reward_threshold = 475.0

    GRAVITY = 9.8
    CART_MASS = 1.0
    POLE_MASS = 0.1
    POLE_HALF_LENGTH = 0.5
    FORCE_MAG = 10.0
    TAU = 0.02  # seconds between state updates

    X_THRESHOLD = 2.4
    THETA_THRESHOLD = 12 * 2 * math.pi / 360  # ~0.2095 rad

    def __init__(
        self,
        seed: int | None = None,
        pole_mass: float | None = None,
        pole_half_length: float | None = None,
        force_mag: float | None = None,
    ):
        """Physics parameters are overridable for the model-tuning
        scenario (§I): adapt a deployed controller to a perturbed
        plant (heavier or longer pole, weaker actuator)."""
        super().__init__(seed)
        if pole_mass is not None:
            if pole_mass <= 0:
                raise ValueError("pole_mass must be > 0")
            self.POLE_MASS = pole_mass
        if pole_half_length is not None:
            if pole_half_length <= 0:
                raise ValueError("pole_half_length must be > 0")
            self.POLE_HALF_LENGTH = pole_half_length
        if force_mag is not None:
            if force_mag <= 0:
                raise ValueError("force_mag must be > 0")
            self.FORCE_MAG = force_mag
        high = np.array(
            [
                self.X_THRESHOLD * 2,
                np.inf,
                self.THETA_THRESHOLD * 2,
                np.inf,
            ]
        )
        self.observation_space = Box(-high, high)
        self.action_space = Discrete(2)
        self._state = np.zeros(4)

    def _reset(self) -> np.ndarray:
        self._state = self._rng.uniform(-0.05, 0.05, size=4)
        return self._state.copy()

    def _step(self, action: Any) -> StepResult:
        if not self.action_space.contains(action):
            raise ValueError(f"invalid action {action!r} for {self.action_space}")
        # Physics runs on plain Python floats: bit-identical to float64
        # scalar math, several times cheaper than np.float64 scalars, and
        # env.step sits on the generation critical path next to inference.
        x, x_dot, theta, theta_dot = self._state.tolist()
        force = self.FORCE_MAG if int(action) == 1 else -self.FORCE_MAG

        total_mass = self.CART_MASS + self.POLE_MASS
        pole_mass_length = self.POLE_MASS * self.POLE_HALF_LENGTH

        cos_theta = math.cos(theta)
        sin_theta = math.sin(theta)
        temp = (force + pole_mass_length * theta_dot**2 * sin_theta) / total_mass
        theta_acc = (self.GRAVITY * sin_theta - cos_theta * temp) / (
            self.POLE_HALF_LENGTH
            * (4.0 / 3.0 - self.POLE_MASS * cos_theta**2 / total_mass)
        )
        x_acc = temp - pole_mass_length * theta_acc * cos_theta / total_mass

        x += self.TAU * x_dot
        x_dot += self.TAU * x_acc
        theta += self.TAU * theta_dot
        theta_dot += self.TAU * theta_acc
        obs = np.array([x, x_dot, theta, theta_dot])
        self._state = obs

        done = (
            abs(x) > self.X_THRESHOLD or abs(theta) > self.THETA_THRESHOLD
        )
        return obs, 1.0, done, {}
