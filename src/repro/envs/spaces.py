"""Observation and action spaces for the environment substrate.

The paper evaluates E3 on OpenAI Gym environments [5].  Gym is not
available in this offline reproduction, so we provide the two space types
those environments need: :class:`Box` for continuous vectors and
:class:`Discrete` for integer action sets.  The interface mirrors Gym's
closely enough that policies written against either substrate look the
same (``shape``, ``low``, ``high``, ``n``, ``sample``, ``contains``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Space", "Box", "Discrete"]


class Space:
    """Base class for observation/action spaces."""

    def sample(self, rng: np.random.Generator) -> object:
        """Draw a uniformly random element of the space."""
        raise NotImplementedError

    def contains(self, x: object) -> bool:
        """Return True if ``x`` is a valid element of the space."""
        raise NotImplementedError

    @property
    def flat_dim(self) -> int:
        """Dimensionality of the flattened representation.

        For a :class:`Box` this is the number of scalar components; for a
        :class:`Discrete` space it is 1 (the action index itself).  NEAT and
        the RL baselines size their input/output layers from this.
        """
        raise NotImplementedError


class Box(Space):
    """A bounded (possibly unbounded-componentwise) continuous vector space."""

    def __init__(self, low, high, shape: tuple[int, ...] | None = None):
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        if shape is not None:
            low = np.broadcast_to(low, shape).copy()
            high = np.broadcast_to(high, shape).copy()
        if low.shape != high.shape:
            raise ValueError(
                f"low shape {low.shape} does not match high shape {high.shape}"
            )
        if np.any(low > high):
            raise ValueError("every low bound must be <= the matching high bound")
        self.low = low
        self.high = high
        self.shape = low.shape

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        # Unbounded components are sampled from a standard normal, matching
        # Gym's convention, so sampling never overflows.
        low = np.where(np.isfinite(self.low), self.low, -1.0)
        high = np.where(np.isfinite(self.high), self.high, 1.0)
        u = rng.uniform(low, high)
        unbounded = ~(np.isfinite(self.low) & np.isfinite(self.high))
        if np.any(unbounded):
            u = np.where(unbounded, rng.standard_normal(self.shape), u)
        return u

    def contains(self, x: object) -> bool:
        arr = np.asarray(x, dtype=np.float64)
        if arr.shape != self.shape:
            return False
        return bool(np.all(arr >= self.low - 1e-9) and np.all(arr <= self.high + 1e-9))

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clip a vector into the space's bounds."""
        return np.clip(np.asarray(x, dtype=np.float64), self.low, self.high)

    @property
    def flat_dim(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box(shape={self.shape})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Box)
            and self.shape == other.shape
            and np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )


class Discrete(Space):
    """A space of ``n`` integer actions ``{0, 1, ..., n - 1}``."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"a Discrete space needs n >= 1, got {n}")
        self.n = int(n)
        self.shape: tuple[int, ...] = ()

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.n))

    def contains(self, x: object) -> bool:
        try:
            xi = int(x)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
        return 0 <= xi < self.n

    @property
    def flat_dim(self) -> int:
        return 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Discrete({self.n})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Discrete) and self.n == other.n
