"""Static contract linter for the platform's reproducibility invariants.

The platform makes three load-bearing promises that are easy to break
with a one-line edit and expensive to catch at test time:

* **determinism** — the same config and seed produce bit-identical
  fitness trajectories on every backend;
* **telemetry overhead** — disabled telemetry costs one global
  ``None`` check per instrumented site;
* **backend parity** — every registered backend satisfies the shared
  lock-step evaluate surface.

:mod:`repro.lint` enforces those contracts *statically*: a
zero-dependency AST rule engine (:mod:`repro.lint.engine`), the rule
pack encoding the invariants (:mod:`repro.lint.rules`), a committed
baseline for legacy findings (:mod:`repro.lint.baseline`), and text /
JSON reporters (:mod:`repro.lint.report`).  Run it as
``python -m repro.lint [paths]`` or ``python -m repro lint``; suppress
a reviewed exception in-source with ``# repro: noqa[RULE-ID]``.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    default_rules,
    lint_paths,
    register,
    registered_rules,
)
from repro.lint.report import render_json, render_text, to_json_dict

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "default_rules",
    "lint_paths",
    "register",
    "registered_rules",
    "render_json",
    "render_text",
    "to_json_dict",
]
