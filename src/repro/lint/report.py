"""Reporters: render a :class:`LintResult` as human text or JSON.

The JSON schema (version 1) is the machine interface CI archives as an
artifact::

    {
      "version": 1,
      "tool": "repro.lint",
      "ok": true,
      "files_checked": 120,
      "findings": [
        {"rule": "DET001", "severity": "error", "path": "...",
         "line": 10, "col": 4, "message": "...", "fingerprint": "..."}
      ],
      "suppressed": 2,
      "baselined": 0,
      "stale_baseline": [],
      "counts": {"DET001": 1}
    }

``findings`` holds only actionable findings (suppressed/baselined
ones are counted, not listed), sorted by path, line, column, rule —
the same order the text reporter prints.
"""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["REPORT_VERSION", "render_text", "render_json", "to_json_dict"]

REPORT_VERSION = 1


def to_json_dict(result: LintResult) -> dict[str, object]:
    """The schema-stable JSON payload for ``result``."""
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tool": "repro.lint",
        "ok": result.ok,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": len(result.suppressed),
        "baselined": len(result.baselined),
        "stale_baseline": list(result.stale_baseline),
        "counts": dict(sorted(counts.items())),
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_json_dict(result), indent=2)


def render_text(result: LintResult) -> str:
    """``path:line:col: RULE severity: message`` lines plus a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.severity}: {finding.message}"
        )
    summary = (
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"in {result.files_checked} file"
        f"{'' if result.files_checked == 1 else 's'}"
    )
    extras: list[str] = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed by noqa")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.stale_baseline:
        extras.append(
            f"{len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            "(run --update-baseline to expire)"
        )
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    lines.append(summary)
    return "\n".join(lines)
