"""Baseline file: absorb legacy findings without blocking CI.

When a new rule lands, the tree may already contain violations that
predate it.  Rather than blocking every PR until they are all fixed
(or worse, not shipping the rule), the known findings are written to a
committed JSON baseline; CI fails only on findings *not* in the
baseline, so the debt is frozen while new violations are caught.

Entries are keyed by the finding's content fingerprint (path + rule +
source-line text + occurrence index), so unrelated edits that shift
line numbers do not invalidate the baseline.  An entry whose
fingerprint no longer matches anything is *stale* — the violation was
fixed — and is dropped the next time ``--update-baseline`` runs, so
the baseline only ever shrinks unless a human deliberately regrows it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.engine import Finding, LintResult

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The committed set of tolerated legacy findings."""

    #: fingerprint -> descriptive context (rule, path, message)
    entries: dict[str, dict[str, object]] = field(default_factory=dict)

    # ----------------------------------------------------------------- io
    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        file = Path(path)
        if not file.exists():
            return cls()
        payload = json.loads(file.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {file} "
                f"(expected {BASELINE_VERSION})"
            )
        findings = payload.get("findings", {})
        if not isinstance(findings, dict):
            raise ValueError(f"malformed baseline {file}: findings not a map")
        return cls(entries=dict(findings))

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {
                fp: self.entries[fp] for fp in sorted(self.entries)
            },
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    # ------------------------------------------------------------- logic
    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """A baseline absorbing exactly ``findings``."""
        return cls(
            entries={
                f.fingerprint: {
                    "rule": f.rule,
                    "path": f.path,
                    "message": f.message,
                }
                for f in findings
            }
        )

    def apply(self, result: LintResult) -> LintResult:
        """Move baselined findings out of ``result.findings`` in place.

        Returns the same result object with ``baselined`` holding the
        matched findings and ``stale_baseline`` the fingerprints whose
        violations no longer exist.
        """
        keep: list[Finding] = []
        for finding in result.findings:
            if finding.fingerprint in self.entries:
                result.baselined.append(finding)
            else:
                keep.append(finding)
        result.findings = keep
        matched = {f.fingerprint for f in result.baselined}
        result.stale_baseline = sorted(set(self.entries) - matched)
        return result

    def __len__(self) -> int:
        return len(self.entries)
