"""``python -m repro.lint`` — the contract linter's command line.

Exit codes::

    0  clean (no actionable findings)
    1  at least one finding not suppressed or baselined
    2  usage error (bad path, malformed baseline)

``--update-baseline`` rewrites the baseline to exactly the current
findings (absorbing new ones, expiring stale ones) and exits 0, so
adopting a new rule is one command plus one commit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import default_rules, lint_paths
from repro.lint.report import render_json, render_text, to_json_dict

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=(
            "static contract linter: determinism, telemetry-overhead, "
            "backend-parity, and numerical-hygiene invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src if present, "
        "else the current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of tolerated legacy findings",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--json-report",
        default=None,
        metavar="PATH",
        help="additionally write the JSON report to this file "
        "(CI artifact), independent of --format",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule pack (id, title, contract) and exit",
    )
    return parser


def _default_paths() -> list[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _list_rules() -> int:
    for rule in default_rules():
        print(f"{rule.id}  [{rule.severity}] {rule.title}")
        print(f"        contract: {rule.contract}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    result = lint_paths(paths)

    if args.update_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(
            f"baseline {args.baseline} updated: "
            f"{len(result.findings)} finding"
            f"{'' if len(result.findings) == 1 else 's'} absorbed"
        )
        return 0

    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        baseline.apply(result)

    if args.json_report:
        Path(args.json_report).write_text(
            render_json(result) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
