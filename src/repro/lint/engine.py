"""Rule engine: module loading, rule registry, suppressions, fingerprints.

The engine is deliberately small and dependency-free: it parses each
Python file once with :mod:`ast`, hands the parsed
:class:`ModuleInfo` to every registered :class:`Rule`, and turns the
raw ``(line, col, message)`` hits into :class:`Finding` records with
stable fingerprints.  Everything policy-like lives elsewhere — the
rule pack in :mod:`repro.lint.rules`, legacy-finding management in
:mod:`repro.lint.baseline`, rendering in :mod:`repro.lint.report`.

Suppressions
------------

A finding on a line that carries a ``# repro: noqa[RULE-ID]`` comment
(or a bare ``# repro: noqa``, which suppresses every rule) is recorded
as *suppressed* instead of failing the run.  Suppressions are the
reviewed, in-source allowlist — e.g. a deliberately bit-exact float
comparison — while the baseline file exists only to absorb legacy
findings when a new rule lands.

Fingerprints
------------

A finding's fingerprint hashes the file path, rule id, the stripped
source line, and the occurrence index of that (path, rule, line-text)
triple — *not* the line number — so baselined findings survive
unrelated edits that shift code up or down.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, ClassVar, Iterable, Iterator

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "RawFinding",
    "register",
    "registered_rules",
    "default_rules",
    "lint_paths",
    "LintResult",
    "PARSE_ERROR_RULE",
]

#: pseudo-rule id attached to findings for files that fail to parse
PARSE_ERROR_RULE = "PARSE"

#: one raw rule hit before the engine attaches file context
RawFinding = tuple[int, int, str]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\])?",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: stable identity used by the baseline (survives line shifts)
    fingerprint: str

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleInfo:
    """One parsed source file, as every rule sees it."""

    path: Path
    #: forward-slash path as reported in findings (relative when possible)
    relpath: str
    #: dotted module name (``repro.neat.genome``) or ``None`` when the
    #: file is not under a ``repro`` package root (e.g. test fixtures)
    module: str | None
    source: str
    lines: list[str] = field(default_factory=list)
    tree: ast.Module = field(default_factory=lambda: ast.Module(body=[], type_ignores=[]))
    #: line -> suppressed rule ids; ``{"*"}`` means all rules
    noqa: dict[int, set[str]] = field(default_factory=dict)
    _aliases: dict[str, str] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # ------------------------------------------------------ import names
    def import_aliases(self) -> dict[str, str]:
        """Local name -> fully dotted origin, from this module's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from datetime
        import datetime`` maps ``datetime -> datetime.datetime``.  Used
        by rules to resolve attribute chains like ``np.random.rand``
        back to canonical names.  Cached per module.
        """
        if self._aliases is not None:
            return self._aliases
        aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.asname:
                        aliases[name.asname] = name.name
                    else:
                        root = name.name.split(".")[0]
                        aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports resolve within the repo
                for name in node.names:
                    local = name.asname or name.name
                    aliases[local] = f"{node.module}.{name.name}"
        self._aliases = aliases
        return aliases

    def dotted_name(self, node: ast.expr) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        Resolves the chain root through :meth:`import_aliases`, so
        ``np.random.default_rng`` becomes ``numpy.random.default_rng``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.import_aliases().get(node.id, node.id))
        return ".".join(reversed(parts))


class Rule:
    """Base class for one statically-checkable contract.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(line, col, message)`` triples.  ``excluded_packages``
    scopes a rule out of modules where the pattern is the module's
    job (wall-clock reads inside ``repro.telemetry``, say); files that
    are not under a ``repro`` package — fixtures, scratch scripts —
    always get every rule.
    """

    id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    #: one line on which platform guarantee this rule protects
    contract: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    excluded_packages: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        name = module.module
        if name is None:
            return True
        return not any(
            name == pkg or name.startswith(pkg + ".")
            for pkg in self.excluded_packages
        )

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        raise NotImplementedError


# ------------------------------------------------------------------ registry
_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def registered_rules() -> dict[str, type[Rule]]:
    """Copy of the id -> rule-class registry."""
    return dict(_REGISTRY)


def default_rules() -> list[Rule]:
    """Fresh instances of the full rule pack, sorted by id."""
    import repro.lint.rules  # noqa: F401  (populates the registry)

    return [cls() for _, cls in sorted(_REGISTRY.items())]


# ------------------------------------------------------------- file loading
def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths``, sorted, skipping caches."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        else:
            candidates = sorted(root.rglob("*.py"))
        for path in candidates:
            if "__pycache__" in path.parts:
                continue
            resolved = path.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield path


def module_name_for(path: Path) -> str | None:
    """Dotted module name for files under a ``repro`` package root."""
    parts = list(path.resolve().parts)
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[start:]
    dotted[-1] = dotted[-1][:-3] if dotted[-1].endswith(".py") else dotted[-1]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted)


def _relpath(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _noqa_map(lines: list[str]) -> dict[int, set[str]]:
    noqa: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            noqa[lineno] = {"*"}
        else:
            noqa[lineno] = {r.strip() for r in rules.split(",")}
    return noqa


def load_module(path: Path) -> ModuleInfo:
    """Parse one file; raises ``SyntaxError`` when the file won't parse."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=path,
        relpath=_relpath(path),
        module=module_name_for(path),
        source=source,
        lines=lines,
        tree=tree,
        noqa=_noqa_map(lines),
    )


# ------------------------------------------------------------------ running
@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: actionable findings (not suppressed, not baselined)
    findings: list[Finding] = field(default_factory=list)
    #: findings silenced by an in-source ``# repro: noqa`` comment
    suppressed: list[Finding] = field(default_factory=list)
    #: findings matched (and absorbed) by the baseline file
    baselined: list[Finding] = field(default_factory=list)
    #: baseline fingerprints that no longer match anything (expired)
    stale_baseline: list[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def all_raw(self) -> list[Finding]:
        """Findings before baseline filtering (for --update-baseline)."""
        return sorted(
            self.findings + self.baselined,
            key=lambda f: (f.path, f.line, f.col, f.rule),
        )


def _fingerprint(relpath: str, rule: str, line_text: str, index: int) -> str:
    payload = f"{relpath}|{rule}|{line_text.strip()}|{index}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def lint_module(
    module: ModuleInfo, rules: Iterable[Rule]
) -> tuple[list[Finding], list[Finding]]:
    """Run ``rules`` over one module; returns (findings, suppressed)."""
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    occurrence: dict[tuple[str, str], int] = {}
    for rule in rules:
        if not rule.applies_to(module):
            continue
        for line, col, message in sorted(rule.check(module)):
            text = module.line_text(line)
            key = (rule.id, text.strip())
            index = occurrence.get(key, 0)
            occurrence[key] = index + 1
            finding = Finding(
                rule=rule.id,
                severity=rule.severity,
                path=module.relpath,
                line=line,
                col=col,
                message=message,
                fingerprint=_fingerprint(module.relpath, rule.id, text, index),
            )
            marks = module.noqa.get(line, ())
            if "*" in marks or rule.id in marks:
                suppressed.append(finding)
            else:
                findings.append(finding)
    return findings, suppressed


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule] | None = None,
    on_file: Callable[[Path], None] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` with the rule pack.

    Unparsable files produce a ``PARSE`` finding instead of aborting
    the run, so one bad file can't hide the rest of the report.
    Baseline filtering is the caller's job (see
    :meth:`repro.lint.baseline.Baseline.apply`).
    """
    active = list(rules) if rules is not None else default_rules()
    result = LintResult()
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        result.files_checked += 1
        try:
            module = load_module(path)
        except SyntaxError as error:
            relpath = _relpath(path)
            line = error.lineno or 1
            result.findings.append(
                Finding(
                    rule=PARSE_ERROR_RULE,
                    severity="error",
                    path=relpath,
                    line=line,
                    col=error.offset or 0,
                    message=f"file does not parse: {error.msg}",
                    fingerprint=_fingerprint(relpath, PARSE_ERROR_RULE, "", 0),
                )
            )
            continue
        findings, suppressed = lint_module(module, active)
        result.findings.extend(findings)
        result.suppressed.extend(suppressed)
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
