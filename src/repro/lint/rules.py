"""The rule pack: the platform's contracts, statically enforced.

Every rule encodes an invariant the test suite already pins down at
runtime, so a violation is caught at review time instead of by a slow
end-to-end test:

========  ==========================================================
DET001    no global-RNG calls (``random.*``, ``np.random.*``)
DET002    no unseeded RNG construction (``default_rng()``)
DET003    no wall-clock reads (``time.time``, ``datetime.now``)
DET004    no iteration over set expressions (nondeterministic order)
DET005    no mutable default arguments
TEL001    telemetry must stay guarded/off the hot path
PAR001    registered backends must satisfy the shared interface
NUM001    no bit-exact float comparisons in simulation code
RES001    no bare ``except:`` / silently-swallowed ``except Exception``
========  ==========================================================

Determinism rules are scoped out of ``repro.telemetry`` (whose *job*
is wall-clock bookkeeping), ``repro.cli`` (session wiring), and
``repro.lint`` itself; files outside any ``repro`` package — fixtures,
scratch scripts — always get every rule.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from repro.lint.engine import ModuleInfo, RawFinding, Rule, register

__all__ = [
    "GlobalRNGRule",
    "UnseededRNGRule",
    "WallClockRule",
    "SetIterationRule",
    "MutableDefaultRule",
    "UnguardedTelemetryRule",
    "BackendParityRule",
    "FloatEqualityRule",
    "ExceptionHygieneRule",
]

#: packages where wall-clock/RNG use is the module's sanctioned job
_DETERMINISM_EXEMPT = ("repro.telemetry", "repro.lint", "repro.cli")

#: RNG *constructors* — seeded use is fine, so DET001 leaves them to
#: DET002's unseeded check
_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _walk_calls(module: ModuleInfo) -> Iterator[tuple[ast.Call, str | None]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node, module.dotted_name(node.func)


@register
class GlobalRNGRule(Rule):
    """Calls through a module-level RNG break cross-backend parity:
    any extra draw anywhere shifts every subsequent value process-wide,
    so fitness trajectories stop being bit-identical."""

    id: ClassVar[str] = "DET001"
    title: ClassVar[str] = "global RNG call"
    contract: ClassVar[str] = (
        "determinism: identical fitness trajectories on every backend"
    )
    excluded_packages = _DETERMINISM_EXEMPT

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node, name in _walk_calls(module):
            if name is None:
                continue
            parts = name.split(".")
            if parts[0] == "random" and len(parts) == 2:
                # Random()/SystemRandom() constructions are DET002's job
                if parts[1] not in ("Random", "SystemRandom"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"call to global RNG `{name}` — draw from an "
                        "explicitly seeded generator passed in by the "
                        "caller instead",
                    )
            elif (
                len(parts) >= 2
                and parts[0] == "numpy"
                and parts[-2] == "random"
                and parts[-1] not in _RNG_CONSTRUCTORS
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"call to global NumPy RNG `{name}` — use a seeded "
                    "`np.random.Generator` (np.random.default_rng(seed))",
                )


@register
class UnseededRNGRule(Rule):
    """An RNG constructed without a seed is seeded from the OS, so two
    runs of the same configuration diverge immediately."""

    id: ClassVar[str] = "DET002"
    title: ClassVar[str] = "unseeded RNG construction"
    contract: ClassVar[str] = (
        "determinism: same config + seed must reproduce the same run"
    )
    excluded_packages = _DETERMINISM_EXEMPT

    _CONSTRUCTORS = frozenset(
        {
            "numpy.random.default_rng",
            "numpy.random.RandomState",
            "numpy.random.Generator",
            "random.Random",
        }
    )

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node, name in _walk_calls(module):
            if name in self._CONSTRUCTORS and not node.args and not any(
                kw.arg in ("seed", "x") for kw in node.keywords
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"`{name}()` without a seed is nondeterministic — "
                    "thread an explicit seed or Generator through",
                )
            elif name == "random.SystemRandom":
                yield (
                    node.lineno,
                    node.col_offset,
                    "`random.SystemRandom` is entropy-seeded by design "
                    "and can never reproduce",
                )


@register
class WallClockRule(Rule):
    """Wall-clock reads leak real time into simulation state; the
    monotonic `time.perf_counter` is fine for *measuring* but calendar
    time must never feed evolution, environments, or the device."""

    id: ClassVar[str] = "DET003"
    title: ClassVar[str] = "wall-clock read in simulation code"
    contract: ClassVar[str] = (
        "determinism: simulation state independent of real time"
    )
    excluded_packages = _DETERMINISM_EXEMPT

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node, name in _walk_calls(module):
            if name in _WALL_CLOCK:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read `{name}` — use `time.perf_counter` "
                    "for durations; calendar time belongs in "
                    "repro.telemetry manifests only",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


@register
class SetIterationRule(Rule):
    """Set iteration order depends on insertion history and hash
    randomization; fed into genome, innovation, or species processing
    it silently reorders evolution.  Wrap the expression in
    ``sorted(...)`` to fix the order."""

    id: ClassVar[str] = "DET004"
    title: ClassVar[str] = "iteration over a set expression"
    contract: ClassVar[str] = (
        "determinism: stable genome/innovation/species ordering"
    )
    excluded_packages = _DETERMINISM_EXEMPT

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        def hit(iter_node: ast.expr) -> Iterator[RawFinding]:
            if _is_set_expr(iter_node):
                yield (
                    iter_node.lineno,
                    iter_node.col_offset,
                    "iterating a set has no defined order — wrap the "
                    "expression in sorted(...)",
                )

        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from hit(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    yield from hit(generator.iter)


@register
class MutableDefaultRule(Rule):
    """A mutable default is shared across every call, so state leaks
    between invocations — and between runs resumed from checkpoints."""

    id: ClassVar[str] = "DET005"
    title: ClassVar[str] = "mutable default argument"
    contract: ClassVar[str] = "determinism: no hidden cross-call state"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._MUTABLE_CALLS
                )
                if mutable:
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default argument in `{node.name}` — "
                        "default to None and construct inside the body",
                    )


@register
class UnguardedTelemetryRule(Rule):
    """Telemetry is off by default and must cost one ``None`` check
    when disabled.  Chaining directly off ``get_metrics()`` /
    ``get_tracer()`` crashes when telemetry is off (or forces it on),
    and constructing tracers/sessions in hot modules moves allocation
    onto the disabled fast path."""

    id: ClassVar[str] = "TEL001"
    title: ClassVar[str] = "unguarded telemetry construction/use"
    contract: ClassVar[str] = (
        "telemetry overhead: disabled telemetry costs one None check"
    )
    excluded_packages = ("repro.telemetry", "repro.lint", "repro.cli")

    _ACCESSORS = frozenset({"get_metrics", "get_tracer"})
    _SESSION_TYPES = frozenset(
        {
            "Tracer",
            "TelemetrySession",
            "repro.telemetry.TelemetrySession",
            "repro.telemetry.spans.Tracer",
        }
    )

    def _is_accessor(self, module: ModuleInfo, node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        name = module.dotted_name(node.func)
        return name is not None and name.split(".")[-1] in self._ACCESSORS

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and self._is_accessor(
                module, node.value
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    "chained use of get_metrics()/get_tracer() — store "
                    "the result in a local and check it for None first",
                )
            elif isinstance(node, ast.Call):
                name = module.dotted_name(node.func)
                if name in self._SESSION_TYPES or (
                    name is not None
                    and name.split(".")[-1] in ("TelemetrySession",)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"`{name}` constructed in a hot module — sessions "
                        "and tracers are built at the CLI/session layer "
                        "and installed globally",
                    )


def _method_is_concrete(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """False when the body is only ``raise NotImplementedError`` (+doc)."""
    body = list(node.body)
    if body and isinstance(body[0], ast.Expr) and isinstance(
        body[0].value, ast.Constant
    ):
        body = body[1:]  # docstring
    if len(body) != 1 or not isinstance(body[0], ast.Raise):
        return True
    exc = body[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return not (isinstance(exc, ast.Name) and exc.id == "NotImplementedError")


@register
class BackendParityRule(Rule):
    """Every class registered in a ``BACKENDS`` mapping must satisfy
    the shared evaluation surface: a concrete ``_evaluate``, and a
    ``name`` class attribute equal to its registry key — the property
    that lets the CLI, platform, and tests treat backends uniformly."""

    id: ClassVar[str] = "PAR001"
    title: ClassVar[str] = "backend missing the shared interface surface"
    contract: ClassVar[str] = (
        "backend parity: every backend satisfies the lock-step "
        "evaluate interface"
    )

    _REQUIRED_CONCRETE = ("_evaluate",)

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        classes = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef)
        }
        registry: ast.Dict | None = None
        registry_line = 0
        for node in module.tree.body:
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            if any(
                isinstance(t, ast.Name) and t.id == "BACKENDS" for t in targets
            ) and isinstance(value, ast.Dict):
                registry = value
                registry_line = node.lineno
        if registry is None:
            return

        def mro(cls: ast.ClassDef) -> list[ast.ClassDef]:
            chain = [cls]
            seen = {cls.name}
            frontier = cls
            while True:
                base_cls = None
                for base in frontier.bases:
                    if isinstance(base, ast.Name) and base.id in classes:
                        candidate = classes[base.id]
                        if candidate.name not in seen:
                            base_cls = candidate
                            break
                if base_cls is None:
                    return chain
                chain.append(base_cls)
                seen.add(base_cls.name)
                frontier = base_cls

        def concrete_methods(cls: ast.ClassDef) -> dict[str, bool]:
            methods: dict[str, bool] = {}
            for item in cls.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = _method_is_concrete(item)
            return methods

        def class_attr(cls: ast.ClassDef, attr: str) -> ast.expr | None:
            for item in cls.body:
                if isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name) and target.id == attr:
                            return item.value
                elif isinstance(item, ast.AnnAssign) and item.value is not None:
                    if (
                        isinstance(item.target, ast.Name)
                        and item.target.id == attr
                    ):
                        return item.value
            return None

        for key_node, value_node in zip(registry.keys, registry.values):
            if not isinstance(key_node, ast.Constant) or not isinstance(
                key_node.value, str
            ):
                continue
            key = key_node.value
            if not isinstance(value_node, ast.Name):
                continue  # imported backends can't be resolved statically
            cls = classes.get(value_node.id)
            if cls is None:
                yield (
                    value_node.lineno,
                    value_node.col_offset,
                    f"backend {key!r} maps to `{value_node.id}`, which is "
                    "not a class defined in this module",
                )
                continue
            chain = mro(cls)
            for required in self._REQUIRED_CONCRETE:
                impl: bool | None = None
                for klass in chain:
                    methods = concrete_methods(klass)
                    if required in methods:
                        impl = methods[required]
                        break
                if not impl:
                    yield (
                        cls.lineno,
                        cls.col_offset,
                        f"backend {key!r} ({cls.name}) has no concrete "
                        f"`{required}` — every registered backend must "
                        "implement the shared evaluate surface",
                    )
            # the `name` attribute must be overridden and match the key
            name_value: ast.expr | None = None
            for klass in chain[:-1] if len(chain) > 1 else chain:
                name_value = class_attr(klass, "name")
                if name_value is not None:
                    break
            if name_value is None:
                yield (
                    cls.lineno,
                    cls.col_offset,
                    f"backend {key!r} ({cls.name}) never sets the `name` "
                    "class attribute",
                )
            elif not (
                isinstance(name_value, ast.Constant)
                and name_value.value == key
            ):
                yield (
                    name_value.lineno,
                    name_value.col_offset,
                    f"backend {key!r} ({cls.name}) declares a `name` that "
                    f"does not match its registry key at line "
                    f"{registry_line}",
                )


def _catches_catchall(node: ast.expr) -> bool:
    """True when an except clause's type includes Exception/BaseException."""
    if isinstance(node, ast.Tuple):
        return any(_catches_catchall(element) for element in node.elts)
    if isinstance(node, ast.Name):
        return node.id in ("Exception", "BaseException")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Exception", "BaseException")
    return False


def _body_swallows(body: list[ast.stmt]) -> bool:
    """True when a handler body only passes (or holds a bare string)."""
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue
        return False
    return True


@register
class ExceptionHygieneRule(Rule):
    """A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit``
    and hides typos; an ``except Exception: pass`` silently swallows
    faults the resilience layer is supposed to *surface* (quarantine
    events, shard retries, fallback decisions).  Catch the narrowest
    type that the handler actually handles, and do something with it —
    the rare sanctioned swallow (interpreter-teardown guards) carries a
    ``# repro: noqa[RES001]`` marker as the reviewed allowlist."""

    id: ClassVar[str] = "RES001"
    title: ClassVar[str] = "bare or silently-swallowed exception handler"
    contract: ClassVar[str] = (
        "resilience: failures are handled narrowly and surfaced, "
        "never silently swallowed"
    )

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "bare `except:` catches KeyboardInterrupt/SystemExit "
                    "— name the exception types this handler handles",
                )
            elif _catches_catchall(node.type) and _body_swallows(node.body):
                yield (
                    node.lineno,
                    node.col_offset,
                    "`except Exception: pass` silently swallows faults — "
                    "catch the narrow type, or surface/record the error "
                    "(sanctioned swallows carry `# repro: noqa[RES001]`)",
                )


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    """Bit-exact ``==``/``!=`` against float literals is almost always
    a rounding bug in simulation code.  The few deliberate bit-identical
    comparisons (sparsity skips, exact-zero guards) carry a
    ``# repro: noqa[NUM001]`` marker as the reviewed allowlist."""

    id: ClassVar[str] = "NUM001"
    title: ClassVar[str] = "bit-exact float comparison"
    contract: ClassVar[str] = (
        "numerical hygiene: no accidental exact float compares"
    )
    excluded_packages = _DETERMINISM_EXEMPT

    def check(self, module: ModuleInfo) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    _is_float_literal(left) or _is_float_literal(right)
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        "bit-exact float comparison — use a tolerance "
                        "(math.isclose), or mark a deliberate "
                        "bit-identical check with `# repro: noqa[NUM001]`",
                    )
