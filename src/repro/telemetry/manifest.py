"""Run manifest: the "what produced this trace" record.

A trace or metrics file without its run configuration is a puzzle, not
an artifact.  The manifest captures the command, environment, backend,
worker count, seed, and the software platform (Python/NumPy/OS
versions) at run start, and is emitted as the first row of every JSONL
trace and embedded in every metrics JSON file.
"""

from __future__ import annotations

import platform as _platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any

__all__ = ["RunManifest", "git_revision"]


def _numpy_version() -> str:
    try:
        import numpy

        return numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        return "unavailable"


def git_revision(cwd: str | None = None) -> tuple[str, bool]:
    """The checkout's ``(commit_sha, dirty)``, or ``("", False)``.

    Attribution only — never load-bearing: outside a git checkout (or
    without the git binary) runs proceed with an empty commit field.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=True,
        ).stdout
        return commit, bool(status.strip())
    except Exception:
        return "", False


@dataclass
class RunManifest:
    """Everything needed to attribute and reproduce a telemetry file."""

    command: str = ""
    env: str = ""
    backend: str = ""
    workers: int = 0
    population: int = 0
    generations: int = 0
    episodes_per_genome: int = 1
    seed: int = 0
    #: generation-pipelining config (wave schedule, DMA/decode
    #: prefetch, evolve/evaluate overlap) — the paper-baseline defaults
    schedule: str = "arrival"
    prefetch: bool = False
    overlap: bool = False
    #: fabric farm topology (single-device runs keep the defaults)
    devices: int = 1
    islands: int = 1
    migration_interval: int = 0
    migration_size: int = 0
    #: the shared supervisor recovery policy (shard + fabric), as a
    #: plain dict so chaos runs are attributable from the trace alone
    supervisor: dict[str, Any] = field(default_factory=dict)
    #: free-form extras (checkpoint path, sweep axis, ...)
    extra: dict[str, Any] = field(default_factory=dict)
    # -- captured automatically at collection time --
    python_version: str = ""
    platform: str = ""
    numpy_version: str = ""
    created_unix: float = 0.0
    #: exact code state (health.json / bench-trajectory attribution);
    #: empty commit = not a git checkout
    git_commit: str = ""
    git_dirty: bool = False

    @classmethod
    def collect(cls, **fields: Any) -> "RunManifest":
        """Build a manifest, filling platform + git state automatically."""
        commit, dirty = git_revision()
        return cls(
            python_version=sys.version.split()[0],
            platform=_platform.platform(),
            numpy_version=_numpy_version(),
            created_unix=time.time(),
            git_commit=commit,
            git_dirty=dirty,
            **fields,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSONL row for this manifest (the ``type: "manifest"`` schema)."""
        row: dict[str, Any] = {"type": "manifest"}
        row.update(asdict(self))
        return row

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "RunManifest":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in row.items() if k in known})
