"""Unified telemetry: span tracing, metrics, export, run manifests.

The paper's headline results are observability artifacts — the Fig
1(b)/9(d) phase breakdowns, the Eq. (1) PE/PU utilization rates, and
the Fig 9(a) setup/active/control bars.  This package is the single
instrumentation layer those artifacts flow through:

* :mod:`repro.telemetry.spans` — nestable context-manager spans on a
  monotonic clock, recorded into a bounded in-memory tracer;
* :mod:`repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms, plus :class:`~repro.telemetry.metrics.PhaseTimer`, which
  subsumes :class:`repro.core.profiler.PhaseProfiler` behind the same
  API;
* :mod:`repro.telemetry.export` — JSONL and Chrome trace-event sinks
  and the ``trace-summary`` table builder;
* :mod:`repro.telemetry.manifest` — the run manifest emitted at run
  start.

Everything is **off by default**.  A :class:`TelemetrySession` bundles
one tracer + one registry + one manifest; installing it sets the
module-level globals the instrumentation sites check, and uninstalling
restores whatever was there before.  Disabled sites cost one global
``None`` check, and enabling telemetry never touches an RNG or a float
path — deterministic runs stay bit-identical either way.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.export import (
    format_trace_summary,
    read_trace_jsonl,
    summarize_trace,
    validate_trace_jsonl,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    TeeRecorder,
    get_metrics,
    set_metrics,
)
from repro.telemetry.spans import Span, Tracer, get_tracer, set_tracer, span

__all__ = [
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "TeeRecorder",
    "get_metrics",
    "set_metrics",
    "RunManifest",
    "TelemetrySession",
    "write_trace_jsonl",
    "write_chrome_trace",
    "write_metrics_json",
    "read_trace_jsonl",
    "validate_trace_jsonl",
    "summarize_trace",
    "format_trace_summary",
]


class TelemetrySession:
    """One run's telemetry: tracer + metrics registry + manifest.

    Use as a context manager (or call :meth:`install` / :meth:`uninstall`)
    to route the platform's instrumentation here for the session's
    lifetime, then :meth:`export` the results::

        session = TelemetrySession(manifest=RunManifest.collect(...))
        with session:
            E3("cartpole", backend="inax", telemetry=session).run()
        session.export(trace_path="out.jsonl", metrics_path="m.json")
    """

    def __init__(
        self,
        manifest: RunManifest | None = None,
        max_spans: int = 200_000,
    ) -> None:
        self.tracer = Tracer(max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.manifest = manifest
        self.phase_timer = PhaseTimer(self.metrics)
        self._previous: tuple[Tracer | None, MetricsRegistry | None] | None = None

    # --------------------------------------------------------- lifecycle
    @property
    def installed(self) -> bool:
        return self._previous is not None

    def install(self) -> "TelemetrySession":
        """Route global instrumentation into this session (idempotent)."""
        if self._previous is None:
            self._previous = (set_tracer(self.tracer), set_metrics(self.metrics))
        return self

    def uninstall(self) -> None:
        """Restore whatever tracer/registry was installed before."""
        if self._previous is not None:
            previous_tracer, previous_metrics = self._previous
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)
            self._previous = None

    def __enter__(self) -> "TelemetrySession":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------ export
    def export(
        self,
        trace_path: str | Path | None = None,
        chrome_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
    ) -> dict[str, str]:
        """Write the selected sinks; returns ``{sink: path}`` written."""
        written: dict[str, str] = {}
        if trace_path is not None:
            write_trace_jsonl(
                trace_path, self.tracer, manifest=self.manifest,
                metrics=self.metrics,
            )
            written["trace"] = str(trace_path)
        if chrome_path is not None:
            write_chrome_trace(chrome_path, self.tracer, manifest=self.manifest)
            written["chrome"] = str(chrome_path)
        if metrics_path is not None:
            write_metrics_json(metrics_path, self.metrics, manifest=self.manifest)
            written["metrics"] = str(metrics_path)
        return written
