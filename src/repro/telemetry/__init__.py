"""Unified telemetry: span tracing, metrics, export, run manifests.

The paper's headline results are observability artifacts — the Fig
1(b)/9(d) phase breakdowns, the Eq. (1) PE/PU utilization rates, and
the Fig 9(a) setup/active/control bars.  This package is the single
instrumentation layer those artifacts flow through:

* :mod:`repro.telemetry.spans` — nestable context-manager spans on a
  monotonic clock, recorded into a bounded in-memory tracer;
* :mod:`repro.telemetry.metrics` — counters / gauges / fixed-bucket
  histograms, plus :class:`~repro.telemetry.metrics.PhaseTimer`, which
  subsumes :class:`repro.core.profiler.PhaseProfiler` behind the same
  API;
* :mod:`repro.telemetry.export` — JSONL and Chrome trace-event sinks
  and the ``trace-summary`` table builder;
* :mod:`repro.telemetry.manifest` — the run manifest emitted at run
  start.

Everything is **off by default**.  A :class:`TelemetrySession` bundles
one tracer + one registry + one manifest; installing it sets the
context-local variables the instrumentation sites check, and
uninstalling restores whatever was there before — even when sessions
are torn down out of order (an outer session uninstalled while an
inner one is still live leaves the inner session installed).  Disabled
sites cost one context-local ``None`` check, and enabling telemetry
never touches an RNG or a float path — deterministic runs stay
bit-identical either way.  Because the tracer/registry live in
:class:`~contextvars.ContextVar`\\ s, concurrent jobs in one process
(threads, asyncio tasks) each install their own session without
clobbering anyone else's.
"""

from __future__ import annotations

from contextvars import ContextVar
from pathlib import Path

from repro.telemetry.export import (
    format_trace_summary,
    read_trace_jsonl,
    summarize_trace,
    validate_trace_jsonl,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseTimer,
    TeeRecorder,
    get_metrics,
    set_metrics,
)
from repro.telemetry.spans import Span, Tracer, get_tracer, set_tracer, span

__all__ = [
    "Span",
    "Tracer",
    "span",
    "get_tracer",
    "set_tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "TeeRecorder",
    "get_metrics",
    "set_metrics",
    "RunManifest",
    "TelemetrySession",
    "write_trace_jsonl",
    "write_chrome_trace",
    "write_metrics_json",
    "read_trace_jsonl",
    "validate_trace_jsonl",
    "summarize_trace",
    "format_trace_summary",
]


#: installed-session stack for the current execution context, inner
#: sessions last.  Needed to restore correctly on *out-of-order*
#: teardown: uninstalling an outer session while an inner one is live
#: must not re-install the outer session's saved (now stale) state.
_SESSIONS: ContextVar[tuple["TelemetrySession", ...]] = ContextVar(
    "repro_telemetry_sessions", default=()
)


class TelemetrySession:
    """One run's telemetry: tracer + metrics registry + manifest.

    Use as a context manager (or call :meth:`install` / :meth:`uninstall`)
    to route the platform's instrumentation here for the session's
    lifetime, then :meth:`export` the results::

        session = TelemetrySession(manifest=RunManifest.collect(...))
        with session:
            E3("cartpole", backend="inax", telemetry=session).run()
        session.export(trace_path="out.jsonl", metrics_path="m.json")
    """

    def __init__(
        self,
        manifest: RunManifest | None = None,
        max_spans: int = 200_000,
    ) -> None:
        self.tracer = Tracer(max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.manifest = manifest
        self.phase_timer = PhaseTimer(self.metrics)
        self._previous: tuple[Tracer | None, MetricsRegistry | None] | None = None

    # --------------------------------------------------------- lifecycle
    @property
    def installed(self) -> bool:
        return self._previous is not None

    def install(self) -> "TelemetrySession":
        """Route this context's instrumentation here (idempotent)."""
        if self._previous is None:
            self._previous = (set_tracer(self.tracer), set_metrics(self.metrics))
            _SESSIONS.set(_SESSIONS.get() + (self,))
        return self

    def uninstall(self) -> None:
        """Restore whatever tracer/registry was installed before.

        Handles out-of-order teardown: uninstalling an *outer* session
        while an inner one is still installed must not re-install the
        outer session's saved — now stale — tracer/registry over the
        inner session's.  The installed-session stack tells us where
        this session sits; a mid-stack uninstall just relinks the
        session above it to our saved state and leaves the live
        (innermost) session's installation untouched.
        """
        if self._previous is None:
            return
        stack = list(_SESSIONS.get())
        saved_tracer, saved_metrics = self._previous
        if self in stack:
            index = stack.index(self)
            if index == len(stack) - 1:
                # LIFO teardown: we own the current installation.
                set_tracer(saved_tracer)
                set_metrics(saved_metrics)
            else:
                # Out-of-order: the session installed right after us
                # saved *our* tracer/registry as its restore target;
                # re-point it at ours so the chain skips this session.
                stack[index + 1]._previous = self._previous
            stack.pop(index)
            _SESSIONS.set(tuple(stack))
        else:
            # Installed in a different context (e.g. another thread);
            # best effort: restore only if we are still current there.
            if get_tracer() is self.tracer:
                set_tracer(saved_tracer)
                set_metrics(saved_metrics)
        self._previous = None

    def __enter__(self) -> "TelemetrySession":
        return self.install()

    def __exit__(self, *exc: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------ export
    def export(
        self,
        trace_path: str | Path | None = None,
        chrome_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
    ) -> dict[str, str]:
        """Write the selected sinks; returns ``{sink: path}`` written."""
        written: dict[str, str] = {}
        if trace_path is not None:
            write_trace_jsonl(
                trace_path, self.tracer, manifest=self.manifest,
                metrics=self.metrics,
            )
            written["trace"] = str(trace_path)
        if chrome_path is not None:
            write_chrome_trace(chrome_path, self.tracer, manifest=self.manifest)
            written["chrome"] = str(chrome_path)
        if metrics_path is not None:
            write_metrics_json(metrics_path, self.metrics, manifest=self.manifest)
            written["metrics"] = str(metrics_path)
        return written
