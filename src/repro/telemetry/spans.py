"""Nestable tracing spans on a monotonic clock.

A :class:`Span` is one timed region — a NEAT phase, a backend's
generation evaluate, an INAX wave, or a single PU's set-up window —
with structured attributes.  Spans nest: the :class:`Tracer` keeps an
active-span stack, so a ``phase.evaluate`` span recorded by the
population loop becomes the parent of the backend and rollout spans
opened inside it, and the exported trace reconstructs the call tree.

Two clocks coexist in one trace:

* **host spans** (track ``"host"``) are timed with
  ``time.perf_counter`` relative to the tracer's epoch;
* **device spans** (tracks ``"pu0"``, ``"pu1"``, ...) are *derived*
  from INAX cycle counts — the device converts cycles to seconds via
  the FPGA clock and records them with :meth:`Tracer.add_span`, so the
  Fig 9(a) setup/active/control structure is literally visible per PU
  in a trace viewer.

Instrumentation is **off by default**: the module-level :func:`span`
helper checks a single context-local variable and returns a shared
no-op context manager when no tracer is installed, so disabled
telemetry costs one ``None`` check per instrumented region (the guard
benchmark in ``benchmarks/test_telemetry_overhead.py`` keeps this
honest).  The tracer lives in a :class:`~contextvars.ContextVar`, so
concurrent jobs in one process (threads or asyncio tasks) can each
install their own tracer without interfering.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import AbstractContextManager, contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "span",
]


@dataclass
class Span:
    """One finished timed region."""

    name: str
    #: seconds since the tracer's epoch (host) or device reset (PU tracks)
    start: float
    #: seconds
    duration: float
    span_id: int
    parent_id: int | None = None
    #: timeline the span belongs to: ``"host"`` or a device track
    #: (``"inax"``, ``"pu0"``, ``"pu1"``, ...)
    track: str = "host"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def to_dict(self) -> dict[str, Any]:
        """JSONL row for this span (the ``type: "span"`` schema)."""
        row: dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "dur": self.duration,
            "span_id": self.span_id,
        }
        if self.parent_id is not None:
            row["parent_id"] = self.parent_id
        if self.attrs:
            row["attrs"] = self.attrs
        return row


class Tracer:
    """Bounded in-memory recorder of finished spans.

    ``max_spans`` caps memory for long runs: once full, the oldest
    spans drop (counted in :attr:`dropped`) — telemetry must never be
    the thing that OOMs an edge deployment.
    """

    def __init__(self, max_spans: int = 200_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._stack: list[int] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        self.dropped = 0

    # ----------------------------------------------------------- recording
    def now(self) -> float:
        """Seconds since the tracer's epoch (the host timeline)."""
        return time.perf_counter() - self._epoch

    @contextmanager
    def span(
        self, name: str, track: str = "host", **attrs: Any
    ) -> Iterator[None]:
        """Time a block as a span; nesting sets the parent linkage."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        t0 = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - t0
            self._stack.pop()
            self._append(
                Span(
                    name=name,
                    start=t0 - self._epoch,
                    duration=duration,
                    span_id=span_id,
                    parent_id=parent,
                    track=track,
                    attrs=attrs,
                )
            )

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        track: str = "host",
        parent_id: int | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an explicitly-clocked span (e.g. cycles mapped to
        seconds by the INAX device); returns the recorded span."""
        if duration < 0:
            raise ValueError(f"negative duration for {name!r}: {duration}")
        span_id = self._next_id
        self._next_id += 1
        recorded = Span(
            name=name,
            start=start,
            duration=duration,
            span_id=span_id,
            parent_id=parent_id,
            track=track,
            attrs=attrs,
        )
        self._append(recorded)
        return recorded

    def _append(self, item: Span) -> None:
        if len(self._spans) == self.max_spans:
            self.dropped += 1
        self._spans.append(item)

    # -------------------------------------------------------------- views
    @property
    def spans(self) -> list[Span]:
        """Copy of the recorded spans, oldest first."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def seconds_by_name(self, prefix: str = "") -> dict[str, float]:
        """Total duration per span name (optionally name-prefixed)."""
        totals: dict[str, float] = {}
        for item in self._spans:
            if prefix and not item.name.startswith(prefix):
                continue
            totals[item.name] = totals.get(item.name, 0.0) + item.duration
        return totals


# ----------------------------------------------------------- context-local
#: the installed tracer; ``None`` means telemetry is disabled.  A
#: :class:`~contextvars.ContextVar` rather than a module global so
#: concurrent runs (asyncio tasks, per-job service threads) each see
#: their own tracer: a fresh thread or a copied asyncio context starts
#: from the default and installs its own session without clobbering
#: anyone else's.
_TRACER: ContextVar[Tracer | None] = ContextVar("repro_tracer", default=None)
#: shared reusable no-op context manager for the disabled fast path
_NULL_SPAN: AbstractContextManager[None] = nullcontext()


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when telemetry is disabled."""
    return _TRACER.get()


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with ``None``) the context's tracer.

    Returns the previously-installed tracer so callers can restore it.
    The installation is scoped to the current execution context: other
    threads and sibling asyncio tasks are unaffected.
    """
    previous = _TRACER.get()
    _TRACER.set(tracer)
    return previous


def span(
    name: str, track: str = "host", **attrs: Any
) -> AbstractContextManager[None]:
    """Module-level span helper with a near-zero disabled fast path.

    ``with span("phase.evaluate", generation=g): ...`` records into the
    installed tracer, or is a shared no-op context manager when none is
    installed.
    """
    tracer = _TRACER.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, track=track, **attrs)
