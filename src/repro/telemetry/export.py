"""Telemetry sinks: JSONL, Chrome trace-event JSON, and summaries.

Three output formats, one source of truth:

* **JSONL** (:func:`write_trace_jsonl`) — one self-describing JSON
  object per line (``type`` = ``manifest`` / ``span`` / ``metric``).
  Greppable, streamable, and schema-checked by
  :func:`validate_trace_jsonl` (CI validates every smoke trace).
* **Chrome trace-event JSON** (:func:`write_chrome_trace`) — loadable
  in ``chrome://tracing`` / Perfetto.  Host spans render as one
  process; the INAX device renders as a second process with **one
  track per PU**, so Fig 9(a)'s setup / active / drain structure is
  literally visible on a timeline.
* **metrics JSON** (:func:`write_metrics_json`) — the registry
  snapshot plus the run manifest.

:func:`summarize_trace` re-derives the Fig 1(b)/9(d) phase table and
the per-PU utilization table from a JSONL file — what the ``repro
trace-summary`` CLI command prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, Tracer

__all__ = [
    "write_trace_jsonl",
    "write_chrome_trace",
    "write_metrics_json",
    "read_trace_jsonl",
    "validate_trace_jsonl",
    "validate_record",
    "TraceSummary",
    "summarize_trace",
    "format_trace_summary",
]


# --------------------------------------------------------------- writers
def write_trace_jsonl(
    path: str | Path,
    tracer: Tracer,
    manifest: RunManifest | None = None,
    metrics: MetricsRegistry | None = None,
) -> int:
    """Write a run's telemetry as JSONL; returns the number of rows.

    Row order: manifest (if any), spans oldest-first, metrics.  Every
    row carries a ``type`` discriminator so readers can stream-filter.
    """
    rows = 0
    with open(path, "w") as handle:
        if manifest is not None:
            handle.write(json.dumps(manifest.to_dict()) + "\n")
            rows += 1
        for item in tracer.spans:
            handle.write(json.dumps(item.to_dict()) + "\n")
            rows += 1
        if metrics is not None:
            for name, state in metrics.snapshot().items():
                row = {"type": "metric", "name": name}
                row.update(state)
                handle.write(json.dumps(row) + "\n")
                rows += 1
    return rows


#: track name -> (pid, process label) for the Chrome trace; host spans
#: and device spans live on separate clocks, hence separate processes
_HOST_PID = 0
_DEVICE_PID = 1


def _chrome_tid(track: str) -> tuple[int, int]:
    """Map a span track to a Chrome (pid, tid)."""
    if track.startswith("pu") and track[2:].isdigit():
        return _DEVICE_PID, int(track[2:]) + 1
    if track == "inax":
        return _DEVICE_PID, 0
    return _HOST_PID, 0


def write_chrome_trace(
    path: str | Path,
    tracer: Tracer,
    manifest: RunManifest | None = None,
) -> int:
    """Write a ``chrome://tracing`` trace-event file; returns #events.

    Timestamps are microseconds.  Device spans were recorded in seconds
    already (cycles / FPGA clock), so both processes share the unit.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _HOST_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "host"},
        }
    ]
    seen_tracks: set[str] = set()
    for item in tracer.spans:
        pid, tid = _chrome_tid(item.track)
        if item.track not in seen_tracks:
            seen_tracks.add(item.track)
            if pid == _DEVICE_PID:
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "name": "process_name",
                        "args": {"name": "inax-device"},
                    }
                )
                events.append(
                    {
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "name": "thread_name",
                        "args": {"name": item.track},
                    }
                )
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "name": item.name,
                "ts": item.start * 1e6,
                "dur": item.duration * 1e6,
                "args": dict(item.attrs),
            }
        )
    payload: dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if manifest is not None:
        payload["otherData"] = manifest.to_dict()
    Path(path).write_text(json.dumps(payload))
    return len(events)


def write_metrics_json(
    path: str | Path,
    metrics: MetricsRegistry,
    manifest: RunManifest | None = None,
) -> None:
    """Write the metrics snapshot (plus manifest) as one JSON object."""
    payload: dict[str, Any] = {
        "manifest": manifest.to_dict() if manifest is not None else None,
        "metrics": metrics.snapshot(),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


# --------------------------------------------------------------- readers
def read_trace_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse a JSONL trace file into a list of row dicts."""
    rows: list[dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


#: required fields per row type: name -> allowed python types
_SPAN_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "name": str,
    "track": str,
    "start": (int, float),
    "dur": (int, float),
    "span_id": int,
}
_METRIC_KINDS = ("counter", "gauge", "histogram")


def validate_record(row: dict[str, Any]) -> list[str]:
    """Schema-check one JSONL row; returns a list of problems."""
    errors: list[str] = []
    kind = row.get("type")
    if kind == "span":
        for key, types in _SPAN_SCHEMA.items():
            if key not in row:
                errors.append(f"span missing {key!r}")
            elif not isinstance(row[key], types):
                errors.append(f"span field {key!r} has wrong type")
        if isinstance(row.get("start"), (int, float)) and row["start"] < 0:
            errors.append("span start is negative")
        if isinstance(row.get("dur"), (int, float)) and row["dur"] < 0:
            errors.append("span dur is negative")
        if "attrs" in row and not isinstance(row["attrs"], dict):
            errors.append("span attrs must be an object")
    elif kind == "metric":
        if not isinstance(row.get("name"), str):
            errors.append("metric missing name")
        if row.get("kind") not in _METRIC_KINDS:
            errors.append(f"unknown metric kind {row.get('kind')!r}")
        elif row["kind"] == "histogram":
            for key in ("buckets", "counts", "sum", "count"):
                if key not in row:
                    errors.append(f"histogram missing {key!r}")
    elif kind == "manifest":
        for key in ("command", "backend", "python_version"):
            if not isinstance(row.get(key), str):
                errors.append(f"manifest missing {key!r}")
    else:
        errors.append(f"unknown row type {kind!r}")
    return errors


def validate_trace_jsonl(path: str | Path) -> list[str]:
    """Validate a whole JSONL file; returns ``line N: problem`` strings."""
    errors: list[str] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                errors.append(f"line {lineno}: invalid JSON ({error})")
                continue
            for problem in validate_record(row):
                errors.append(f"line {lineno}: {problem}")
    return errors


# --------------------------------------------------------------- summary
#: span-name prefix the NEAT loop uses for its phase spans
PHASE_PREFIX = "phase."


@dataclass
class TraceSummary:
    """Everything ``repro trace-summary`` prints, as data."""

    manifest: dict[str, Any] | None = None
    #: phase -> total seconds, from ``phase.*`` host spans
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: per-PU rows: track -> {setup/compute/drain/active cycles, steps}
    pu_cycles: dict[str, dict[str, float]] = field(default_factory=dict)
    span_count: int = 0
    metric_count: int = 0

    def phase_fractions(self) -> dict[str, float]:
        total = sum(self.phase_seconds.values())
        if total <= 0:
            return {k: 0.0 for k in self.phase_seconds}
        return {k: v / total for k, v in self.phase_seconds.items()}

    def pu_utilization(self, track: str) -> float:
        """Per-PU U(PU): (setup + active) / provisioned span, Eq. (1)."""
        row = self.pu_cycles[track]
        provisioned = row["setup"] + row["compute"] + row["drain"]
        if provisioned <= 0:
            return 0.0
        return min((row["setup"] + row["active"]) / provisioned, 1.0)

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form (``repro trace-summary --json``)."""
        return {
            "manifest": dict(self.manifest) if self.manifest else None,
            "phase_seconds": dict(self.phase_seconds),
            "phase_fractions": self.phase_fractions(),
            "pu_cycles": {
                track: dict(row) for track, row in self.pu_cycles.items()
            },
            "pu_utilization": {
                track: self.pu_utilization(track) for track in self.pu_cycles
            },
            "span_count": self.span_count,
            "metric_count": self.metric_count,
        }


def summarize_trace(
    path_or_rows: str | Path | Iterable[dict[str, Any]],
) -> TraceSummary:
    """Build a :class:`TraceSummary` from a JSONL path or parsed rows."""
    if isinstance(path_or_rows, (str, Path)):
        rows = read_trace_jsonl(path_or_rows)
    else:
        rows = list(path_or_rows)
    summary = TraceSummary()
    for row in rows:
        kind = row.get("type")
        if kind == "manifest" and summary.manifest is None:
            summary.manifest = row
        elif kind == "metric":
            summary.metric_count += 1
        elif kind == "span":
            summary.span_count += 1
            name = row.get("name", "")
            track = row.get("track", "host")
            if name.startswith(PHASE_PREFIX):
                phase = name[len(PHASE_PREFIX) :]
                summary.phase_seconds[phase] = (
                    summary.phase_seconds.get(phase, 0.0) + row["dur"]
                )
            elif track.startswith("pu"):
                attrs = row.get("attrs", {})
                bucket = {"pu.setup": "setup", "pu.compute": "compute",
                          "pu.drain": "drain"}.get(name)
                if bucket is None:
                    continue
                pu = summary.pu_cycles.setdefault(
                    track,
                    {"setup": 0.0, "compute": 0.0, "drain": 0.0,
                     "active": 0.0, "steps": 0},
                )
                pu[bucket] += attrs.get("cycles", 0)
                if bucket == "compute":
                    pu["active"] += attrs.get("active_cycles", 0)
                    pu["steps"] += attrs.get("steps", 0)
    return summary


def _pu_sort_key(track: str) -> tuple[int, int, str]:
    # numeric tracks first in numeric order, then anything odd lexically
    if track[2:].isdigit():
        return (0, int(track[2:]), "")
    return (1, 0, track)


def format_trace_summary(summary: TraceSummary) -> str:
    """Render the phase + PU tables as plain text."""
    from repro.core.results import format_table

    blocks: list[str] = []
    if summary.manifest is not None:
        m = summary.manifest
        blocks.append(
            f"run: command={m.get('command') or '?'} env={m.get('env') or '?'} "
            f"backend={m.get('backend') or '?'} seed={m.get('seed')} "
            f"workers={m.get('workers')}"
        )
    fractions = summary.phase_fractions()
    if summary.phase_seconds:
        rows = [
            [phase, f"{seconds:.4f}", f"{fractions[phase] * 100:.1f}%"]
            for phase, seconds in sorted(
                summary.phase_seconds.items(), key=lambda kv: -kv[1]
            )
        ]
        blocks.append(
            format_table(
                ["phase", "seconds", "fraction"],
                rows,
                title="host phases (Fig 1(b)/9(d))",
            )
        )
    else:
        blocks.append("no phase spans recorded")
    if summary.pu_cycles:
        rows = []
        for track in sorted(summary.pu_cycles, key=_pu_sort_key):
            pu = summary.pu_cycles[track]
            rows.append(
                [
                    track,
                    f"{pu['setup']:,.0f}",
                    f"{pu['compute']:,.0f}",
                    f"{pu['drain']:,.0f}",
                    f"{pu['steps']:,d}",
                    f"{summary.pu_utilization(track):.3f}",
                ]
            )
        blocks.append(
            format_table(
                ["PU", "setup cyc", "compute cyc", "drain cyc", "steps",
                 "U(PU)"],
                rows,
                title="INAX PU timeline (Fig 9(a))",
            )
        )
    blocks.append(
        f"{summary.span_count} spans, {summary.metric_count} metrics"
    )
    return "\n\n".join(blocks)
