"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single store for everything the platform counts —
episode steps, lock-step wave sizes, decode-cache hits/misses, and the
per-generation phase seconds that :class:`repro.core.profiler.
PhaseProfiler` used to be the only home for.  :class:`PhaseTimer`
re-exposes the profiler's exact API (``record`` / ``phase`` /
``fractions`` / ``merge``) on top of registry counters, so phase
timing, cache statistics, and workload histograms all land in one
snapshot and one exported JSON file.

Like the tracer, the registry is off by default: call sites check the
module-level :func:`get_metrics` for ``None`` before touching any
metric, so disabled telemetry costs one global read per site.
"""

from __future__ import annotations

import bisect
import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Protocol, Sequence, TypeVar, cast

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "TeeRecorder",
    "get_metrics",
    "set_metrics",
]


class Counter:
    """Monotonically-increasing value (counts or accumulated seconds)."""

    __slots__ = ("name", "description", "value")
    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-set value (cache size, best fitness, pool width)."""

    __slots__ = ("name", "description", "value")
    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


#: default bucket ladder: powers of two cover episode lengths and wave
#: sizes from trivial CartPole failures up to BipedalWalker horizons
DEFAULT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus overflow)."""

    __slots__ = (
        "name",
        "description",
        "buckets",
        "counts",
        "total",
        "count",
        "min",
        "max",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> None:
        upper = tuple(sorted(float(b) for b in buckets))
        if not upper:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.description = description
        self.buckets = upper
        #: counts[i] = observations <= buckets[i]; counts[-1] = overflow
        self.counts = [0] * (len(upper) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Deterministic bucket-resolution quantile estimate.

        Walks the cumulative counts to the bucket holding the q-th
        observation and returns that bucket's upper bound, clamped to
        the observed ``min``/``max`` (the overflow bucket reports
        ``max``).  Pure integer/float arithmetic over recorded state —
        two identical observation streams always summarize identically.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        # rank of the q-th observation, 1-based (nearest-rank method)
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index >= len(self.buckets):  # overflow bucket
                    return self.max
                bound = self.buckets[index]
                return min(max(bound, self.min), self.max)
        return self.max  # pragma: no cover - count guarantees a hit

    def quantiles(self) -> dict[str, float | None]:
        """The snapshot's tail-latency summary: p50 / p95 / p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "quantiles": self.quantiles(),
        }


#: any concrete metric class, for the get-or-create accessors
M = TypeVar("M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named metrics with get-or-create accessors and snapshot/merge."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # ---------------------------------------------------------- accessors
    def _get_or_create(self, name: str, factory: Callable[[], M], kind: str) -> M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        # the kind check above guarantees the stored metric matches the
        # factory's class, which the type system cannot see
        return cast(M, metric)

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, description), "counter"
        )

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, description), "gauge"
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        description: str = "",
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets, description), "histogram"
        )

    # ------------------------------------------------------------- views
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-serializable ``name -> metric state`` mapping."""
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._metrics.items())
        }

    # ------------------------------------------------------------- merge
    def merge_snapshot(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram counts add; gauges take the incoming
        value (last write wins).  This is how ``cpu-fast`` worker shards
        ship their telemetry back to the parent process.
        """
        for name, state in snapshot.items():
            kind = state.get("kind")
            if kind == "counter":
                self.counter(name).inc(state["value"])
            elif kind == "gauge":
                self.gauge(name).set(state["value"])
            elif kind == "histogram":
                hist = self.histogram(name, buckets=state["buckets"])
                if list(hist.buckets) != [float(b) for b in state["buckets"]]:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge"
                    )
                for i, c in enumerate(state["counts"]):
                    hist.counts[i] += c
                hist.total += state["sum"]
                hist.count += state["count"]
                if state["count"]:
                    hist.min = min(hist.min, state["min"])
                    hist.max = max(hist.max, state["max"])
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")


class PhaseTimer:
    """:class:`~repro.core.profiler.PhaseProfiler`'s API over a registry.

    Each phase becomes a ``<prefix>.<phase>_seconds`` counter, so the
    Fig 1(b)/9(d) phase breakdown ships in the same metrics snapshot as
    everything else while existing ``fractions()`` consumers keep
    working unchanged.
    """

    PREFIX = "phase"
    SUFFIX = "_seconds"

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def _counter_name(self, phase: str) -> str:
        return f"{self.PREFIX}.{phase}{self.SUFFIX}"

    def record(self, phase: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative duration for {phase!r}: {seconds}")
        self.registry.counter(self._counter_name(phase)).inc(seconds)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - t0)

    # ------------------------------------------------------------- views
    @property
    def phases(self) -> dict[str, float]:
        prefix = f"{self.PREFIX}."
        out: dict[str, float] = {}
        for name in self.registry.names():
            if name.startswith(prefix) and name.endswith(self.SUFFIX):
                phase = name[len(prefix) : -len(self.SUFFIX)]
                out[phase] = self.registry.counter(name).value
        return out

    def seconds(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def fractions(self) -> dict[str, float]:
        phases = self.phases
        total = sum(phases.values())
        if total <= 0:
            return {k: 0.0 for k in phases}
        return {k: v / total for k, v in phases.items()}

    def merge(self, other: "_HasPhases") -> None:
        """Accumulate another PhaseTimer/PhaseProfiler's phases."""
        for phase, seconds in other.phases.items():
            self.record(phase, seconds)


class _HasPhases(Protocol):
    """Anything exposing a ``phases`` mapping (PhaseTimer, PhaseProfiler)."""

    @property
    def phases(self) -> dict[str, float]: ...


class _PhaseRecorder(Protocol):
    """Anything accepting ``record(phase, seconds)`` calls."""

    def record(self, phase: str, seconds: float) -> None: ...


class TeeRecorder:
    """Fan one ``record(phase, seconds)`` out to several recorders.

    Lets the population keep feeding its :class:`PhaseProfiler` while a
    telemetry session's :class:`PhaseTimer` sees the same stream.
    """

    def __init__(self, *recorders: _PhaseRecorder) -> None:
        self.recorders: tuple[_PhaseRecorder, ...] = tuple(recorders)

    def record(self, phase: str, seconds: float) -> None:
        for recorder in self.recorders:
            recorder.record(phase, seconds)


# ------------------------------------------------------------------ global
#: the installed registry, context-local for the same reason as the
#: tracer: concurrent jobs each install their own without clobbering
#: each other (see :mod:`repro.telemetry.spans`).
_METRICS: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics", default=None
)


def get_metrics() -> MetricsRegistry | None:
    """The installed registry, or ``None`` when telemetry is disabled."""
    return _METRICS.get()


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or clear) the context's registry; returns the previous
    one so callers can restore it."""
    previous = _METRICS.get()
    _METRICS.set(registry)
    return previous
