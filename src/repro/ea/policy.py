"""Fixed-topology policy for the ES/GA baselines.

The paper's EA column (Table IV, §II-B) covers methods like OpenAI-ES
[35] and deep-GA [43] that evolve only the *weights* of a human-defined
topology.  This wrapper exposes an MLP policy as a flat parameter
vector so those optimizers can treat it as a black box, and as an
env-compatible policy function for fitness evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.envs.base import Environment
from repro.envs.rollout import evaluate_policy
from repro.rl.nn import MLP

__all__ = ["FixedTopologyPolicy"]


class FixedTopologyPolicy:
    """An MLP policy with a flat-parameter view."""

    def __init__(
        self,
        env: Environment,
        hidden: tuple[int, ...] = (64, 64),
        rng: np.random.Generator | None = None,
    ):
        # a bare construction must still be reproducible: fall back to a
        # fixed seed, never the OS entropy pool
        rng = rng if rng is not None else np.random.default_rng(0)
        self.env_type = type(env)
        self.net = MLP([env.num_inputs, *hidden, env.num_outputs], rng=rng)
        self._shapes = [p.shape for p in self.net.parameters]
        self._sizes = [p.size for p in self.net.parameters]

    @property
    def num_parameters(self) -> int:
        return sum(self._sizes)

    # ------------------------------------------------------- flat params
    def get_flat(self) -> np.ndarray:
        return np.concatenate([p.reshape(-1) for p in self.net.parameters])

    def set_flat(self, flat: np.ndarray) -> None:
        flat = np.asarray(flat, dtype=np.float64).reshape(-1)
        if flat.shape[0] != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {flat.shape[0]}"
            )
        offset = 0
        for param, size, shape in zip(
            self.net.parameters, self._sizes, self._shapes
        ):
            param[...] = flat[offset : offset + size].reshape(shape)
            offset += size

    # ---------------------------------------------------------- evaluate
    def policy_fn(self):
        """A raw-output policy function for :mod:`repro.envs.rollout`."""

        def policy(obs: np.ndarray) -> np.ndarray:
            return self.net.predict(obs[None, :]).reshape(-1)

        return policy

    def fitness(
        self,
        flat: np.ndarray,
        episodes: int = 1,
        seed: int = 0,
        max_steps: int | None = None,
    ) -> float:
        """Episode-averaged reward of parameter vector ``flat``."""
        self.set_flat(flat)
        env = self.env_type(seed=seed)
        seeds = [seed + i for i in range(episodes)]
        return evaluate_policy(
            env, self.policy_fn(), episodes=episodes, seeds=seeds,
            max_steps=max_steps,
        )
