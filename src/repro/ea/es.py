"""OpenAI-style Evolution Strategies [35].

The gradient-free weight optimizer the paper groups under "EA (ES/GA)":
perturb a central parameter vector with mirrored Gaussian noise,
evaluate every perturbation (pure inference — exactly the workload E3
accelerates), and move the center along the rank-weighted noise
average.  No backprop, ~2x-parameter memory (Table IV's EA column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["ESConfig", "ESResult", "OpenAIES", "centered_ranks"]

FitnessFn = Callable[[np.ndarray, int], float]


def centered_ranks(values: np.ndarray) -> np.ndarray:
    """Rank-transform fitnesses to [-0.5, 0.5] (OpenAI-ES shaping).

    Robust to fitness scale and outliers; constant inputs map to zeros.
    """
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if values.size == 1:
        return np.zeros(1)
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[np.argsort(values)] = np.arange(values.size)
    return ranks / (values.size - 1) - 0.5


@dataclass
class ESConfig:
    """OpenAI-ES hyperparameters."""

    population_size: int = 64  # noise pairs = population_size // 2
    sigma: float = 0.1
    learning_rate: float = 0.02
    #: L2 decay toward zero, as in the reference implementation
    weight_decay: float = 0.005

    def __post_init__(self) -> None:
        if self.population_size < 2 or self.population_size % 2:
            raise ValueError("population_size must be an even number >= 2")
        if self.sigma <= 0:
            raise ValueError("sigma must be > 0")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")


@dataclass
class ESResult:
    """Outcome of an ES run."""

    best_params: np.ndarray
    best_fitness: float
    generations: int
    solved: bool
    history: list[float] = field(default_factory=list)
    evaluations: int = 0


class OpenAIES:
    """Mirrored-sampling evolution strategy over a flat parameter vector."""

    def __init__(
        self,
        num_parameters: int,
        config: ESConfig | None = None,
        seed: int | None = None,
    ):
        self.config = config or ESConfig()
        self.rng = np.random.default_rng(seed)
        self.theta = np.zeros(num_parameters)
        self.evaluations = 0

    def ask(self) -> np.ndarray:
        """Sample the generation's candidate parameter vectors.

        Returns an array of shape ``(population_size, num_parameters)``
        built from mirrored noise: row 2i uses +eps_i, row 2i+1 uses
        -eps_i.  The noise is recoverable from the candidates, so only
        the center vector and one half of the noise table live in
        memory — the EA column's light footprint.
        """
        half = self.config.population_size // 2
        self._noise = self.rng.standard_normal((half, self.theta.size))
        candidates = np.empty((self.config.population_size, self.theta.size))
        candidates[0::2] = self.theta + self.config.sigma * self._noise
        candidates[1::2] = self.theta - self.config.sigma * self._noise
        return candidates

    def tell(self, fitnesses: np.ndarray) -> None:
        """Update the center from the candidates' fitnesses."""
        fitnesses = np.asarray(fitnesses, dtype=np.float64).reshape(-1)
        if fitnesses.shape[0] != self.config.population_size:
            raise ValueError(
                f"expected {self.config.population_size} fitnesses, "
                f"got {fitnesses.shape[0]}"
            )
        shaped = centered_ranks(fitnesses)
        # mirrored estimator: (f+ - f-) weights the shared noise row
        pair_weights = shaped[0::2] - shaped[1::2]
        gradient = pair_weights @ self._noise
        gradient /= self.config.population_size * self.config.sigma
        self.theta = (
            self.theta * (1.0 - self.config.weight_decay)
            + self.config.learning_rate * gradient
        )

    # ------------------------------------------------------------- run
    def run(
        self,
        fitness_fn: FitnessFn,
        max_generations: int = 100,
        fitness_threshold: float | None = None,
        eval_seed: int = 0,
    ) -> ESResult:
        """Optimize until the threshold or the generation cap.

        ``fitness_fn(params, seed)`` must return the episode fitness of
        one candidate.
        """
        best_params = self.theta.copy()
        best_fitness = float("-inf")
        history: list[float] = []
        solved = False
        for generation in range(max_generations):
            candidates = self.ask()
            fitnesses = np.array(
                [
                    fitness_fn(candidate, eval_seed + generation)
                    for candidate in candidates
                ]
            )
            self.evaluations += len(candidates)
            self.tell(fitnesses)

            gen_best = float(fitnesses.max())
            history.append(gen_best)
            if gen_best > best_fitness:
                best_fitness = gen_best
                best_params = candidates[int(fitnesses.argmax())].copy()
            if fitness_threshold is not None and gen_best >= fitness_threshold:
                solved = True
                break
        return ESResult(
            best_params=best_params,
            best_fitness=best_fitness,
            generations=len(history),
            solved=solved,
            history=history,
            evaluations=self.evaluations,
        )
