"""Deep-GA-style fixed-topology genetic algorithm [43].

Uber AI's "deep neuroevolution" GA: a population of parameter vectors
evolved by truncation selection plus Gaussian mutation (no crossover in
the reference method; an optional uniform crossover is provided).  Like
ES it is gradient-free and evaluation-dominated — the workload class E3
targets — but unlike NEAT the topology is fixed by hand (Table I's
"Manual" row for EA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["GAConfig", "GAResult", "SimpleGA"]

FitnessFn = Callable[[np.ndarray, int], float]


@dataclass
class GAConfig:
    """Fixed-topology GA hyperparameters."""

    population_size: int = 64
    #: top fraction that survives truncation selection
    truncation: float = 0.25
    mutation_sigma: float = 0.05
    #: elite individuals copied unchanged
    elitism: int = 1
    #: probability a child mixes two parents (0 = reference deep-GA)
    crossover_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 < self.truncation <= 1.0:
            raise ValueError("truncation must be in (0, 1]")
        if self.mutation_sigma <= 0:
            raise ValueError("mutation_sigma must be > 0")
        if not 0 <= self.elitism < self.population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if not 0.0 <= self.crossover_rate <= 1.0:
            raise ValueError("crossover_rate must be in [0, 1]")


@dataclass
class GAResult:
    """Outcome of a GA run."""

    best_params: np.ndarray
    best_fitness: float
    generations: int
    solved: bool
    history: list[float] = field(default_factory=list)
    evaluations: int = 0


class SimpleGA:
    """Truncation-selection GA over flat parameter vectors."""

    def __init__(
        self,
        num_parameters: int,
        config: GAConfig | None = None,
        seed: int | None = None,
        init_sigma: float = 0.5,
    ):
        self.config = config or GAConfig()
        self.rng = np.random.default_rng(seed)
        self.population = (
            self.rng.standard_normal(
                (self.config.population_size, num_parameters)
            )
            * init_sigma
        )
        self.evaluations = 0

    def _make_child(self, parents: np.ndarray) -> np.ndarray:
        cfg = self.config
        if parents.shape[0] >= 2 and self.rng.random() < cfg.crossover_rate:
            i, j = self.rng.choice(parents.shape[0], size=2, replace=False)
            mask = self.rng.random(parents.shape[1]) < 0.5
            child = np.where(mask, parents[i], parents[j])
        else:
            child = parents[int(self.rng.integers(parents.shape[0]))].copy()
        child += self.rng.standard_normal(child.shape) * cfg.mutation_sigma
        return child

    def step(self, fitnesses: np.ndarray) -> None:
        """Produce the next generation from the current fitnesses."""
        cfg = self.config
        fitnesses = np.asarray(fitnesses).reshape(-1)
        if fitnesses.shape[0] != cfg.population_size:
            raise ValueError(
                f"expected {cfg.population_size} fitnesses, "
                f"got {fitnesses.shape[0]}"
            )
        order = np.argsort(fitnesses)[::-1]
        survivors = max(1, int(np.ceil(cfg.truncation * cfg.population_size)))
        parents = self.population[order[:survivors]]

        next_population = np.empty_like(self.population)
        for e in range(cfg.elitism):
            next_population[e] = self.population[order[e]]
        for i in range(cfg.elitism, cfg.population_size):
            next_population[i] = self._make_child(parents)
        self.population = next_population

    # ------------------------------------------------------------- run
    def run(
        self,
        fitness_fn: FitnessFn,
        max_generations: int = 100,
        fitness_threshold: float | None = None,
        eval_seed: int = 0,
    ) -> GAResult:
        best_params = self.population[0].copy()
        best_fitness = float("-inf")
        history: list[float] = []
        solved = False
        for generation in range(max_generations):
            fitnesses = np.array(
                [
                    fitness_fn(candidate, eval_seed + generation)
                    for candidate in self.population
                ]
            )
            self.evaluations += len(fitnesses)
            gen_best = float(fitnesses.max())
            history.append(gen_best)
            if gen_best > best_fitness:
                best_fitness = gen_best
                best_params = self.population[int(fitnesses.argmax())].copy()
            if fitness_threshold is not None and gen_best >= fitness_threshold:
                solved = True
                break
            self.step(fitnesses)
        return GAResult(
            best_params=best_params,
            best_fitness=best_fitness,
            generations=len(history),
            solved=solved,
            history=history,
            evaluations=self.evaluations,
        )
