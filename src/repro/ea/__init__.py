"""Fixed-topology evolutionary baselines: OpenAI-ES [35] and deep-GA [43].

The paper's "EA (ES/GA)" column (Table I, Table IV): gradient-free like
NEAT, but over a manually-chosen network topology.  Used to quantify
the middle ground between RL (backprop, manual topology) and NEAT
(no backprop, automatic topology).
"""

from repro.ea.es import ESConfig, ESResult, OpenAIES, centered_ranks
from repro.ea.ga import GAConfig, GAResult, SimpleGA
from repro.ea.policy import FixedTopologyPolicy

__all__ = [
    "ESConfig",
    "ESResult",
    "FixedTopologyPolicy",
    "GAConfig",
    "GAResult",
    "OpenAIES",
    "SimpleGA",
    "centered_ranks",
]
