"""Model-tuning on the edge: adapt a deployed controller to a new plant.

The paper's first autonomous-learning use-case (§I): "a robot trained
to walk on grass but now encounters sand ... a better strategy is to
have an adequate model trained on a generic environment and
continuously train it on the target environment."

Here: a pendulum controller is trained on the nominal plant, then the
plant changes (40% heavier bob, longer rod).  Adapting by warm-starting
the population from the deployed champion recovers performance in fewer
generations than re-learning from scratch.

    python examples/model_tuning.py
"""

from repro.core import E3
from repro.envs import make, run_episode
from repro.neat import FeedForwardNetwork, NEATConfig

PERTURBED = {"mass": 1.4, "length": 1.25}
GENERATIONS = 10
POPULATION = 80


def evaluate_on(env_kwargs, genome, config, episodes=3):
    net = FeedForwardNetwork.create(genome, config)
    total = 0.0
    for seed in range(episodes):
        env = make("pendulum", seed=1000 + seed, **env_kwargs)
        total += run_episode(env, net.activate).total_reward
    return total / episodes


def main() -> None:
    # --- phase 1: train on the generic (nominal) plant ---
    print("phase 1: training on the nominal pendulum...")
    nominal = E3(
        "pendulum",
        backend="inax",
        neat_config=NEATConfig(population_size=POPULATION),
        seed=8,
    )
    trained = nominal.run(max_generations=GENERATIONS)
    champion = trained.best_genome
    cfg = nominal.neat_config
    print(f"  champion fitness on nominal plant : "
          f"{evaluate_on({}, champion, cfg):8.1f}")

    # --- the plant changes underneath the deployed agent ---
    degraded = evaluate_on(PERTURBED, champion, cfg)
    print(f"  same champion on perturbed plant  : {degraded:8.1f} "
          f"(mass x{PERTURBED['mass']}, length x{PERTURBED['length']})")

    # --- phase 2a: adapt by warm-starting from the champion ---
    print("\nphase 2a: model-tuning (warm start from the champion)...")
    tuned = E3(
        "pendulum",
        backend="inax",
        neat_config=NEATConfig(population_size=POPULATION),
        seed=9,
        env_kwargs=PERTURBED,
        seed_genome=champion,
    ).run(max_generations=GENERATIONS)
    tuned_fitness = evaluate_on(PERTURBED, tuned.best_genome, cfg)
    print(f"  adapted champion on perturbed plant: {tuned_fitness:8.1f}")

    # --- phase 2b: baseline — re-learn from scratch ---
    print("\nphase 2b: model-replacement baseline (from scratch)...")
    scratch = E3(
        "pendulum",
        backend="inax",
        neat_config=NEATConfig(population_size=POPULATION),
        seed=9,
        env_kwargs=PERTURBED,
    ).run(max_generations=GENERATIONS)
    scratch_fitness = evaluate_on(PERTURBED, scratch.best_genome, cfg)
    print(f"  scratch champion on perturbed plant: {scratch_fitness:8.1f}")

    print("\nsummary (higher is better; pendulum rewards are negative):")
    print(f"  deployed, unadapted : {degraded:8.1f}")
    print(f"  tuned (warm start)  : {tuned_fitness:8.1f}")
    print(f"  scratch ({GENERATIONS} gens)   : {scratch_fitness:8.1f}")


if __name__ == "__main__":
    main()
