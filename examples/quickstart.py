"""Quickstart: evolve a CartPole controller on the E3 platform.

Runs the closed evaluate/evolve loop of the paper's Fig 1(a) with the
evaluate phase on the functional INAX device, then inspects the evolved
champion.

    python examples/quickstart.py
"""

from repro.core import E3
from repro.neat import NEATConfig


def main() -> None:
    platform = E3(
        "cartpole",
        backend="inax",  # evaluate on the simulated accelerator
        neat_config=NEATConfig(population_size=80),
        episodes_per_genome=2,  # average fitness over 2 episodes: less
        seed=0,                 # overfitting to one initial condition
    )
    result = platform.run(max_generations=20)

    print(f"environment     : {result.env_name}")
    print(f"backend         : {result.backend_name}")
    print(f"solved          : {result.solved}")
    print(f"generations     : {result.generations}")
    print(f"best fitness    : {result.best_fitness:.1f} "
          f"(required {platform.required_fitness})")

    champion = result.best_network()
    print(f"champion size   : {champion.num_evaluated_nodes} nodes, "
          f"{champion.num_macs} connections, "
          f"{len(champion.layers)} layers")
    print(f"density         : {champion.density():.2f} of the dense "
          f"MLP counterpart")

    # drive the champion through one episode by hand
    from repro.envs import make, run_episode

    episode = run_episode(make("cartpole", seed=123), champion.activate)
    print(f"demo episode    : {episode.steps} steps, "
          f"reward {episode.total_reward:.0f}")

    # what did the accelerator do?
    report = result.records[-1].cycle_report
    print(f"last generation : {report.total_cycles:,.0f} INAX cycles, "
          f"U(PE)={report.u_pe:.2f}, U(PU)={report.u_pu:.2f}")


if __name__ == "__main__":
    main()
