"""Three-platform comparison on one task: the Fig 9(b)/10(a) headline.

Runs NEAT on the pendulum task once, then prices the identical workload
on the E3-CPU, E3-GPU, and E3-INAX platform models — reproducing the
paper's runtime ordering (GPU slower than CPU; INAX an order of
magnitude faster) and the energy reduction.

    python examples/platform_comparison.py
"""

from repro.core import format_seconds, format_table, run_experiment
from repro.neat import NEATConfig


def main() -> None:
    print("running NEAT on pendulum (population 100)...\n")
    result = run_experiment(
        "pendulum",
        seed=1,
        neat_config=NEATConfig(population_size=100),
        max_generations=10,
    )

    rows = []
    for name in ("cpu", "gpu", "inax"):
        platform = result.platforms[name]
        rows.append(
            [
                f"E3-{name.upper()}",
                format_seconds(platform.runtime_seconds),
                f"{platform.energy_joules:,.1f}",
                f"{platform.times.fractions()['evaluate'] * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["platform", "runtime (s)", "energy (J)", "evaluate share"],
            rows,
            title=f"pendulum, {result.generations} generations, "
            f"best fitness {result.best_fitness:.1f}",
        )
    )

    gpu_slowdown = (
        result.platforms["gpu"].runtime_seconds
        / result.platforms["cpu"].runtime_seconds
    )
    print(f"\nspeedup  E3-CPU / E3-INAX : {result.speedup():.1f}x")
    print(f"slowdown E3-GPU / E3-CPU  : {gpu_slowdown:.1f}x")
    print(f"energy   E3-INAX vs CPU   : "
          f"{result.energy_ratio('inax') * 100:.1f}% "
          f"({(1 - result.energy_ratio('inax')) * 100:.0f}% reduction)")

    report = result.inax_report
    print(f"\nINAX totals: {report.total_cycles:,.0f} cycles over "
          f"{report.steps:,} synchronized steps, "
          f"{report.individuals:,} individual-evaluations")


if __name__ == "__main__":
    main()
