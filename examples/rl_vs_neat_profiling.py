"""Algorithmic profiling: why accelerate *evaluate* and not *Training*?

Reproduces the paper's §III argument on one task.  An RL baseline
spends most of its time in Training (backprop + update rules), which is
expensive to accelerate; NEAT spends ~97% in evaluate (pure inference),
which a specialized accelerator removes almost entirely.

    python examples/rl_vs_neat_profiling.py
"""

from repro.analysis import neat_profile, rl_profile
from repro.core import cpu_model_for, format_breakdown, run_experiment
from repro.envs import make
from repro.neat import NEATConfig
from repro.rl import A2C, PPO, SMALL_HIDDEN


def main() -> None:
    env_name = "cartpole"

    # --- RL side: measured wall-clock split (Fig 3) ---
    print("profiling RL baselines (2 s budget each)...")
    for name, agent in (
        ("A2C-small ", A2C(make(env_name, seed=0), hidden=SMALL_HIDDEN, seed=0)),
        ("PPO2-small", PPO(make(env_name, seed=0), hidden=SMALL_HIDDEN, seed=0)),
    ):
        agent.learn(
            total_timesteps=10**9, eval_every_updates=10**9, time_limit=2.0
        )
        print(f"  {name}: {format_breakdown(rl_profile(agent.times))}")

    # --- NEAT side: priced phase split on the SW platform (Fig 1(b)) ---
    print("\nrunning NEAT and pricing the workload on E3-CPU...")
    result = run_experiment(
        env_name,
        seed=0,
        neat_config=NEATConfig(population_size=100),
        max_generations=10,
    )
    cpu_times = result.platforms["cpu"].times
    print(f"  NEAT      : {format_breakdown(neat_profile(cpu_times))}")

    # --- the co-design conclusion ---
    inax_times = result.platforms["inax"].times
    print(f"\nafter offloading evaluate to INAX "
          f"(E3-INAX, {result.speedup():.1f}x faster):")
    print(f"  NEAT      : {format_breakdown(neat_profile(inax_times))}")
    print("\ntakeaway: RL's bottleneck is Training (hard to accelerate);"
          "\nNEAT's bottleneck is evaluate (exactly what INAX removes).")

    # the model's per-env step cost used for this pricing, for reference
    model = cpu_model_for(env_name)
    print(f"\n[env.step() priced at "
          f"{model.seconds_per_env_step * 1e6:.1f} us on the CPU model]")


if __name__ == "__main__":
    main()
