"""Watch a topology evolve: text rendering of the champion network.

Evolves a pendulum controller and, every few generations, renders the
champion's irregular topology (the Fig 4(c)-style structure) plus a
sparkline of the fitness trace — all in plain text, as an edge console
would show it.

    python examples/topology_viewer.py
"""

from repro.analysis import render_network, sparkline
from repro.core import E3
from repro.envs import make
from repro.neat import FeedForwardNetwork, NEATConfig


def main() -> None:
    platform = E3(
        "pendulum",
        backend="inax",
        neat_config=NEATConfig(population_size=80),
        seed=5,
    )

    snapshots = []
    for round_index in range(4):
        platform.population.run(
            platform.backend.evaluate, max_generations=3
        )
        best = platform.population.best_genome
        net = FeedForwardNetwork.create(best, platform.neat_config)
        snapshots.append((platform.population.generation, best.fitness, net))

    for generation, fitness, net in snapshots:
        print(f"\n=== generation {generation} | best fitness {fitness:.1f} ===")
        print(render_network(net))

    history = platform.population.history
    trace = [stats.best_fitness for stats in history]
    print("\nbest-fitness trace "
          f"({len(trace)} generations, higher is better):")
    print("  " + sparkline(trace, width=60))
    print(f"  start {trace[0]:.1f} -> end {trace[-1]:.1f} "
          f"(required {platform.required_fitness})")

    # give the final champion a spin
    from repro.envs import run_episode

    net = FeedForwardNetwork.create(
        platform.population.best_genome, platform.neat_config
    )
    episode = run_episode(make("pendulum", seed=7), net.activate)
    print(f"\nfinal champion demo episode: reward {episode.total_reward:.1f}")


if __name__ == "__main__":
    main()
