"""Paper-scale reproduction run (long!).

The benchmark harness caps populations and generations so the whole
suite finishes in ~2 minutes.  This script runs the paper's own scale —
population 200, evolving until each task's required fitness or a
generous generation budget — and prints the Fig 9(b)/10(a) rows at that
scale.  Expect tens of minutes to hours depending on how far the hard
tasks (bipedal, mountain car) evolve.

    python examples/paper_scale_run.py               # full suite
    python examples/paper_scale_run.py pendulum pong # chosen tasks
"""

import sys
import time

from repro.core import format_seconds, format_table, run_experiment
from repro.core.suite import PAPER_SETTINGS
from repro.envs import ENV_SUITE
from repro.neat import NEATConfig

#: the paper's algorithm-level settings (§VI-C)
POPULATION = PAPER_SETTINGS.population_size
MAX_GENERATIONS = dict(PAPER_SETTINGS.generations)


def main() -> None:
    chosen = set(sys.argv[1:]) or {spec.name for spec in ENV_SUITE}
    rows = []
    speedups = []
    for spec in ENV_SUITE:
        if spec.name not in chosen:
            continue
        print(f"running {spec.name} (population {POPULATION}, up to "
              f"{MAX_GENERATIONS[spec.name]} generations)...", flush=True)
        t0 = time.perf_counter()
        result = run_experiment(
            spec.name,
            seed=7,
            neat_config=NEATConfig(population_size=POPULATION),
            max_generations=MAX_GENERATIONS[spec.name],
        )
        wall = time.perf_counter() - t0
        rows.append(
            [
                spec.paper_id,
                spec.name,
                "yes" if result.solved else "no",
                result.generations,
                format_seconds(result.platforms["cpu"].runtime_seconds),
                format_seconds(result.platforms["gpu"].runtime_seconds),
                format_seconds(result.platforms["inax"].runtime_seconds),
                f"{result.speedup():.1f}x",
                f"{result.energy_ratio('inax') * 100:.1f}%",
                f"{wall:.0f}s",
            ]
        )
        speedups.append(result.speedup())
        print(f"  done in {wall:.0f}s wall "
              f"(speedup {result.speedup():.1f}x)", flush=True)

    print()
    print(
        format_table(
            ["env", "task", "solved", "gens", "E3-CPU (s)", "E3-GPU (s)",
             "E3-INAX (s)", "CPU/INAX", "INAX energy", "wall"],
            rows,
            title="Fig 9(b) + Fig 10(a) at paper scale (modeled platforms)",
        )
    )
    if speedups:
        print(f"\naveraged speedup: {sum(speedups) / len(speedups):.1f}x "
              "(paper: ~30x)")


if __name__ == "__main__":
    main()
