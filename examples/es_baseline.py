"""Fixed-topology ES vs NEAT: the paper's EA column, live.

Runs OpenAI-ES (fixed 16-unit MLP, weights-only evolution) and NEAT
(topology + weights) on CartPole under the same evaluation budget, then
prints the Table IV-style overhead comparison for the two algorithms'
actual artifacts.

    python examples/es_baseline.py
"""

import numpy as np

from repro.core import E3, format_table
from repro.ea import ESConfig, FixedTopologyPolicy, OpenAIES
from repro.envs import make
from repro.neat import NEATConfig
from repro.rl.profiling import ea_overhead, neat_overhead


def main() -> None:
    env = make("cartpole", seed=0)

    # --- ES: evolve weights of a fixed 16-unit MLP ---
    policy = FixedTopologyPolicy(env, hidden=(16,), rng=np.random.default_rng(0))
    es = OpenAIES(
        policy.num_parameters,
        ESConfig(population_size=40, sigma=0.1, learning_rate=0.05),
        seed=1,
    )
    es_result = es.run(
        lambda params, seed: policy.fitness(params, seed=seed, max_steps=500),
        max_generations=25,
        fitness_threshold=475.0,
    )
    print(
        f"ES   : best {es_result.best_fitness:6.1f} after "
        f"{es_result.evaluations} evaluations "
        f"({policy.num_parameters} evolved weights, fixed topology)"
    )

    # --- NEAT: evolve topology and weights from scratch ---
    platform = E3(
        "cartpole",
        backend="cpu",
        neat_config=NEATConfig(population_size=40),
        seed=1,
    )
    neat_result = platform.run(max_generations=25)
    champion = neat_result.best_network()
    evaluations = sum(len(r.episode_lengths) for r in neat_result.records)
    print(
        f"NEAT : best {neat_result.best_fitness:6.1f} after "
        f"{evaluations} evaluations "
        f"({champion.num_macs} evolved connections, evolved topology)"
    )

    # --- the Table IV contrast on the real artifacts ---
    ea_row = ea_overhead(env.num_inputs, (16,), env.num_outputs)
    final_population = [
        g for g in platform.population.population
    ]
    neat_row = neat_overhead(final_population, platform.neat_config)
    print()
    print(
        format_table(
            ["", "EA (ES)", "NEAT"],
            [
                ["Op. Forward / step", ea_row.ops_forward, neat_row.ops_forward],
                ["Op. Backward", ea_row.ops_backward, neat_row.ops_backward],
                ["Local memory (B)", ea_row.memory_bytes, neat_row.memory_bytes],
            ],
            title="Table IV contrast, measured on this run's artifacts",
        )
    )


if __name__ == "__main__":
    main()
