"""Model-replacement on the edge: learn to land with no prior model.

The paper's second autonomous-learning use-case (§I): an agent is
deployed with a task for which no trained model exists and no cloud
connectivity.  E3 starts from minimal two-layer genomes (inputs wired
straight to the four thruster actions) and evolves both topology and
weights against the lunar-lander task, entirely "on device".

    python examples/autonomous_lander.py
"""

from repro.core import E3
from repro.envs import make
from repro.neat import NEATConfig


def main() -> None:
    platform = E3(
        "lunar_lander",
        backend="inax",
        neat_config=NEATConfig(
            population_size=80,
            # a gentler speciation threshold keeps more topological
            # diversity alive on this harder task
            compatibility_threshold=3.5,
        ),
        seed=3,
    )
    print("evolving a lander controller from scratch "
          f"(required fitness {platform.required_fitness:.0f})...\n")

    result = platform.run(max_generations=12)

    print("gen   best fitness   mean fitness   species   avg nodes/conns")
    for stats in result.history:
        print(
            f"{stats.generation:3d}   {stats.best_fitness:12.1f}   "
            f"{stats.mean_fitness:12.1f}   {stats.num_species:7d}   "
            f"{stats.mean_nodes:5.1f} / {stats.mean_connections:.1f}"
        )

    champion = result.best_network()
    print(f"\nchampion: {champion.num_evaluated_nodes} nodes, "
          f"{champion.num_macs} connections "
          f"(vs a 64x64 MLP's ~5,000)")

    # fly three evaluation episodes with the evolved controller
    from repro.envs import run_episode

    print("\nevaluation flights:")
    for seed in (101, 102, 103):
        episode = run_episode(make("lunar_lander", seed=seed), champion.activate)
        verdict = "landed" if episode.total_reward > 0 else "crashed"
        print(f"  seed {seed}: reward {episode.total_reward:8.1f} "
              f"in {episode.steps:3d} steps -> {verdict}")


if __name__ == "__main__":
    main()
