"""HW design-space exploration with the §V heuristics.

A hardware designer sizing INAX for a task must pick the PU and PE
counts.  This example sweeps both dimensions on the paper's synthetic
workload, applies the divisor-ladder heuristics, and checks the chosen
configuration against the ZCU104's resources — the §V + Fig 10(b)
workflow end to end.

    python examples/design_space_exploration.py
"""

from repro.core import format_table
from repro.hw import ZCU104, estimate_fpga_power, estimate_inax_resources
from repro.inax import (
    INAXConfig,
    pe_candidates,
    pu_candidates,
    schedule_generation,
    synthetic_population,
)

POPULATION = 120
NUM_OUTPUTS = 10
STEPS = 20
MAX_DSPS_BUDGET = 600  # designer-imposed resource budget


def main() -> None:
    workload = synthetic_population(
        num_individuals=POPULATION, num_outputs=NUM_OUTPUTS, seed=5
    )
    lengths = [STEPS] * POPULATION

    print(f"workload: {POPULATION} individuals, {NUM_OUTPUTS} output nodes\n")
    print(f"PE heuristic ladder (k={NUM_OUTPUTS}): {pe_candidates(NUM_OUTPUTS)}")
    print(f"PU heuristic ladder (p={POPULATION}): {pu_candidates(POPULATION)[:6]}\n")

    # sweep the heuristic grid
    rows = []
    best = None
    for num_pus in pu_candidates(POPULATION)[:4]:
        for num_pes in pe_candidates(NUM_OUTPUTS)[:3]:
            if num_pus * num_pes > MAX_DSPS_BUDGET:
                continue
            cfg = INAXConfig(num_pus=num_pus, num_pes_per_pu=num_pes)
            report = schedule_generation(cfg, workload, lengths)
            resources = estimate_inax_resources(num_pus, num_pes)
            if not resources.fits(ZCU104):
                continue
            power = estimate_fpga_power(resources)
            rows.append(
                [
                    num_pus,
                    num_pes,
                    f"{report.total_cycles:,.0f}",
                    f"{report.u_pe:.2f}",
                    f"{report.u_pu:.2f}",
                    f"{power:.2f} W",
                ]
            )
            score = (report.total_cycles, power)
            if best is None or score < best[0]:
                best = (score, cfg, resources)

    print(
        format_table(
            ["#PU", "#PE", "cycles", "U(PE)", "U(PU)", "power"],
            rows,
            title="heuristic design points (all fit the XCZU7EV)",
        )
    )

    _, cfg, resources = best
    print(f"\nchosen: PU={cfg.num_pus}, PE={cfg.num_pes_per_pu}")
    utilization = resources.utilization(ZCU104)
    for name, frac in utilization.items():
        print(f"  {name:5s} {frac * 100:5.1f}% of {ZCU104.name}")


if __name__ == "__main__":
    main()
