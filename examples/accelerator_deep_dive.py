"""INAX internals, step by step.

A guided tour of the accelerator's execution model on one evolved
individual: compile (CreateNet -> HW config), the set-up phase (weight
channel + decode), per-step inference across PEs, the cycle accounting
behind Fig 9(a)'s breakdown, and the fixed-point datapath's numeric
behaviour vs the float reference.

    python examples/accelerator_deep_dive.py
"""

import numpy as np

from repro.analysis import render_network
from repro.inax import (
    FixedPointFormat,
    INAX,
    INAXConfig,
    compile_genome,
    random_irregular_genome,
)
from repro.inax.pu import ProcessingUnit
from repro.neat import FeedForwardNetwork, InnovationTracker, NEATConfig


def main() -> None:
    # --- one irregular individual (footnote-3 shape, small) ---
    cfg = NEATConfig(num_inputs=8, num_outputs=4)
    rng = np.random.default_rng(42)
    genome = random_irregular_genome(
        0, cfg, num_hidden=12, sparsity=0.25, rng=rng,
        tracker=InnovationTracker(4), num_hidden_layers=2,
    )
    net = FeedForwardNetwork.create(genome, cfg)
    hw = compile_genome(genome, cfg)

    print("=== the individual ===")
    print(render_network(net))
    print(f"\nHW config payload: {hw.config_words} weight-channel words "
          f"({hw.num_connections} connections + 2 x {hw.num_nodes} nodes)")
    print(f"value buffer footprint: {hw.value_buffer_words} words "
          "(every activation stays resident for later layers)")

    # --- one PU, several PE counts: the §V-A trade ---
    print("\n=== per-inference latency vs PE count (one PU) ===")
    for num_pes in (1, 2, 4, 8):
        pu = ProcessingUnit(num_pes)
        setup = pu.load(hw)
        out, timing = pu.infer(np.ones(8))
        print(f"  {num_pes} PE: setup {setup:3d} cycles, "
              f"inference {timing.cycles:3d} cycles, "
              f"PE-active {timing.pe_active_cycles:3d}, "
              f"iterations/layer {timing.iterations_per_layer}")

    # --- the full device: a wave of individuals, a few env steps ---
    print("\n=== device-level accounting (4 PUs x 4 PEs, 3 copies) ===")
    device = INAX(INAXConfig(num_pus=4, num_pes_per_pu=4))
    device.begin_wave([hw, hw, hw])
    for step in range(5):
        device.step({i: rng.uniform(-1, 1, 8) for i in range(3)})
    device.end_wave()
    report = device.report
    print(f"  total {report.total_cycles:,.0f} cycles over {report.steps} "
          "synchronized steps")
    breakdown = report.breakdown()
    print(f"  set-up {breakdown['setup'] * 100:.1f}% | "
          f"PE active {breakdown['pe_active'] * 100:.1f}% | "
          f"evaluate control {breakdown['evaluate_control'] * 100:.1f}%")
    print(f"  U(PE) = {report.u_pe:.2f}, U(PU) = {report.u_pu:.2f} "
          "(3 individuals on 4 provisioned PUs)")

    # --- fixed point vs float ---
    print("\n=== fixed-point datapath vs float64 reference ===")
    x = rng.uniform(-1, 1, 8)
    exact = net.activate(x)
    for fmt in (FixedPointFormat(8, 4), FixedPointFormat(8, 8),
                FixedPointFormat(8, 12)):
        pu = ProcessingUnit(4, datapath=fmt)
        pu.load(hw)
        quant, _ = pu.infer(x)
        err = float(np.max(np.abs(exact - quant)))
        print(f"  {fmt}: max |error| = {err:.6f}")
    reference_pu = ProcessingUnit(4)
    reference_pu.load(hw)
    hw_out, _ = reference_pu.infer(x)
    print(f"  float64 PU output == software forward pass: "
          f"{np.array_equal(exact, hw_out)}")


if __name__ == "__main__":
    main()
