"""Fig 1(b) — NEAT's timing profile on the SW-only platform.

The paper's motivating measurement: "evaluate" occupies ~97% of NEAT's
runtime and "evolve" only ~3% — the opposite of RL's profile (Fig 3).
Regenerated from the E3-CPU pricing of the suite runs.
"""

from benchmarks.conftest import write_output
from repro.analysis.timing_profile import neat_profile
from repro.core.results import format_breakdown, format_table


def _profiles(suite_experiments):
    return {
        name: neat_profile(result.platforms["cpu"].times)
        for name, result in suite_experiments.items()
    }


def test_fig1b_neat_profile(benchmark, suite_experiments):
    profiles = benchmark.pedantic(
        _profiles, args=(suite_experiments,), rounds=1, iterations=1
    )

    rows = [
        [name, f"{p['evaluate'] * 100:.1f}%", f"{p['createnet'] * 100:.2f}%",
         f"{p['evolve'] * 100:.2f}%"]
        for name, p in profiles.items()
    ]
    table = format_table(
        ["env", "evaluate", "createnet", "evolve"],
        rows,
        title="Fig 1(b): NEAT timing profile on E3-CPU (measured)",
    )
    write_output("fig1b_neat_profile", table)

    evaluate_fracs = [p["evaluate"] for p in profiles.values()]
    evolve_fracs = [p["evolve"] for p in profiles.values()]
    mean_evaluate = sum(evaluate_fracs) / len(evaluate_fracs)
    mean_evolve = sum(evolve_fracs) / len(evolve_fracs)

    print(
        "suite mean: "
        + format_breakdown(
            {"evaluate": mean_evaluate, "evolve": mean_evolve}
        )
    )
    # paper: evaluate ~97%, evolve ~3%
    assert mean_evaluate > 0.90
    assert mean_evolve < 0.10
    # the profile holds per environment, not just on average
    assert min(evaluate_fracs) > 0.80
