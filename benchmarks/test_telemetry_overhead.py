"""Guard: disabled telemetry costs < 2% on the cpu-fast hot path.

The instrumentation contract (``src/repro/telemetry``) is that every
disabled call site is one global ``None`` check — ``span()`` returns a
shared no-op context manager, metric sites skip entirely.  This bench
keeps that honest two ways:

1. **micro**: measure the per-call cost of the disabled ``span()``
   helper and the ``get_metrics()`` guard directly;
2. **macro**: run a capped cpu-fast CartPole evolution with telemetry
   off, count how many instrumented regions the same run *would* have
   recorded (by re-running with a tracer installed), and bound the
   estimated total instrumentation cost against the run's wall time.

The estimate approach is deliberately conservative and noise-immune:
an A/B wall-clock diff of two full runs is dominated by scheduler
jitter at this scale, while per-call-cost x call-count is a stable
upper bound on what the disabled sites can possibly add.
"""

from __future__ import annotations

import time
import timeit

from benchmarks.conftest import write_output
from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.telemetry import TelemetrySession, get_metrics, span

POPULATION = 40
GENERATIONS = 4
MAX_DISABLED_OVERHEAD = 0.02  # the ISSUE's < 2% acceptance bound


def _run(telemetry: TelemetrySession | None = None):
    platform = E3(
        "cartpole",
        backend="cpu-fast",
        neat_config=NEATConfig(population_size=POPULATION),
        seed=11,
        telemetry=telemetry,
    )
    t0 = time.perf_counter()
    result = platform.run(max_generations=GENERATIONS)
    return result, time.perf_counter() - t0


def _per_call_costs() -> tuple[float, float]:
    """Seconds per disabled span() call and per get_metrics() check."""
    loops = 200_000
    span_cost = timeit.timeit(lambda: span("x"), number=loops) / loops
    guard_cost = (
        timeit.timeit(lambda: get_metrics() is None, number=loops) / loops
    )
    return span_cost, guard_cost


def test_disabled_telemetry_overhead_under_two_percent():
    assert get_metrics() is None, "telemetry leaked in from another test"

    # macro run with telemetry off: the protected baseline
    _, bare_seconds = _run()

    # the same run traced, to count the instrumented regions it crosses
    session = TelemetrySession()
    traced_result, _ = _run(telemetry=session)
    region_count = len(session.tracer.spans) + session.tracer.dropped
    metric_sites = sum(
        state["count"] if state["kind"] == "histogram" else 1
        for state in session.metrics.snapshot().values()
    )

    span_cost, guard_cost = _per_call_costs()
    estimated = region_count * span_cost + metric_sites * guard_cost
    fraction = estimated / bare_seconds

    write_output(
        "telemetry_overhead",
        "\n".join(
            [
                "disabled-telemetry overhead guard (cpu-fast cartpole, "
                f"pop {POPULATION}, {GENERATIONS} gens)",
                f"bare run:            {bare_seconds * 1e3:8.1f} ms",
                f"instrumented regions:{region_count:8d} spans",
                f"metric touch sites:  {metric_sites:8d}",
                f"span() disabled:     {span_cost * 1e9:8.1f} ns/call",
                f"metrics guard:       {guard_cost * 1e9:8.1f} ns/check",
                f"estimated overhead:  {estimated * 1e6:8.1f} us "
                f"({fraction * 100:.4f}% of run)",
            ]
        ),
    )

    assert traced_result.generations == GENERATIONS or traced_result.solved
    assert fraction < MAX_DISABLED_OVERHEAD
    # the per-call fast path itself must stay sub-microsecond, or the
    # estimate above stops being the right model
    assert span_cost < 1e-6
    assert guard_cost < 1e-6
