"""Fig 2 — achieved-fitness traces: A2C-small, PPO2-small, PPO2-large,
NEAT, across the suite.

The paper normalizes achieved fitness to [0, 1] per task (1.0 = the
required fitness) and runs each algorithm under a runtime budget.  The
shape to hold: every trace is non-decreasing in best-so-far; NEAT's
final normalized fitness matches or beats A2C-small's across the suite
within the same order of wall-clock budget (the paper's Fig 2(d): NEAT
reaches the requirement on all six tasks; the RLs leave some tasks in
the red box).

Scale note: the paper trains for minutes-to-hours per task; this bench
caps every RL run at a few seconds, so absolute fitness is far from the
paper's — the assertions target ordering and monotonicity only.
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.analysis.convergence import normalize_fitness, random_policy_baseline
from repro.core.results import format_table
from repro.envs.registry import ENV_SUITE, make
from repro.rl.a2c import A2C
from repro.rl.policies import LARGE_HIDDEN, SMALL_HIDDEN
from repro.rl.ppo import PPO

RL_TIME_BUDGET_SECONDS = 2.5

_random_baseline = random_policy_baseline
_normalize = normalize_fitness


def _rl_final_fitness(make_agent, env_name: str) -> tuple[float, list[float]]:
    env = make(env_name, seed=0)
    agent = make_agent(env)
    report = agent.learn(
        total_timesteps=10**9,
        eval_every_updates=10,
        time_limit=RL_TIME_BUDGET_SECONDS,
    )
    trace = [fitness for _, fitness in report.fitness_trace]
    return report.best_fitness, trace


def _collect(suite_experiments):
    rows = {}
    traces = {}
    for spec in ENV_SUITE:
        baseline = _random_baseline(spec.name)
        required = spec.required_fitness
        a2c, a2c_trace = _rl_final_fitness(
            lambda env: A2C(env, hidden=SMALL_HIDDEN, seed=0), spec.name
        )
        ppo_small, ppo_s_trace = _rl_final_fitness(
            lambda env: PPO(env, hidden=SMALL_HIDDEN, seed=0), spec.name
        )
        ppo_large, ppo_l_trace = _rl_final_fitness(
            lambda env: PPO(env, hidden=LARGE_HIDDEN, seed=0), spec.name
        )
        neat_history = suite_experiments[spec.name].run.history
        neat_trace = [h.best_fitness for h in neat_history]
        neat = suite_experiments[spec.name].best_fitness
        rows[spec.name] = {
            "a2c_small": _normalize(a2c, baseline, required),
            "ppo2_small": _normalize(ppo_small, baseline, required),
            "ppo2_large": _normalize(ppo_large, baseline, required),
            "neat": _normalize(neat, baseline, required),
        }
        traces[spec.name] = {
            "A2C-small": a2c_trace,
            "PPO2-small": ppo_s_trace,
            "PPO2-large": ppo_l_trace,
            "NEAT": neat_trace,
        }
    return rows, traces


def test_fig2_convergence(benchmark, suite_experiments):
    rows, traces = benchmark.pedantic(
        _collect, args=(suite_experiments,), rounds=1, iterations=1
    )

    table = format_table(
        ["env", "A2C-small", "PPO2-small", "PPO2-large", "NEAT"],
        [
            [name] + [f"{rows[name][k]:.2f}" for k in
                      ("a2c_small", "ppo2_small", "ppo2_large", "neat")]
            for name in rows
        ],
        title="Fig 2: normalized achieved fitness (measured, capped budgets)",
    )
    from repro.analysis.render import sparkline

    trace_lines = ["", "achieved-fitness traces (best per eval point):"]
    for env_name, per_algo in traces.items():
        trace_lines.append(f"  {env_name}:")
        for algo, trace in per_algo.items():
            best_so_far = list(np.maximum.accumulate(trace)) if trace else []
            trace_lines.append(
                f"    {algo:10s} {sparkline(best_so_far, width=40)}"
            )
    write_output("fig2_convergence", table + "\n".join(trace_lines))

    # NEAT trace is monotone non-decreasing in best-so-far
    for name, result in suite_experiments.items():
        best = -np.inf
        for stats in result.run.history:
            assert stats.best_fitness >= -1e18
            best = max(best, stats.best_fitness)
        assert result.best_fitness >= best - 1e-9

    # suite-mean ordering: NEAT >= A2C-small within these budgets
    # (the paper's qualitative takeaway from Fig 2(a) vs 2(d))
    mean = lambda k: float(np.mean([rows[n][k] for n in rows]))
    assert mean("neat") >= mean("a2c_small") - 0.05
    # every algorithm produces valid normalized values
    for name in rows:
        for value in rows[name].values():
            assert 0.0 <= value <= 1.0
