"""Serve bench: tail latency under a 100+ job concurrent burst.

Submits ``NUM_JOBS`` small seeded runs (cartpole, population 8, one
generation, checkpointing off) to a live :class:`EvolutionService` in
one burst, waits for the queue to drain, and reports submit-to-complete
latency percentiles plus sustained throughput.  The measured series
lands in ``benchmarks/output/BENCH_serve.json`` and the p95 /
throughput pair is gated by ``repro bench-diff`` via the curated
``serve`` metric specs.
"""

import asyncio
import json
import time

from benchmarks.conftest import OUTPUT_DIR, write_output
from repro.serve import EvolutionService, JobSpec, QuotaConfig
from repro.serve.service import percentiles

NUM_JOBS = 120
MAX_CONCURRENT = 4


def _spec(seed: int) -> JobSpec:
    return JobSpec(
        env="cartpole",
        backend="cpu-fast",
        population_size=8,
        generations=1,
        seed=seed,
        checkpoint=False,
    )


async def _burst(tmp_path) -> dict:
    quotas = QuotaConfig(
        max_queue_depth=NUM_JOBS * 2,
        max_queued_per_tenant=NUM_JOBS * 2,
        max_running_per_tenant=MAX_CONCURRENT,
    )
    service = EvolutionService(
        max_concurrent=MAX_CONCURRENT, quotas=quotas, data_dir=tmp_path
    )
    await service.start()
    wall_start = time.perf_counter()
    ids = [
        await service.submit(_spec(seed=i), tenant=f"t{i % 4}")
        for i in range(NUM_JOBS)
    ]
    statuses = [await service.wait(job_id) for job_id in ids]
    wall = time.perf_counter() - wall_start
    stats = service.stats()
    await service.shutdown()

    latencies = [s["latency_seconds"] for s in statuses]
    tails = percentiles(latencies)
    return {
        "jobs": NUM_JOBS,
        "max_concurrent": MAX_CONCURRENT,
        "completed": sum(
            1 for s in statuses if s["state"] == "completed"
        ),
        "wall_seconds": round(wall, 4),
        "throughput_jobs_per_second": round(NUM_JOBS / wall, 4),
        "p50_seconds": round(tails["p50"], 4),
        "p95_seconds": round(tails["p95"], 4),
        "p99_seconds": round(tails["p99"], 4),
        "pool": stats["pool"],
    }


def test_serve_tail_latency(tmp_path):
    payload = asyncio.run(_burst(tmp_path))

    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    write_output(
        "BENCH_serve",
        (
            f"serve burst: {payload['jobs']} jobs @ "
            f"{payload['max_concurrent']} slots | "
            f"p50 {payload['p50_seconds']}s "
            f"p95 {payload['p95_seconds']}s "
            f"p99 {payload['p99_seconds']}s | "
            f"{payload['throughput_jobs_per_second']} jobs/s"
        ),
    )
    print(f"[written to {path}]")

    # every job completed; none failed or got stuck
    assert payload["completed"] == NUM_JOBS, payload
    # tails are ordered and finite
    assert (
        0
        < payload["p50_seconds"]
        <= payload["p95_seconds"]
        <= payload["p99_seconds"]
    ), payload
    # the shared pool kept lease churn bounded: backends were reused,
    # not rebuilt per job
    assert payload["pool"]["created"] <= MAX_CONCURRENT * 2, payload
