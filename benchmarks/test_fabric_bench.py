"""Fabric bench: farm scaling on the skewed hero/filler workload.

Prices the same adversarial workload as the pipeline bench — a few
long "hero" episodes amid short fillers — through
:func:`repro.fabric.backend.price_farm` at 1, 2, 4 and 8 devices.  The
two-level LPT (individuals into waves, waves onto devices) should keep
the heroes spread across the farm, so 4 devices must recover at least
the issue's 3.2x wall-clock speedup over a single device.  The
measured series lands in ``benchmarks/output/BENCH_fabric.json`` and
is gated by ``repro bench-diff`` via the ``speedup_4dev`` metric.
"""

import json

from benchmarks.conftest import OUTPUT_DIR
from repro.fabric.backend import price_farm
from repro.inax.accelerator import INAXConfig
from repro.inax.pipeline import PipelineConfig
from repro.inax.synthetic import synthetic_population

NUM_PUS = 5
NUM_HEROES = 16
NUM_FILLERS = 64
HERO_STEPS = 400
FILLER_STEPS = 20
DEVICE_COUNTS = (1, 2, 4, 8)


def _skewed_lengths(num_individuals: int) -> list[int]:
    """Heroes scattered through arrival order, fillers elsewhere."""
    lengths = [FILLER_STEPS] * num_individuals
    stride = num_individuals // NUM_HEROES
    for hero in range(NUM_HEROES):
        lengths[hero * stride] = HERO_STEPS
    return lengths


def test_farm_scaling_hits_acceptance_bar():
    config = INAXConfig(num_pus=NUM_PUS, num_pes_per_pu=2)
    total = NUM_HEROES + NUM_FILLERS
    pop = synthetic_population(num_individuals=total, seed=17)
    lengths = _skewed_lengths(total)
    pipeline = PipelineConfig(schedule="lpt")

    walls = {}
    waves = None
    for devices in DEVICE_COUNTS:
        priced = price_farm(config, pop, lengths, devices, pipeline=pipeline)
        walls[devices] = priced["wall_cycles"]
        waves = priced["waves"]

    speedups = {
        devices: walls[1] / walls[devices] for devices in DEVICE_COUNTS
    }
    payload = {
        "workload": {
            "num_pus": NUM_PUS,
            "individuals": total,
            "heroes": NUM_HEROES,
            "hero_steps": HERO_STEPS,
            "filler_steps": FILLER_STEPS,
            "waves": waves,
            "schedule": pipeline.schedule,
        },
        "wall_cycles": {str(d): walls[d] for d in DEVICE_COUNTS},
        "speedups": {str(d): round(speedups[d], 4) for d in DEVICE_COUNTS},
        "speedup_4dev": round(speedups[4], 4),
        "acceptance_floor": 3.2,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_fabric.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nfarm scaling: {payload['speedups']}")
    print(f"[written to {path}]")

    # the acceptance bar: >= 3.2x at 4 devices on the skewed workload
    assert speedups[4] >= 3.2, payload
    # scaling is monotonic: more devices never slows the farm down
    for smaller, larger in zip(DEVICE_COUNTS, DEVICE_COUNTS[1:]):
        assert walls[larger] <= walls[smaller], walls
