"""Structural-batching compiler — speedup of ``cpu-compiled`` over
``cpu-fast`` on the software network-preparation path.

Both backends step environments identically and both run lock-step
inference through the same flattened engine, so those phases are
*shared* and cannot differ by construction.  What the compile cache
replaces is the per-generation **network preparation**: ``cpu-fast``
keys its decode LRU on the weighted structural hash, so every
weight-mutated offspring (the overwhelming majority of a NEAT
generation — see Fig 1(b)'s decode share) re-decodes from scratch —
two interpreted network builds plus a fresh vectorized plan.  The
``cpu-compiled`` backend keys on the weights-excluded shape key, hits
for every offspring whose parent was ever compiled, and only refills
parameter tensors into the cached structure's stacked buckets.

The bench prepares an identical mid-run CartPole population of
weight-mutated offspring on both paths:

* **prep** (gated): decode-LRU misses vs. compile-cache hits + bucket
  parameter fill + per-member plan views — everything up to the point
  where both paths hold identical per-member execution plans;
* **assemble + ticks** (reported): the shared flattened-engine build
  plus a fixed number of lock-step inference ticks, asserted
  bit-identical between the paths.

The compile cache persists across repeats, exactly like the
cross-generation cache a running E3 carries (weight-mutated children
keep hitting structures compiled generations ago), while the decode
path gets the fresh misses every generation hands it.  The floor on
the prep speedup is 3x; the paper-facing target on record is 10x.
``BENCH_compile.json`` captures workload, phase timings, and both
ratios for the CI artifact.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import OUTPUT_DIR, write_output
from repro.compile import CompileCache, CompiledBucket
from repro.core.backends import FastCPUBackend, _DecodeCache
from repro.core.results import format_table
from repro.neat.config import NEATConfig
from repro.neat.population import Population
from repro.neat.vectorized import PopulationEvaluator

NUM_GENOMES = 200
BOOT_GENERATIONS = 6
TICKS = 10
SPEEDUP_FLOOR = 3.0
SPEEDUP_TARGET = 10.0  # the paper-facing goal, recorded but not gated
REPEATS = 3


def _midrun_population(config: NEATConfig):
    """Evolve CartPole briefly and return the live population."""
    boot = FastCPUBackend(
        "cartpole", config, episodes_per_genome=1, base_seed=3
    )
    population = Population(config, seed=3)
    population.run(boot.evaluate, max_generations=BOOT_GENERATIONS)
    boot.close()
    return list(population.population)


def _weight_mutated_offspring(parents):
    """One weight/bias-perturbed child per parent — the common NEAT
    offspring whose topology survives but whose structural hash (and
    therefore the decode-LRU key) does not."""
    rng = np.random.default_rng(17)
    offspring = []
    for parent in parents:
        child = parent.copy(new_key=10_000 + parent.key)
        for conn in child.connections.values():
            conn.weight += float(rng.normal(0.0, 0.1))
        for node in child.nodes.values():
            node.bias += float(rng.normal(0.0, 0.1))
        offspring.append(child)
    return offspring


def _observations(config, slots, tick):
    rng = np.random.default_rng(1000 + tick)
    return {
        slot: rng.normal(size=config.num_inputs) for slot in slots
    }


def _run_ticks(config, plans, count):
    """The shared phase: flat engine assembly + lock-step ticks."""
    start = time.perf_counter()
    evaluator = PopulationEvaluator.from_plans(plans)
    outputs = [
        evaluator.infer(_observations(config, range(len(plans)), tick))
        for tick in range(TICKS)
    ]
    return time.perf_counter() - start, outputs


def _fast_prep(config, parents, offspring):
    """cpu-fast: every weight-mutated child misses the decode LRU."""
    cache = _DecodeCache(capacity=4 * NUM_GENOMES)
    for parent in parents:  # the cross-generation cache state
        cache.warm(parent, config)
    start = time.perf_counter()
    decoded = [cache.get(genome, config) for genome in offspring]
    plans = [entry.vnet.plan for entry in decoded]
    return time.perf_counter() - start, plans, cache.misses


def _compiled_prep(config, cache, offspring):
    """cpu-compiled: shape-key hits + bucket fill + plan views."""
    start = time.perf_counter()
    entries = [cache.get(genome, config) for genome in offspring]
    grouped: dict[int, tuple[object, list[int]]] = {}
    for slot, entry in enumerate(entries):
        bucket = grouped.get(id(entry))
        if bucket is None:
            grouped[id(entry)] = (entry, [slot])
        else:
            bucket[1].append(slot)
    plans = [None] * len(offspring)
    buckets = 0
    for structure, slots in grouped.values():
        buckets += 1
        bucket = CompiledBucket(
            structure, [offspring[slot] for slot in slots]
        )
        for plan, slot in zip(bucket.member_plans(), slots):
            plans[slot] = plan
    return time.perf_counter() - start, plans, buckets


def test_compile_speedup():
    config = NEATConfig(
        num_inputs=4, num_outputs=2, population_size=NUM_GENOMES
    )
    parents = _midrun_population(config)
    assert len(parents) >= 100
    offspring = _weight_mutated_offspring(parents)
    # the workload must be the common case: every offspring vectorizable
    probe = _DecodeCache(capacity=len(offspring))
    offspring = [
        g for g in offspring if probe.get(g, config).vnet is not None
    ]
    assert len(offspring) >= 100

    # structures compiled in earlier generations, persisting across
    # them — a real run's children keep hitting these entries
    compile_cache = CompileCache(capacity=4 * NUM_GENOMES)
    for parent in parents:
        compile_cache.warm(parent, config)
    warmed = compile_cache.info()["warmed"]

    fast_prep = comp_prep = float("inf")
    fast_shared = comp_shared = float("inf")
    for _ in range(REPEATS):
        prep, fast_plans, misses = _fast_prep(config, parents, offspring)
        shared, fast_out = _run_ticks(config, fast_plans, TICKS)
        fast_prep = min(fast_prep, prep)
        fast_shared = min(fast_shared, shared)

        prep, comp_plans, buckets = _compiled_prep(
            config, compile_cache, offspring
        )
        shared, comp_out = _run_ticks(config, comp_plans, TICKS)
        comp_prep = min(comp_prep, prep)
        comp_shared = min(comp_shared, shared)

    # every weight-mutated child defeats the decode LRU ...
    assert misses == len(offspring)
    # ... and hits the shape-keyed compile cache, every generation
    cache_info = compile_cache.info()
    assert cache_info["hits"] == REPEATS * len(offspring)
    assert cache_info["misses"] == 0
    assert cache_info["size"] == warmed

    # the speedup is exact-result: identical bits on every tick
    for fast_tick, comp_tick in zip(fast_out, comp_out):
        for slot in fast_tick:
            assert np.array_equal(fast_tick[slot], comp_tick[slot])

    prep_speedup = fast_prep / comp_prep
    total_speedup = (fast_prep + fast_shared) / (comp_prep + comp_shared)

    rows = [
        ["decode (cpu-fast)", f"{fast_prep * 1e3:.1f}",
         f"{fast_shared * 1e3:.1f}", "1.0x"],
        ["compiled (cpu-compiled)", f"{comp_prep * 1e3:.1f}",
         f"{comp_shared * 1e3:.1f}", f"{prep_speedup:.2f}x"],
    ]
    table = format_table(
        ["software path", "prep (ms)",
         f"assemble + {TICKS} ticks (ms)", "prep speedup"],
        rows,
        title=(
            f"compile-cache speedup: {len(offspring)} weight-mutated "
            f"mid-run CartPole offspring in {buckets} buckets "
            f"(end-to-end {total_speedup:.2f}x)"
        ),
    )
    write_output("compile_speedup", table)

    OUTPUT_DIR.mkdir(exist_ok=True)
    payload = {
        "workload": {
            "env": "cartpole",
            "population": len(offspring),
            "boot_generations": BOOT_GENERATIONS,
            "ticks": TICKS,
            "buckets": buckets,
        },
        "fast": {"prep_s": fast_prep, "shared_s": fast_shared},
        "compiled": {"prep_s": comp_prep, "shared_s": comp_shared},
        "compile_cache": cache_info,
        "prep_speedup": prep_speedup,
        "total_speedup": total_speedup,
        "floor": SPEEDUP_FLOOR,
        "target": SPEEDUP_TARGET,
        "bit_identical": True,
    }
    (OUTPUT_DIR / "BENCH_compile.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    assert prep_speedup >= SPEEDUP_FLOOR, (
        f"compiled prep only {prep_speedup:.2f}x over cpu-fast decode "
        f"(floor {SPEEDUP_FLOOR}x, target {SPEEDUP_TARGET}x)"
    )
