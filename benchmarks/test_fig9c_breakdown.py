"""Fig 9(c) — normalized runtime and per-function breakdown.

Each platform's phase times normalized to the E3-CPU total for the same
environment.  Paper's shape: the baseline's bar is dominated by
"evaluate"; E3-INAX's entire bar shrinks to a small fraction, with its
"evaluate" slice reduced to the same scale as the evolve-side functions
(E3-GPU is "too large to be displayed in this figure").
"""

from benchmarks.conftest import write_output
from repro.analysis.timing_profile import normalized_platform_breakdown
from repro.core.results import format_table


def _breakdowns(suite_experiments):
    out = {}
    for name, res in suite_experiments.items():
        out[name] = normalized_platform_breakdown(
            {p: r.times for p, r in res.platforms.items()}, baseline="cpu"
        )
    return out


def test_fig9c_normalized_breakdown(benchmark, suite_experiments):
    breakdowns = benchmark.pedantic(
        _breakdowns, args=(suite_experiments,), rounds=1, iterations=1
    )

    rows = []
    for env, by_platform in breakdowns.items():
        for platform in ("cpu", "inax", "gpu"):
            b = by_platform[platform]
            rows.append(
                [
                    env,
                    f"E3-{platform.upper()}",
                    f"{b['evaluate']:.4f}",
                    f"{b['env']:.4f}",
                    f"{b['createnet']:.4f}",
                    f"{b['evolve']:.4f}",
                    f"{sum(b.values()):.4f}",
                ]
            )
    table = format_table(
        ["env", "platform", "evaluate", "env-step", "createnet",
         "evolve", "total (vs CPU)"],
        rows,
        title="Fig 9(c): runtime normalized to E3-CPU (measured)",
    )
    write_output("fig9c_breakdown", table)

    for env, by_platform in breakdowns.items():
        cpu = by_platform["cpu"]
        inax = by_platform["inax"]
        gpu = by_platform["gpu"]
        # baseline bar sums to 1.0 and is evaluate-dominated
        assert abs(sum(cpu.values()) - 1.0) < 1e-9
        assert cpu["evaluate"] > 0.5, env
        # the accelerated bar is a small fraction of the baseline
        assert sum(inax.values()) < 0.5, env
        # E3-INAX's evaluate drops to the scale of the evolve-side work
        evolve_side = inax["evolve"] + inax["createnet"] + inax["env"]
        assert inax["evaluate"] < evolve_side, env
        # E3-GPU's bar is off the chart, exactly as the paper notes
        assert sum(gpu.values()) > 2.0, env
