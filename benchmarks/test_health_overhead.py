"""Guard: the ``--health`` monitor costs < 2% on the cpu-fast hot path.

The watchtower contract (``src/repro/obs``) is that streaming health
evaluation is a per-*generation* cost — one sample build plus a pass
over ~9 deterministic detectors — never a per-genome or per-step one.
This bench keeps that honest the same way the telemetry guard does:

1. **micro**: measure the per-generation cost of ``build_sample`` +
   detector evaluation directly on a realistic sample stream;
2. **macro**: run a capped cpu-fast CartPole evolution with health
   monitoring off, count the generations the monitored run crosses,
   and bound estimated monitor cost against the bare run's wall time.

Per-call-cost x generation-count is a stable upper bound where an A/B
wall-clock diff of two full runs would drown in scheduler jitter.

``benchmarks/output/BENCH_health_overhead.json`` captures the measured
fraction for the bench-trajectory regression gate (metric
``overhead_fraction``, lower is better, noisy).
"""

from __future__ import annotations

import json
import time
import timeit

from benchmarks.conftest import OUTPUT_DIR, write_output
from repro.core.platform import E3
from repro.neat.config import NEATConfig
from repro.obs.detectors import HealthConfig, build_detectors
from repro.obs.monitor import HealthMonitor, build_sample
from repro.neat.population import GenerationStats

POPULATION = 40
GENERATIONS = 4
MAX_HEALTH_OVERHEAD = 0.02  # same bar as the telemetry guard


def _run(monitor: HealthMonitor | None = None):
    platform = E3(
        "cartpole",
        backend="cpu-fast",
        neat_config=NEATConfig(population_size=POPULATION),
        seed=11,
        health=monitor,
    )
    t0 = time.perf_counter()
    result = platform.run(max_generations=GENERATIONS)
    return result, time.perf_counter() - t0


def _stats(generation: int) -> GenerationStats:
    return GenerationStats(
        generation=generation,
        best_fitness=50.0 + generation,
        mean_fitness=20.0,
        num_species=3,
        best_genome_key=1,
        mean_nodes=4.0,
        mean_connections=6.0,
        population_size=POPULATION,
        extras={"quarantined": 0.0, "cache_hits": 100.0 * generation,
                "cache_misses": 10.0},
    )


def _per_generation_cost() -> float:
    """Seconds per generation of sample build + detector evaluation."""
    loops = 2_000
    config = HealthConfig()
    detectors = build_detectors(config)
    samples = [_stats(g) for g in range(8)]
    counter = {"g": 0}

    def one_generation() -> None:
        g = counter["g"] = (counter["g"] + 1) % len(samples)
        sample = build_sample(samples[g])
        for detector in detectors:
            detector.observe(sample)

    return timeit.timeit(one_generation, number=loops) / loops


def test_health_monitor_overhead_under_two_percent():
    # macro run with health off: the protected baseline
    _, bare_seconds = _run()

    # the same run monitored, to count the generations it crosses
    monitor = HealthMonitor()
    monitored_result, _ = _run(monitor=monitor)
    generation_count = len(monitor.samples)

    per_generation = _per_generation_cost()
    estimated = generation_count * per_generation
    fraction = estimated / bare_seconds

    payload = {
        "population": POPULATION,
        "generations": generation_count,
        "bare_seconds": bare_seconds,
        "per_generation_seconds": per_generation,
        "estimated_seconds": estimated,
        "overhead_fraction": fraction,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "BENCH_health_overhead.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    write_output(
        "health_overhead",
        "\n".join(
            [
                "health-monitor overhead guard (cpu-fast cartpole, "
                f"pop {POPULATION}, {GENERATIONS} gens)",
                f"bare run:            {bare_seconds * 1e3:8.1f} ms",
                f"monitored gens:      {generation_count:8d}",
                f"per-generation cost: {per_generation * 1e6:8.1f} us",
                f"estimated overhead:  {estimated * 1e6:8.1f} us "
                f"({fraction * 100:.4f}% of run)",
            ]
        ),
    )

    assert monitored_result.generations == generation_count
    assert fraction < MAX_HEALTH_OVERHEAD
    # a single generation's health pass must stay sub-millisecond, or
    # the per-generation cost model above stops being the right one
    assert per_generation < 1e-3
