"""Fig 9(a) — INAX runtime breakdown vs network size.

Normalized runtime split into set-up / PE active / evaluate control
across increasing hidden-node counts (footnote-3 defaults otherwise).

Paper's shape: the larger the network (more hidden nodes = higher
computation intensity), the more the control overhead is hidden and the
higher the PE-active fraction — i.e. U(PE) grows with network size.
"""

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.synthetic import synthetic_population

HIDDEN_SWEEP = (5, 10, 20, 30, 50, 80)
NUM_INDIVIDUALS = 50
STEPS = 20


def _sweep():
    series = []
    for num_hidden in HIDDEN_SWEEP:
        pop = synthetic_population(
            num_individuals=NUM_INDIVIDUALS,
            num_hidden=num_hidden,
            seed=41,
        )
        cfg = INAXConfig(num_pus=1, num_pes_per_pu=1)
        report = schedule_generation(cfg, pop, [STEPS] * NUM_INDIVIDUALS)
        series.append((num_hidden, report.breakdown()))
    return series


def test_fig9a_inax_breakdown(benchmark):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = format_table(
        ["hidden nodes", "set-up", "PE active", "evaluate control"],
        [
            [
                h,
                f"{b['setup'] * 100:.1f}%",
                f"{b['pe_active'] * 100:.1f}%",
                f"{b['evaluate_control'] * 100:.1f}%",
            ]
            for h, b in series
        ],
        title="Fig 9(a): normalized INAX runtime breakdown (measured)",
    )
    write_output("fig9a_inax_breakdown", table)

    # every breakdown is a valid partition of the normalized runtime
    for _, b in series:
        assert abs(sum(b.values()) - 1.0) < 1e-9
        assert all(v >= 0 for v in b.values())

    # the paper's trend: PE-active fraction grows with network size
    actives = [b["pe_active"] for _, b in series]
    assert actives[-1] > actives[0]
    # and strictly dominates the sweep's small-vs-large endpoints for
    # control overhead (more compute hides more control)
    controls = [b["evaluate_control"] for _, b in series]
    assert controls[-1] < controls[0]
