"""Fig 10(b) — FPGA resource utilization of two INAX configurations.

``E3_a`` is the configuration the experiments use (PU=50, PE=#output
nodes <= 4); ``E3_b`` introduces more resources "for lower latency but
higher chance of under-utilization and higher energy".  Regenerated
from the resource model against the ZCU104's XCZU7EV capacities.
"""

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.hw.fpga_model import (
    ZCU104,
    estimate_fpga_power,
    estimate_inax_resources,
)

E3_A = {"num_pus": 50, "num_pes_per_pu": 4}
E3_B = {"num_pus": 100, "num_pes_per_pu": 8}


def _estimates():
    a = estimate_inax_resources(**E3_A)
    b = estimate_inax_resources(**E3_B)
    return a, b


def test_fig10b_fpga_resources(benchmark):
    res_a, res_b = benchmark.pedantic(_estimates, rounds=1, iterations=1)

    util_a = res_a.utilization(ZCU104)
    util_b = res_b.utilization(ZCU104)
    table = format_table(
        ["resource", "E3_a", "E3_b"],
        [
            [name, f"{util_a[name] * 100:.1f}%", f"{util_b[name] * 100:.1f}%"]
            for name in ("LUT", "FF", "BRAM", "DSP")
        ],
        title=(
            "Fig 10(b): FPGA resource utilization on XCZU7EV (modeled); "
            f"power E3_a={estimate_fpga_power(res_a):.2f}W, "
            f"E3_b={estimate_fpga_power(res_b):.2f}W"
        ),
    )
    write_output("fig10b_fpga_resources", table)

    # both configurations fit the device
    assert res_a.fits(ZCU104)
    assert res_b.fits(ZCU104)
    # E3_b uses strictly more of every resource class
    for name in ("LUT", "FF", "BRAM", "DSP"):
        assert util_b[name] > util_a[name]
        assert 0 < util_a[name] <= 1
    # and burns more power (the paper's stated trade-off)
    assert estimate_fpga_power(res_b) > estimate_fpga_power(res_a)
    # the experiment config is a modest-footprint design: every class
    # stays under half the device
    assert max(util_a.values()) < 0.8
