"""Ablation benches for the design decisions DESIGN.md calls out.

1. **Weight-buffer residency** (§IV-D1): the weight buffer exists
   because the same NN is reused across every env step of an episode.
   Ablation: reload the configuration over the weight channel on every
   step instead — the speedup of residency quantifies the decision.
2. **Output-stationary dataflow** (§IV-E): the paper rejects input-
   stationary (IS) because an irregular network's worst-case egress
   count equals the total node count, forcing resource
   over-provisioning.  Ablation: measure actual egress-port demand of
   evolved networks against what an IS design must provision.
3. **Layer synchronization** (§V-A3): the barrier between layers costs
   control cycles; the ablation quantifies the (unrealizable) upper
   bound of a sync-free execution as context for the control-overhead
   bucket of Fig 9(a).
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.pu import PUCosts, _static_step_cycles
from repro.inax.synthetic import synthetic_population

NUM_INDIVIDUALS = 50
STEPS = 30


def _population():
    return synthetic_population(num_individuals=NUM_INDIVIDUALS, seed=51)


def test_ablation_weight_buffer_residency(benchmark):
    def run():
        pop = _population()
        lengths = [STEPS] * NUM_INDIVIDUALS
        cfg = INAXConfig(num_pus=10, num_pes_per_pu=4)
        resident = schedule_generation(cfg, pop, lengths)

        # ablated: the configuration streams in again on every step
        def reload_step_cycles(net):
            base = _static_step_cycles(
                net, cfg.num_pes_per_pu, cfg.pe_costs, cfg.pu_costs
            )
            reload_cost = cfg.dma.transfer_cycles(net.config_words)
            return base + reload_cost

        reloaded = schedule_generation(
            cfg, pop, lengths, step_cycles_fn=reload_step_cycles
        )
        return resident, reloaded

    resident, reloaded = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = reloaded.total_cycles / resident.total_cycles
    write_output(
        "ablation_weight_residency",
        format_table(
            ["design", "total cycles"],
            [
                ["weight buffer (resident)", f"{resident.total_cycles:,.0f}"],
                ["reload every step", f"{reloaded.total_cycles:,.0f}"],
                ["residency speedup", f"{ratio:.2f}x"],
            ],
            title="Ablation: weight-buffer residency (§IV-D1)",
        ),
    )
    assert ratio > 1.3  # residency is a significant win
    assert resident.setup_cycles == reloaded.setup_cycles


def test_ablation_output_stationary_provisioning(benchmark):
    def run():
        pop = _population()
        # OS provisioning: one accumulator per PE.
        # IS provisioning: one partial-sum port per egress of the
        # currently-streamed value; hardware must provision the worst
        # case across any network it may execute.
        worst_egress = 0
        mean_egress = []
        for net in pop:
            egress: dict[int, int] = {}
            for layer in net.layers:
                for plan in layer:
                    for src, _ in plan.ingress:
                        egress[src] = egress.get(src, 0) + 1
            if egress:
                worst_egress = max(worst_egress, max(egress.values()))
                mean_egress.append(np.mean(list(egress.values())))
        return worst_egress, float(np.mean(mean_egress))

    worst, mean = benchmark.pedantic(run, rounds=1, iterations=1)
    over_provision = worst / mean
    write_output(
        "ablation_dataflow",
        format_table(
            ["metric", "value"],
            [
                ["worst-case egress (IS must provision)", worst],
                ["mean egress (typical demand)", f"{mean:.2f}"],
                ["IS over-provisioning factor", f"{over_provision:.1f}x"],
                ["OS accumulators per PE", 1],
            ],
            title="Ablation: IS vs OS dataflow provisioning (§IV-E)",
        ),
    )
    # the paper's argument: worst case >> typical demand
    assert over_provision > 2.0
    assert worst >= 4


def test_ablation_layer_sync_cost(benchmark):
    def run():
        pop = _population()
        lengths = [STEPS] * NUM_INDIVIDUALS
        synced = schedule_generation(
            INAXConfig(num_pus=10, num_pes_per_pu=4), pop, lengths
        )
        free = schedule_generation(
            INAXConfig(
                num_pus=10,
                num_pes_per_pu=4,
                pu_costs=PUCosts(layer_sync_cycles=0),
            ),
            pop,
            lengths,
        )
        return synced, free

    synced, free = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = synced.total_cycles / free.total_cycles - 1.0
    write_output(
        "ablation_layer_sync",
        format_table(
            ["design", "total cycles"],
            [
                ["with layer barriers", f"{synced.total_cycles:,.0f}"],
                ["barrier-free bound", f"{free.total_cycles:,.0f}"],
                ["sync overhead", f"{overhead * 100:.1f}%"],
            ],
            title="Ablation: layer synchronization cost (§V-A3)",
        ),
    )
    assert synced.total_cycles > free.total_cycles
    assert overhead < 0.5  # barriers are real but not dominant


def test_ablation_io_overlap(benchmark):
    """Double-buffered I/O (§IV pipelining): step cost becomes
    max(compute, DMA) instead of compute + DMA."""

    def run():
        pop = _population()
        lengths = [STEPS] * NUM_INDIVIDUALS
        serial = schedule_generation(
            INAXConfig(num_pus=10, num_pes_per_pu=4), pop, lengths
        )
        overlapped = schedule_generation(
            INAXConfig(num_pus=10, num_pes_per_pu=4, overlap_io=True),
            pop,
            lengths,
        )
        return serial, overlapped

    serial, overlapped = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = serial.total_cycles / overlapped.total_cycles
    write_output(
        "ablation_io_overlap",
        format_table(
            ["design", "total cycles"],
            [
                ["serial DMA", f"{serial.total_cycles:,.0f}"],
                ["double-buffered DMA", f"{overlapped.total_cycles:,.0f}"],
                ["overlap speedup", f"{speedup:.2f}x"],
            ],
            title="Ablation: DMA/compute overlap (double-buffered I/O)",
        ),
    )
    assert overlapped.total_cycles < serial.total_cycles
    assert 1.0 < speedup < 2.0  # bounded by Amdahl on the io share
