"""Fig 11 — INAX vs the GeneSys-style systolic array (SA).

(a) averaged required HW cycles across the suite's evolved networks for
both accelerator structures across PE counts; (b) the speedups.

Setup mirrors §VI-F: PU=50 for both (the SA is PU-parallelized for
fairness), PE swept over {1, 2, 4, 8, 16, 64}; INAX additionally at the
heuristic point PE = #output nodes.

Paper's shape: INAX saturates at the heuristic PE count (over-providing
8/16/64 PEs buys nothing); the SA keeps improving to ~16 PEs because of
dummy-node padding but its best point is still ~3x slower than INAX;
across the sweep INAX is 3x-12.6x faster.
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.systolic import schedule_generation_sa

PE_SWEEP = (1, 2, 4, 8, 16, 64)
NUM_PUS = 50


def _avg_cycles(suite_experiments, runner):
    """Average per-environment cycles for a given scheduler."""
    per_pe = {}
    for num_pes in PE_SWEEP:
        cfg = INAXConfig(num_pus=NUM_PUS, num_pes_per_pu=num_pes)
        env_cycles = []
        for res in suite_experiments.values():
            # final generation's evolved population = the Fig 11 workload
            record = res.run.records[-1]
            report = runner(cfg, record.configs, record.episode_lengths)
            env_cycles.append(report.total_cycles)
        per_pe[num_pes] = float(np.mean(env_cycles))
    return per_pe


def _collect(suite_experiments):
    inax = _avg_cycles(suite_experiments, schedule_generation)
    sa = _avg_cycles(suite_experiments, schedule_generation_sa)
    return inax, sa


def test_fig11_inax_vs_sa(benchmark, suite_experiments):
    inax, sa = benchmark.pedantic(
        _collect, args=(suite_experiments,), rounds=1, iterations=1
    )

    table = format_table(
        ["#PE", "INAX cycles", "SA cycles", "SA/INAX"],
        [
            [pe, f"{inax[pe]:,.0f}", f"{sa[pe]:,.0f}", f"{sa[pe] / inax[pe]:.1f}x"]
            for pe in PE_SWEEP
        ],
        title="Fig 11: avg required HW cycles, INAX vs systolic array "
        "(measured on the suite's evolved populations)",
    )
    write_output("fig11_inax_vs_sa", table)

    # INAX beats the SA at every PE count
    for pe in PE_SWEEP:
        assert inax[pe] < sa[pe], pe

    # speedups fall in (or near) the paper's 3x-12.6x band
    ratios = [sa[pe] / inax[pe] for pe in PE_SWEEP]
    assert max(ratios) > 2.5
    assert min(ratios) > 1.2
    assert max(ratios) < 40

    # over-providing PEs stops helping INAX beyond the heuristic point
    # (evolved output layers here are 1-4 nodes wide)
    assert inax[8] / inax[64] < 1.15
    # while the SA still gains from 4 -> 16 PEs (dummy-node padding)
    assert sa[16] < sa[4]
    # SA's best configuration remains slower than INAX's best
    assert min(sa.values()) > min(inax.values())
