"""Fig 8 / §V "Parallelism Across PU and PE" — the combined sweep.

The paper illustrates combined PU+PE parallelism (Fig 8) and reports
("we do not plot quantitative results in the interest of space") that
the U(PE) response surface over the (PU, PE) grid follows the expected
behaviours: runtime falls along both axes, utilization peaks where both
heuristics align (PU on the population ladder, PE at the output width).
This bench regenerates that surface.
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.synthetic import synthetic_population

POPULATION = 120
NUM_OUTPUTS = 4
STEPS = 15
PU_AXIS = (15, 24, 30, 40, 60, 120)  # population ladder points for 120
PE_AXIS = (1, 2, 3, 4, 5, 6, 8)


def _surface():
    pop = synthetic_population(
        num_individuals=POPULATION, num_outputs=NUM_OUTPUTS, seed=61
    )
    lengths = [STEPS] * POPULATION
    cycles = {}
    u_pe = {}
    for num_pus in PU_AXIS:
        for num_pes in PE_AXIS:
            cfg = INAXConfig(num_pus=num_pus, num_pes_per_pu=num_pes)
            report = schedule_generation(cfg, pop, lengths)
            cycles[(num_pus, num_pes)] = report.total_cycles
            u_pe[(num_pus, num_pes)] = report.u_pe
    return cycles, u_pe


def test_fig8_combined_parallelism(benchmark):
    cycles, u_pe = benchmark.pedantic(_surface, rounds=1, iterations=1)

    rows = []
    for num_pus in PU_AXIS:
        rows.append(
            [num_pus]
            + [f"{u_pe[(num_pus, num_pes)]:.3f}" for num_pes in PE_AXIS]
        )
    table = format_table(
        ["PU \\ PE"] + [str(p) for p in PE_AXIS],
        rows,
        title="Fig 8 / SV: U(PE) response surface over the (PU, PE) grid "
        f"(population {POPULATION}, {NUM_OUTPUTS} outputs)",
    )
    write_output("fig8_combined_parallelism", table)

    # runtime falls (weakly) along both axes
    for num_pes in PE_AXIS:
        for a, b in zip(PU_AXIS, PU_AXIS[1:]):
            assert cycles[(b, num_pes)] <= cycles[(a, num_pes)] * 1.01
    for num_pus in PU_AXIS:
        for a, b in zip(PE_AXIS, PE_AXIS[1:]):
            assert cycles[(num_pus, b)] <= cycles[(num_pus, a)] * 1.01

    # the PE heuristic holds at every PU point: U(PE) at the output
    # width beats the off-by-one over-provisioned neighbour
    for num_pus in PU_AXIS:
        assert (
            u_pe[(num_pus, NUM_OUTPUTS)] > u_pe[(num_pus, NUM_OUTPUTS + 1)]
        ), num_pus

    # and over-provisioning both axes yields the worst utilization corner
    worst_corner = u_pe[(PU_AXIS[-1], PE_AXIS[-1])]
    assert worst_corner <= min(
        u_pe[(PU_AXIS[0], PE_AXIS[0])],
        u_pe[(PU_AXIS[0], PE_AXIS[-1])],
        u_pe[(PU_AXIS[-1], PE_AXIS[0])],
    ) + 0.05
