"""Fast software path — speedup of ``cpu-fast`` over the interpreted path.

The ``cpu-fast`` backend exists so software-only experimentation (and
the Fig 9/10 functional runs) doesn't pay the interpreted per-node
forward pass the paper profiles in Fig 1(b).  This bench measures one
full-generation ``evaluate()`` of an identical CartPole population on
both software backends and records:

* the wall-clock speedup (required: at least 2x on this population);
* that the fitness values and episode lengths agree bit-for-bit — the
  speedup is free, not an approximation.

The population is a *mid-run* one: NEAT evolves CartPole for a few
generations first, so episode lengths look like a real run (waves of
long-surviving individuals) rather than generation-0 noise where most
episodes die within ~15 steps and per-step costs are dominated by the
environment itself.
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_output
from repro.core.backends import CPUBackend, FastCPUBackend
from repro.core.results import format_table
from repro.neat.config import NEATConfig
from repro.neat.population import Population

NUM_GENOMES = 100
BOOT_GENERATIONS = 6
EPISODES = 2
BASE_SEED = 11


def _midrun_population(config: NEATConfig):
    """Evolve CartPole briefly and return the live population."""
    boot = FastCPUBackend(
        "cartpole", config, episodes_per_genome=1, base_seed=3
    )
    population = Population(config, seed=3)
    population.run(boot.evaluate, max_generations=BOOT_GENERATIONS)
    boot.close()
    return list(population.population)


def _timed_evaluate(backend, genomes, repeats=2):
    """Best-of-N wall time for one full-generation evaluate()."""
    best = float("inf")
    for _ in range(repeats):
        for genome in genomes:
            genome.fitness = None
        start = time.perf_counter()
        backend.evaluate(genomes)
        best = min(best, time.perf_counter() - start)
    return best


def test_fastpath_speedup():
    config = NEATConfig(
        num_inputs=4, num_outputs=2, population_size=NUM_GENOMES
    )
    genomes = _midrun_population(config)
    assert len(genomes) >= 50

    cpu = CPUBackend(
        "cartpole", config, episodes_per_genome=EPISODES, base_seed=BASE_SEED
    )
    fast = FastCPUBackend(
        "cartpole", config, episodes_per_genome=EPISODES, base_seed=BASE_SEED
    )
    slow_pop = [g.copy() for g in genomes]
    fast_pop = [g.copy() for g in genomes]
    slow_seconds = _timed_evaluate(cpu, slow_pop)
    fast_seconds = _timed_evaluate(fast, fast_pop)
    speedup = slow_seconds / fast_seconds

    # the speedup must be exact-result: same floats, same episode lengths
    assert [g.fitness for g in slow_pop] == [g.fitness for g in fast_pop]
    assert (
        cpu.records[-1].episode_lengths == fast.records[-1].episode_lengths
    )

    steps = sum(cpu.records[-1].episode_lengths)
    rows = [
        ["interpreted (cpu)", f"{slow_seconds * 1e3:.1f}",
         f"{slow_seconds / steps * 1e6:.1f}", "1.0x"],
        ["vectorized (cpu-fast)", f"{fast_seconds * 1e3:.1f}",
         f"{fast_seconds / steps * 1e6:.1f}", f"{speedup:.2f}x"],
    ]
    table = format_table(
        ["software path", "generation (ms)", "per env step (us)", "speedup"],
        rows,
        title=(
            f"cpu-fast speedup: {len(genomes)} mid-run CartPole genomes x "
            f"{EPISODES} episodes, {steps} env steps"
        ),
    )
    write_output("fastpath_speedup", table)
    fast.close()

    assert speedup >= 2.0, f"cpu-fast only {speedup:.2f}x over interpreted"
