"""Fig 9(b) — runtime comparison of E3-CPU, E3-GPU, E3-INAX per env.

Paper's table (seconds): e.g. Env1 0.3 / 11.7 / 0.02 ... Env6 527 /
9,749 / 20.9.  The shape to hold per environment: E3-GPU is slower
than E3-CPU (irregularity + small batches make the GPU a net loss),
and E3-INAX is an order of magnitude or more faster than E3-CPU; the
paper's headline is a ~30x average speedup (its per-env range is
~15-65x; our capped runs evolve smaller networks, so the measured
average sits lower — see EXPERIMENTS.md).
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_seconds, format_table
from repro.envs.registry import ENV_SUITE


def _rows(suite_experiments):
    rows = []
    for spec in ENV_SUITE:
        res = suite_experiments[spec.name]
        rows.append(
            (
                spec.paper_id,
                res.platforms["cpu"].runtime_seconds,
                res.platforms["gpu"].runtime_seconds,
                res.platforms["inax"].runtime_seconds,
                res.speedup(),
            )
        )
    return rows


def test_fig9b_runtime(benchmark, suite_experiments):
    rows = benchmark.pedantic(
        _rows, args=(suite_experiments,), rounds=1, iterations=1
    )

    table = format_table(
        ["env", "E3-CPU (s)", "E3-GPU (s)", "E3-INAX (s)", "CPU/INAX"],
        [
            [
                env,
                format_seconds(cpu),
                format_seconds(gpu),
                format_seconds(inax),
                f"{speedup:.1f}x",
            ]
            for env, cpu, gpu, inax, speedup in rows
        ],
        title="Fig 9(b): experiment runtime results (measured)",
    )
    write_output("fig9b_runtime", table)

    speedups = []
    for env, cpu, gpu, inax, speedup in rows:
        # ordering per environment: GPU slowest, INAX fastest
        assert gpu > cpu > inax, env
        # GPU is a multiple of CPU (paper band roughly 18x-40x)
        assert gpu / cpu > 5, env
        # INAX acceleration is at least several-fold everywhere
        assert speedup > 3, env
        speedups.append(speedup)

    # averaged speedup lands in a band consistent with the paper's 30x
    # given the smaller evolved networks of the capped runs
    mean_speedup = float(np.mean(speedups))
    assert 5 < mean_speedup < 100
