"""Table V — network complexity: RL MLPs vs NEAT-evolved networks.

Per suite environment: node/connection counts of the *Small* (2x64)
and *Large* (3x256) MLP policies, against the average size of the
networks NEAT actually evolved in the suite runs.

Paper's shape: Small MLPs have ~130-160 nodes and ~4.4K-5.9K
connections, Large ~5.2K-6.7K nodes and ~1.2M-1.6M connections, while
NEAT's evolved averages are ~5-32 nodes and ~4-80 connections — three
to five orders smaller.
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.envs.registry import ENV_SUITE, make
from repro.rl.policies import LARGE_HIDDEN, SMALL_HIDDEN
from repro.rl.profiling import mlp_complexity


def _rows(suite_experiments):
    rows = []
    for spec in ENV_SUITE:
        env = make(spec.name)
        small = mlp_complexity(env.num_inputs, SMALL_HIDDEN, env.num_outputs)
        large = mlp_complexity(env.num_inputs, LARGE_HIDDEN, env.num_outputs)
        history = suite_experiments[spec.name].run.history
        neat_nodes = float(np.mean([h.mean_nodes for h in history]))
        neat_conns = float(np.mean([h.mean_connections for h in history]))
        rows.append((spec, small, large, (neat_nodes, neat_conns)))
    return rows


def test_table5_complexity(benchmark, suite_experiments):
    rows = benchmark.pedantic(
        _rows, args=(suite_experiments,), rounds=1, iterations=1
    )

    table = format_table(
        ["env", "small nodes", "small conns", "large nodes",
         "large conns", "NEAT avg nodes", "NEAT avg conns"],
        [
            [
                spec.paper_id,
                small[0],
                small[1],
                large[0],
                large[1],
                f"{neat[0]:.1f}",
                f"{neat[1]:.1f}",
            ]
            for spec, small, large, neat in rows
        ],
        title="Table V: network complexity (measured)",
    )
    write_output("table5_complexity", table)

    for spec, small, large, neat in rows:
        # the Large net dwarfs the Small net (paper: ~40x nodes; the
        # connection ratio dips to ~23x for the widest-input task)
        assert large[0] > 5 * small[0]
        assert large[1] > 20 * small[1]
        # NEAT's evolved networks are orders smaller than even Small
        assert neat[0] < small[0] / 2, spec.name
        assert neat[1] < small[1] / 10, spec.name
        # paper band: evolved nets are tens of nodes, not hundreds
        assert neat[0] < 100


def test_small_mlp_matches_paper_counts():
    # paper Table V small/cartpole: 133 nodes, 4,416 connections; our
    # convention counts every node, so allow a few nodes of slack
    nodes, conns = mlp_complexity(4, SMALL_HIDDEN, 2)
    assert abs(nodes - 133) <= 5
    assert abs(conns - 4416) / 4416 < 0.05
