"""Future-work and datapath extension benches (beyond the paper's eval).

1. **Activation sparsity** (§VII: "Irregular NNs also have activation
   sparsity, which we did not investigate in this study and is ripe for
   future work") — quantify the PE-cycle saving of skipping zero-valued
   activations on ReLU-activated evolved networks.
2. **Fixed-point datapath** — the FPGA computes in fixed-point; measure
   the end-to-end numeric drift and the *behavioural* agreement (does
   the quantized device pick the same actions?) across formats.
3. **Regular-network efficiency** (Table VI's claim that INAX is
   "efficient for both regular and irregular NN") — compare INAX and
   the systolic array on a *dense, regular* MLP workload, where the
   SA's structural assumptions hold.
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.envs.registry import make
from repro.envs.rollout import decode_action
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.compiler import compile_genome
from repro.inax.datapath import FixedPointFormat
from repro.inax.pu import ProcessingUnit
from repro.inax.synthetic import random_irregular_genome, synthetic_population
from repro.inax.systolic import schedule_generation_sa
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.neat.network import FeedForwardNetwork


def test_futurework_activation_sparsity(benchmark):
    def run():
        cfg = NEATConfig(
            num_inputs=8,
            num_outputs=4,
            default_activation="relu",
            activation_options=("relu",),
        )
        rng = np.random.default_rng(71)
        tracker = InnovationTracker(4)
        savings = []
        for i in range(20):
            # multi-layer hidden structure so hidden->hidden MACs (the
            # ones fed by ReLU zeros) dominate the connection count
            genome = random_irregular_genome(
                i, cfg, 30, 0.2, rng, tracker, num_hidden_layers=3
            )
            hw = compile_genome(genome, cfg)
            dense = ProcessingUnit(4)
            sparse = ProcessingUnit(4, skip_zero_activations=True)
            dense.load(hw)
            sparse.load(hw)
            for _ in range(5):
                x = rng.uniform(-1, 1, size=8)
                out_d, t_d = dense.infer(x)
                out_s, t_s = sparse.infer(x)
                assert np.array_equal(out_d, out_s)
                savings.append(
                    1 - t_s.pe_active_cycles / t_d.pe_active_cycles
                )
        return float(np.mean(savings)), float(np.max(savings))

    mean_saving, max_saving = benchmark.pedantic(run, rounds=1, iterations=1)
    write_output(
        "futurework_activation_sparsity",
        format_table(
            ["metric", "value"],
            [
                ["mean PE-active cycles saved", f"{mean_saving * 100:.1f}%"],
                ["max PE-active cycles saved", f"{max_saving * 100:.1f}%"],
            ],
            title="Future work (SVII): zero-activation skipping on ReLU "
            "irregular nets",
        ),
    )
    # ReLU zeroes a meaningful share of activations
    assert mean_saving > 0.10
    assert max_saving <= 1.0


def test_ablation_fixed_point_datapath(benchmark):
    def run():
        cfg = NEATConfig(num_inputs=4, num_outputs=2)
        rng = np.random.default_rng(72)
        tracker = InnovationTracker(2)
        env = make("cartpole")
        rows = []
        for fmt in (
            FixedPointFormat(8, 4),
            FixedPointFormat(8, 8),
            FixedPointFormat(8, 12),
        ):
            errors = []
            action_agreement = 0
            trials = 0
            for i in range(10):
                genome = random_irregular_genome(
                    i, cfg, 8, 0.3, rng, tracker
                )
                hw = compile_genome(genome, cfg)
                net = FeedForwardNetwork.create(genome, cfg)
                pu = ProcessingUnit(2, datapath=fmt)
                pu.load(hw)
                for _ in range(10):
                    x = rng.uniform(-1, 1, size=4)
                    exact = net.activate(x)
                    quant, _ = pu.infer(x)
                    errors.append(float(np.max(np.abs(exact - quant))))
                    trials += 1
                    if decode_action(env, exact) == decode_action(env, quant):
                        action_agreement += 1
            rows.append(
                (str(fmt), float(np.mean(errors)), action_agreement / trials)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_output(
        "ablation_fixed_point",
        format_table(
            ["format", "mean |error|", "action agreement"],
            [[f, f"{e:.5f}", f"{a * 100:.1f}%"] for f, e, a in rows],
            title="Ablation: fixed-point datapath vs float64 reference",
        ),
    )
    errors = [e for _, e, _ in rows]
    agreements = [a for _, _, a in rows]
    # more fractional bits -> smaller error, better agreement
    assert errors[0] > errors[1] > errors[2]
    assert agreements[2] >= agreements[0]
    # Q8.12 behaves like the float reference almost always
    assert agreements[2] > 0.95


def test_futurework_regular_network_efficiency(benchmark):
    def run():
        # a dense, regular two-layer MLP population: the SA's home turf
        regular = synthetic_population(
            num_individuals=30,
            num_hidden=16,
            sparsity=1.0,  # fully connected adjacent layers + all skips
            seed=73,
        )
        irregular = synthetic_population(
            num_individuals=30, num_hidden=16, sparsity=0.15, seed=73
        )
        cfg = INAXConfig(num_pus=10, num_pes_per_pu=4)
        lengths = [10] * 30
        out = {}
        for name, pop in (("regular", regular), ("irregular", irregular)):
            inax = schedule_generation(cfg, pop, lengths)
            sa = schedule_generation_sa(cfg, pop, lengths)
            out[name] = (inax.total_cycles, sa.total_cycles)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    write_output(
        "futurework_regular_efficiency",
        format_table(
            ["workload", "INAX cycles", "SA cycles", "SA/INAX"],
            [
                [name, f"{i:,.0f}", f"{s:,.0f}", f"{s / i:.2f}x"]
                for name, (i, s) in results.items()
            ],
            title="Table VI claim: INAX efficiency on regular vs irregular "
            "networks",
        ),
    )
    reg_inax, reg_sa = results["regular"]
    irr_inax, irr_sa = results["irregular"]
    # INAX never loses to the SA, even on the SA's preferred workload
    assert reg_inax <= reg_sa * 1.05
    # and its advantage *grows* on irregular networks — the design point
    assert (irr_sa / irr_inax) > (reg_sa / reg_inax)
