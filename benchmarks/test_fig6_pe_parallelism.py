"""Fig 6 — parallelism across PEs: runtime and U(PE) vs PE count.

Footnote-3 setup: 200 individuals, 8 inputs, 30 hidden nodes, sparsity
0.2, PU=1; two output widths (a) k=10 and (b) k=15.

Paper's shape: runtime decreases monotonically with PE count; U(PE)
mostly decreases but shows local peaks at k and at the resource-
restricted ladder points ceil(k/2), ceil(k/3), ... (§V-A's heuristic).
"""

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.heuristics import pe_candidates
from repro.inax.synthetic import synthetic_population

STEPS_PER_INDIVIDUAL = 20
NUM_INDIVIDUALS = 100  # paper uses 200; halved to keep the sweep quick
PE_SWEEP = list(range(1, 21))


def _sweep(num_outputs: int):
    pop = synthetic_population(
        num_individuals=NUM_INDIVIDUALS,
        num_outputs=num_outputs,
        seed=21,
    )
    lengths = [STEPS_PER_INDIVIDUAL] * len(pop)
    series = []
    for num_pes in PE_SWEEP:
        cfg = INAXConfig(num_pus=1, num_pes_per_pu=num_pes)
        report = schedule_generation(cfg, pop, lengths)
        series.append((num_pes, report.total_cycles, report.u_pe))
    return series


def _run_both():
    return {10: _sweep(10), 15: _sweep(15)}


def test_fig6_pe_parallelism(benchmark):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    blocks = []
    for k, series in results.items():
        blocks.append(
            format_table(
                ["#PE", "runtime (cycles)", "U(PE)"],
                [
                    [pe, f"{cycles:,.0f}", f"{u:.3f}"]
                    for pe, cycles, u in series
                ],
                title=f"Fig 6: PE sweep with {k} output nodes (measured)",
            )
        )
    write_output("fig6_pe_parallelism", "\n\n".join(blocks))

    for k, series in results.items():
        cycles = {pe: c for pe, c, _ in series}
        u = {pe: util for pe, _, util in series}

        # runtime decreases with more PEs.  In-order output-stationary
        # chunking allows sub-percent jitter between adjacent counts
        # (regrouping can pair heavy nodes differently), so the check
        # tolerates 1% locally and requires a strict overall drop.
        for a, b in zip(PE_SWEEP, PE_SWEEP[1:]):
            assert cycles[b] <= cycles[a] * 1.01, (k, a, b)
        assert cycles[PE_SWEEP[-1]] < cycles[1] / 2

        # local U(PE) peak exactly at the output-layer width k
        assert u[k] > u[k - 1], f"no peak at k={k}"
        # and at the first resource-restricted ladder point ceil(k/2)
        half = pe_candidates(k)[1]
        assert u[half] > u[half + 1] or u[half] > u[half - 1], (
            f"no local peak near ceil(k/2)={half}"
        )
        # overall trend: far more PEs -> lower utilization
        assert u[PE_SWEEP[-1]] < u[1]
