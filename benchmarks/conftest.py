"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation has one benchmark
module.  The heavy work (full NEAT runs across the six-environment
suite) happens once per session here; individual benches regenerate
their table/series from the shared results, assert the paper's *shape*
(who wins, by roughly what factor, where the peaks fall), and write the
regenerated rows to ``benchmarks/output/``.

Scale note: the paper runs population 200 to each task's required
fitness on a desktop.  To keep the harness runnable in minutes, the
suite fixture uses population 100 and per-environment generation caps;
EXPERIMENTS.md records the effect (evolved networks are smaller than
the paper's, so measured speedups sit at the lower end of its range).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.experiment import ExperimentResult
from repro.core.suite import BENCH_SETTINGS, run_suite

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: per-environment generation caps for the benchmark suite runs
SUITE_GENERATIONS = dict(BENCH_SETTINGS.generations)

SUITE_POPULATION = BENCH_SETTINGS.population_size


def write_output(name: str, text: str) -> None:
    """Persist a regenerated table/series for inspection."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


@pytest.fixture(scope="session")
def suite_experiments() -> dict[str, ExperimentResult]:
    """One capped NEAT run per suite environment, priced on all
    platforms.  Shared by the Fig 9 / Fig 10 / Fig 11 / Table V benches."""
    return run_suite(BENCH_SETTINGS)
