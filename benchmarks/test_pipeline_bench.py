"""Pipeline bench: LPT packing + prefetch on a skewed-length workload.

The §V-B2 drain effect is worst when a handful of long-lived episodes
are scattered across arrival-order waves: each one pins a mostly-idle
wave open.  This bench builds exactly that adversary — one ~20x "hero"
episode per arrival wave — and asserts the pipelined engine
(``--schedule lpt --prefetch``) recovers at least the 15% the issue's
acceptance bar demands, with the analytic scheduler and the functional
device agreeing cycle-for-cycle.  The measured numbers land in
``benchmarks/output/BENCH_pipeline.json`` for the CI artifact.
"""

import json
import pathlib

from benchmarks.conftest import OUTPUT_DIR
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.pipeline import PipelineConfig
from repro.inax.synthetic import synthetic_population

NUM_PUS = 5
NUM_INDIVIDUALS = 30  # 6 full waves
HERO_STEPS = 400
FILLER_STEPS = 20


def _skewed_lengths() -> list[int]:
    """One long 'hero' episode per arrival wave, fillers elsewhere."""
    lengths = [FILLER_STEPS] * NUM_INDIVIDUALS
    for start in range(0, NUM_INDIVIDUALS, NUM_PUS):
        lengths[start + (start // NUM_PUS) % NUM_PUS] = HERO_STEPS
    return lengths


def test_lpt_prefetch_beats_arrival_order():
    config = INAXConfig(num_pus=NUM_PUS, num_pes_per_pu=2)
    pop = synthetic_population(num_individuals=NUM_INDIVIDUALS, seed=9)
    lengths = _skewed_lengths()

    reports = {}
    for name, pipeline in [
        ("arrival", PipelineConfig()),
        ("arrival+prefetch", PipelineConfig(prefetch=True)),
        ("lpt", PipelineConfig(schedule="lpt")),
        ("lpt+prefetch", PipelineConfig(schedule="lpt", prefetch=True)),
    ]:
        reports[name] = schedule_generation(
            config, pop, lengths, pipeline=pipeline
        )

    base = reports["arrival"].total_cycles
    best = reports["lpt+prefetch"].total_cycles
    reduction = 1.0 - best / base

    payload = {
        "workload": {
            "num_pus": NUM_PUS,
            "individuals": NUM_INDIVIDUALS,
            "hero_steps": HERO_STEPS,
            "filler_steps": FILLER_STEPS,
        },
        "policies": {
            name: {
                "total_cycles": report.total_cycles,
                "setup_cycles": report.setup_cycles,
                "compute_cycles": report.compute_cycles,
                "prefetch_hidden_cycles": report.prefetch_hidden_cycles,
                "packing_efficiency": round(report.packing_efficiency, 4),
                "waves": report.waves,
            }
            for name, report in reports.items()
        },
        "reduction_vs_arrival": round(reduction, 4),
        "acceptance_floor": 0.15,
    }
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / "BENCH_pipeline.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nlpt+prefetch vs arrival: -{reduction:.1%} total cycles")
    print(f"[written to {path}]")

    # the acceptance bar: >= 15% fewer total generation cycles
    assert reduction >= 0.15, payload
    # each policy is monotonic: prefetch never hurts, lpt never hurts
    assert (
        reports["arrival+prefetch"].total_cycles
        <= reports["arrival"].total_cycles
    )
    assert reports["lpt"].total_cycles <= reports["arrival"].total_cycles
    assert best <= reports["lpt"].total_cycles
    # packing efficiency is the mechanism: lpt packs heroes together
    assert (
        reports["lpt"].packing_efficiency
        > reports["arrival"].packing_efficiency
    )
    # fitness-side invariant is pinned by the determinism property
    # tests; here the two cycle paths must agree on the winning policy
    assert reports["lpt+prefetch"].prefetch_hidden_cycles > 0
