"""Fig 9(d) — E3's timing profile after acceleration.

The contrast to Fig 1(b): once "evaluate" runs on INAX, no single
function dominates the runtime — E3 shows "a more balanced time
distribution among each function".
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table


def _profiles(suite_experiments):
    out = {}
    for name, res in suite_experiments.items():
        out[name] = res.platforms["inax"].times.fractions()
    return out


def test_fig9d_e3_profile(benchmark, suite_experiments):
    profiles = benchmark.pedantic(
        _profiles, args=(suite_experiments,), rounds=1, iterations=1
    )

    table = format_table(
        ["env", "evaluate", "env-step", "createnet", "evolve"],
        [
            [
                name,
                f"{p['evaluate'] * 100:.1f}%",
                f"{p['env'] * 100:.1f}%",
                f"{p['createnet'] * 100:.1f}%",
                f"{p['evolve'] * 100:.1f}%",
            ]
            for name, p in profiles.items()
        ],
        title="Fig 9(d): E3-INAX timing profile (measured)",
    )
    write_output("fig9d_e3_profile", table)

    for name, p in profiles.items():
        assert abs(sum(p.values()) - 1.0) < 1e-9
        # evaluate no longer dominates (it was >90% on E3-CPU) — the
        # figure's claim.  What *can* dominate instead is the env step
        # itself on tasks that solve with embryonic networks.
        assert p["evaluate"] < 0.5, name
        assert p["evaluate"] < max(p.values()), name

    # suite-average evaluate share collapses vs the Fig 1(b) profile
    mean_eval = float(np.mean([p["evaluate"] for p in profiles.values()]))
    assert mean_eval < 0.1
