"""Table VI (quantified) — E3 vs a CLAN-style edge cluster.

The paper's Table VI compares continuous-learning accelerators
qualitatively; CLAN [24] is the closest philosophical alternative (same
NEAT workload, scale-out commodity CPUs instead of one co-designed
device).  This bench quantifies the contrast on the suite workload:

* E3-INAX accelerates evaluate *inside one device* — no network round;
* CLAN approaches E3 only with tens of worker nodes, at a multiple of
  the energy (every node is powered for the whole generation).
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.hw.clan_model import CLANConfig, CLANModel
from repro.hw.cpu_model import CPUModel


def _compare(suite_experiments):
    rows = []
    for name, res in suite_experiments.items():
        gen = res.run.records[-1].workload
        inax_total = res.platforms["inax"].runtime_seconds / max(
            res.generations, 1
        )
        clan_rows = {}
        for workers in (1, 4, 16, 64):
            model = CLANModel(CLANConfig(num_workers=workers))
            times = model.generation_times(gen)
            clan_rows[workers] = (times.total, model.energy_joules(times))
        rows.append((name, inax_total, clan_rows))
    return rows


def test_table6_clan_comparison(benchmark, suite_experiments):
    rows = benchmark.pedantic(
        _compare, args=(suite_experiments,), rounds=1, iterations=1
    )

    table_rows = []
    for name, inax_total, clan in rows:
        table_rows.append(
            [
                name,
                f"{inax_total:.3f}",
                f"{clan[1][0]:.3f}",
                f"{clan[4][0]:.3f}",
                f"{clan[16][0]:.3f}",
                f"{clan[64][0]:.3f}",
            ]
        )
    table = format_table(
        ["env", "E3-INAX (s/gen)", "CLAN-1", "CLAN-4", "CLAN-16", "CLAN-64"],
        table_rows,
        title="Table VI quantified: per-generation runtime, E3 vs CLAN "
        "cluster sizes (measured)",
    )
    write_output("table6_clan_comparison", table)

    for name, inax_total, clan in rows:
        # one Pi is far slower than E3
        assert clan[1][0] > inax_total, name
        # adding workers helps monotonically over the sampled sizes
        assert clan[64][0] < clan[16][0] < clan[4][0] < clan[1][0], name

    # on the suite average, even 16 Pis do not reach E3-INAX
    mean_inax = float(np.mean([r[1] for r in rows]))
    mean_clan16 = float(np.mean([r[2][16][0] for r in rows]))
    assert mean_clan16 > mean_inax

    # and a cluster burns more energy than the single co-designed device:
    # compare 16-worker cluster energy to E3-INAX's per-generation energy
    for name, _, clan in rows:
        res = suite_experiments[name]
        inax_energy_per_gen = res.platforms["inax"].energy_joules / max(
            res.generations, 1
        )
        assert clan[16][1] > inax_energy_per_gen, name


def test_table6_bp_accelerator_row(benchmark):
    """Table VI's FA3C/PPO-FPGA row: BP-on-FPGA buffers vs E3's.

    "The BP step costs more buffer and high demand of resources ...
    which could become bottleneck when the NN scales up."
    """
    from repro.core.results import format_table as _format_table
    from repro.hw.bp_fpga_model import (
        BPAcceleratorSpec,
        estimate_bp_accelerator_resources,
    )
    from repro.hw.fpga_model import ZCU104, estimate_inax_resources
    from repro.rl.policies import LARGE_HIDDEN, SMALL_HIDDEN

    def run():
        rows = []
        for label, hidden in (("Small (2x64)", SMALL_HIDDEN),
                              ("Large (3x256)", LARGE_HIDDEN)):
            spec = BPAcceleratorSpec(
                layer_sizes=(8, *hidden, 4), batch_size=128, num_macs=200
            )
            res = estimate_bp_accelerator_resources(spec)
            rows.append((label, spec, res))
        inax = estimate_inax_resources(50, 4)  # same 200 DSPs
        return rows, inax

    rows, inax = benchmark.pedantic(run, rounds=1, iterations=1)

    table_rows = []
    for label, spec, res in rows:
        util = res.utilization(ZCU104)
        table_rows.append(
            [
                f"BP accel, {label}",
                f"{spec.onchip_words:,}",
                f"{util['BRAM'] * 100:.0f}%",
                "yes" if res.fits(ZCU104) else "NO",
            ]
        )
    inax_util = inax.utilization(ZCU104)
    table_rows.append(
        ["INAX (PU=50, PE=4)", "128,000 (50 x 2.56K)",
         f"{inax_util['BRAM'] * 100:.0f}%", "yes"]
    )
    write_output(
        "table6_bp_accelerator",
        _format_table(
            ["design (200 DSPs each)", "on-chip words", "BRAM", "fits?"],
            table_rows,
            title="Table VI FA3C/PPO-FPGA row: BP training state vs E3 "
            "(modeled on XCZU7EV)",
        ),
    )

    small_res = rows[0][2]
    large_res = rows[1][2]
    assert small_res.fits(ZCU104)
    assert not large_res.fits(ZCU104)  # "bottleneck when the NN scales up"
    assert large_res.bram36 > 4 * small_res.bram36
