"""Record the repo's bench outputs into the perf trajectory.

Thin binding of :mod:`repro.obs.trajectory` to this repo's layout:
reads every ``benchmarks/output/BENCH_*.json`` (the trajectory store
itself excluded), stamps entries with the current git commit, and
appends them to ``benchmarks/BENCH_trajectory.json`` — the committed
baseline the ``repro bench-diff`` CI gate compares against.

Run after the bench suites::

    PYTHONPATH=src python benchmarks/trajectory.py            # record
    PYTHONPATH=src python benchmarks/trajectory.py --check    # diff only
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.trajectory import (
    bench_diff,
    format_comparisons,
    load_trajectory,
    record,
    save_trajectory,
)
from repro.telemetry.manifest import git_revision

BENCH_DIR = Path(__file__).parent / "output"
TRAJECTORY_PATH = Path(__file__).parent / "BENCH_trajectory.json"


def collect_results(bench_dir: Path) -> dict[str, dict]:
    """Parse every BENCH_*.json in a directory, keyed by bench name."""
    results: dict[str, dict] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_") :]
        if name == "trajectory":
            continue
        results[name] = json.loads(path.read_text())
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-dir", type=Path, default=BENCH_DIR,
        help="directory holding BENCH_*.json outputs",
    )
    parser.add_argument(
        "--trajectory", type=Path, default=TRAJECTORY_PATH,
        help="trajectory store to append to",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="diff against the recorded baseline instead of recording",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.1,
        help="relative regression bar for --check (default 0.10)",
    )
    args = parser.parse_args(argv)

    results = collect_results(args.bench_dir)
    if not results:
        print(f"no BENCH_*.json files under {args.bench_dir}", file=sys.stderr)
        return 2
    trajectory = load_trajectory(args.trajectory)
    commit, dirty = git_revision()

    if args.check:
        comparisons = bench_diff(
            trajectory, results, threshold=args.threshold,
            exclude_commit=commit or None,
        )
        print(format_comparisons(comparisons))
        return 3 if any(c.regressed for c in comparisons) else 0

    written = 0
    for bench in sorted(results):
        written += len(
            record(trajectory, bench, results[bench], commit or "unknown",
                   dirty)
        )
    save_trajectory(args.trajectory, trajectory)
    print(f"recorded {written} metric(s) at commit "
          f"{(commit or 'unknown')[:12]}{' (dirty)' if dirty else ''} "
          f"into {args.trajectory}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
