"""Fig 3 — time profiling of the RL baselines.

The paper measures A2C and PPO2 with small and large networks and finds
the *Training* part (backprop + rule updates) takes the majority —
around 60% — of runtime, versus the Forward (predict) part.  This is
the counterpoint to NEAT's evaluate-dominated profile (Fig 1(b)) and
the argument for accelerating "evaluate" rather than "Training".
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.analysis.timing_profile import rl_profile
from repro.core.results import format_table
from repro.envs.registry import make
from repro.rl.a2c import A2C
from repro.rl.policies import LARGE_HIDDEN, SMALL_HIDDEN
from repro.rl.ppo import PPO

CONFIGS = [
    ("A2C-small", lambda env: A2C(env, hidden=SMALL_HIDDEN, seed=0)),
    ("A2C-large", lambda env: A2C(env, hidden=LARGE_HIDDEN, seed=0)),
    ("PPO2-small", lambda env: PPO(env, hidden=SMALL_HIDDEN, seed=0)),
    ("PPO2-large", lambda env: PPO(env, hidden=LARGE_HIDDEN, seed=0)),
]


def _profiles():
    out = {}
    for name, factory in CONFIGS:
        env = make("cartpole", seed=0)
        agent = factory(env)
        agent.learn(
            total_timesteps=10**9, eval_every_updates=10**9, time_limit=2.0
        )
        out[name] = rl_profile(agent.times)
    return out


def test_fig3_rl_time_profile(benchmark):
    profiles = benchmark.pedantic(_profiles, rounds=1, iterations=1)

    table = format_table(
        ["config", "Forward", "Training", "Env"],
        [
            [
                name,
                f"{p['forward'] * 100:.1f}%",
                f"{p['training'] * 100:.1f}%",
                f"{p['env'] * 100:.1f}%",
            ]
            for name, p in profiles.items()
        ],
        title="Fig 3: RL time profiling (measured)",
    )
    write_output("fig3_rl_profile", table)

    trainings = [p["training"] for p in profiles.values()]
    # Training is the largest slice in every configuration
    for name, p in profiles.items():
        assert p["training"] > p["forward"], name
        assert p["training"] > p["env"], name
    # and sits in the paper's ~60% band on average (generous margins:
    # a NumPy backprop is not TF's, but the split direction must hold)
    mean_training = float(np.mean(trainings))
    assert 0.40 < mean_training < 0.90
