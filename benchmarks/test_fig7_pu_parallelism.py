"""Fig 7 — parallelism across PUs: runtime and U(PU) vs PU count.

Footnote-3 setup with (a) 200 and (b) 300 individuals, PE=1.

Paper's shape: runtime decreases with PU count; U(PU) has local peaks
exactly at the wave-aligned points p, ceil(p/2), ceil(p/3), ... — e.g.
for p=200 at 200, 100, 67, 50 — because a full last wave wastes no PUs
(the paper's example: 100 PUs finish in 2 waves; 99 PUs need a third
wave with 98% of PUs idle).
"""

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.inax.accelerator import INAXConfig, schedule_generation
from repro.inax.heuristics import pu_candidates
from repro.inax.synthetic import synthetic_population

STEPS_PER_INDIVIDUAL = 10


def _sweep(population: int):
    pop = synthetic_population(num_individuals=population, seed=31)
    lengths = [STEPS_PER_INDIVIDUAL] * population
    ladder = pu_candidates(population)[:6]
    # sample the ladder points plus their off-by-one neighbours
    sweep = sorted(
        {p for point in ladder for p in (point - 1, point, point + 1)}
        & set(range(1, population + 1))
    )
    series = []
    for num_pus in sweep:
        cfg = INAXConfig(num_pus=num_pus, num_pes_per_pu=1)
        report = schedule_generation(cfg, pop, lengths)
        series.append((num_pus, report.total_cycles, report.u_pu))
    return ladder, series


def _run_both():
    return {200: _sweep(200), 300: _sweep(300)}


def test_fig7_pu_parallelism(benchmark):
    results = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    blocks = []
    for p, (ladder, series) in results.items():
        blocks.append(
            format_table(
                ["#PU", "runtime (cycles)", "U(PU)"],
                [
                    [pu, f"{cycles:,.0f}", f"{u:.3f}"]
                    for pu, cycles, u in series
                ],
                title=(
                    f"Fig 7: PU sweep with {p} individuals (measured); "
                    f"heuristic ladder: {ladder}"
                ),
            )
        )
    write_output("fig7_pu_parallelism", "\n\n".join(blocks))

    for p, (ladder, series) in results.items():
        u = {pu: util for pu, _, util in series}
        cycles = {pu: c for pu, c, _ in series}

        # U(PU) peaks at every sampled ladder point vs its successor
        # (the paper's 100-vs-99 argument, for p/1..p/6)
        for point in ladder:
            if point + 1 in u and point + 1 <= p:
                assert u[point] > u[point + 1], (p, point)

        # runtime is monotone along increasing PU counts
        ordered = sorted(cycles)
        for a, b in zip(ordered, ordered[1:]):
            assert cycles[b] <= cycles[a], (p, a, b)

        # full-parallel config is itself a local peak (one full wave);
        # it need not be the global max — a single big wave synchronizes
        # on the slowest of all p individuals (§V-B1's NN-variance issue)
        assert u[p] > u[p - 1]
