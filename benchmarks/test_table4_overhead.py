"""Table IV — analysis of overhead in algorithms.

Regenerates the three columns (RL/A2C, EA (ES/GA), NEAT) of forward
ops, backward ops, and local memory, using the small MLP policy the
paper profiles and NEAT populations evolved on the suite.

Paper's numbers: RL 33K fwd / 32K bwd / 268KB; EA 33K / 0 / 132KB;
NEAT 0.1K / 0 / 0.4KB.  The shape to hold: RL and EA forwards are
comparable and ~100x NEAT's; only RL has backward ops; memory ordering
RL > EA >> NEAT.
"""

import numpy as np

from benchmarks.conftest import write_output
from repro.core.results import format_table
from repro.envs.cartpole import CartPole
from repro.neat.config import NEATConfig
from repro.neat.innovation import InnovationTracker
from repro.rl.buffers import RolloutBuffer
from repro.rl.policies import SMALL_HIDDEN, make_policy
from repro.rl.profiling import ea_overhead, neat_overhead, rl_overhead

from tests.conftest import evolved_genome


def _evolved_population(n=50, seed=0):
    cfg = NEATConfig(num_inputs=4, num_outputs=2)
    tracker = InnovationTracker(2)
    rng = np.random.default_rng(seed)
    return cfg, [
        evolved_genome(cfg, tracker, rng, mutations=8, key=i)
        for i in range(n)
    ]


def _table4_rows():
    env = CartPole()
    policy = make_policy(env, hidden=SMALL_HIDDEN, rng=np.random.default_rng(0))
    buffer = RolloutBuffer(obs_dim=4, action_shape=(), capacity=128)
    rl = rl_overhead(policy, buffer_bytes=buffer.memory_bytes())
    ea = ea_overhead(4, SMALL_HIDDEN, 2)
    cfg, genomes = _evolved_population()
    neat = neat_overhead(genomes, cfg)

    # replay-buffer DRL (DQN): the §II-B "large replay buffer" case
    from repro.rl.dqn import DQN

    dqn = DQN(env, hidden=SMALL_HIDDEN, buffer_capacity=50_000, seed=0)
    return rl, ea, neat, dqn.memory_bytes()


def test_table4_overhead(benchmark):
    rl, ea, neat, dqn_memory = benchmark.pedantic(
        _table4_rows, rounds=1, iterations=1
    )

    table = format_table(
        ["", "RL (A2C)", "EA (ES/GA)", "NEAT"],
        [
            [
                "Op. Forward",
                rl.as_row()["Op. Forward"],
                ea.as_row()["Op. Forward"],
                neat.as_row()["Op. Forward"],
            ],
            [
                "Op. Backward",
                rl.as_row()["Op. Backward"],
                ea.as_row()["Op. Backward"],
                neat.as_row()["Op. Backward"],
            ],
            [
                "Local Memory",
                rl.as_row()["Local Memory"],
                ea.as_row()["Local Memory"],
                neat.as_row()["Local Memory"],
            ],
        ],
        title="Table IV: analysis of overhead in algorithms (measured)",
    )
    write_output("table4_overhead", table)

    # --- paper-shape assertions ---
    # RL forward ~= 2x EA forward here (actor+critic vs one net), both
    # orders above NEAT (paper: 33K vs 0.1K)
    assert rl.ops_forward > 50 * neat.ops_forward
    assert ea.ops_forward > 50 * neat.ops_forward
    # only gradient-based RL pays backward ops (paper: 32K vs 0 vs 0)
    assert rl.ops_backward > 0
    assert ea.ops_backward == 0 and neat.ops_backward == 0
    # memory ordering: RL > EA >> NEAT (paper: 268K > 132K >> 0.4K)
    assert rl.memory_bytes > ea.memory_bytes > 50 * neat.memory_bytes
    # NEAT's genome encoding stays in the sub-kilobyte class
    assert neat.memory_bytes < 2048
    # a replay-buffer DRL (DQN) dwarfs even the on-policy RL baseline —
    # the §II-B point about experience replay intensifying memory
    assert dqn_memory > 5 * rl.memory_bytes
    print(f"DQN (replay-buffer DRL) resident memory: {dqn_memory / 1e6:.1f} MB")
